//! Phase and instrumentation-site types.

use incprof_profile::FunctionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a discovered site should be instrumented (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstrumentationType {
    /// "The function body can be instrumented (essentially that the
    /// instrumentation can be inserted at the start and end of the
    /// function)" — chosen when the triggering interval saw calls.
    Body,
    /// "A loop within the function body needs instrumented" — chosen when
    /// the function was active with zero calls in the triggering interval,
    /// i.e. it is long-lived and "has continued to execute from being
    /// invoked previously".
    Loop,
}

impl fmt::Display for InstrumentationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentationType::Body => write!(f, "body"),
            InstrumentationType::Loop => write!(f, "loop"),
        }
    }
}

/// One discovered instrumentation site within a phase — a row of the
/// paper's Tables II–VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationSite {
    /// The function to instrument.
    pub function: FunctionId,
    /// Body or loop instrumentation.
    pub inst_type: InstrumentationType,
    /// Heartbeat id assigned to this ⟨function, type⟩ pair, unique across
    /// the whole analysis (1-based, first-selection order), matching the
    /// "HB ID" column.
    pub hb_id: u32,
    /// Intervals of the phase attributed to this site (each interval is
    /// attributed to the first selected site active in it).
    pub covered_intervals: Vec<usize>,
    /// "Phase %": attributed intervals / phase size × 100.
    pub phase_pct: f64,
    /// "App %": attributed intervals / total run intervals × 100.
    pub app_pct: f64,
}

/// One detected phase: a cluster of intervals plus its selected sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase id (cluster index).
    pub id: usize,
    /// Member interval indices, ascending.
    pub intervals: Vec<usize>,
    /// Selected instrumentation sites, in selection order.
    pub sites: Vec<InstrumentationSite>,
}

impl Phase {
    /// Fraction of this phase's intervals covered by its selected sites.
    pub fn coverage(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let covered: usize = self.sites.iter().map(|s| s.covered_intervals.len()).sum();
        covered as f64 / self.intervals.len() as f64
    }

    /// The distinct functions selected for this phase.
    pub fn site_functions(&self) -> Vec<FunctionId> {
        let mut v: Vec<FunctionId> = self.sites.iter().map(|s| s.function).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(f: u32, t: InstrumentationType, covered: Vec<usize>) -> InstrumentationSite {
        InstrumentationSite {
            function: FunctionId(f),
            inst_type: t,
            hb_id: 1,
            covered_intervals: covered,
            phase_pct: 0.0,
            app_pct: 0.0,
        }
    }

    #[test]
    fn display_matches_paper_spelling() {
        assert_eq!(InstrumentationType::Body.to_string(), "body");
        assert_eq!(InstrumentationType::Loop.to_string(), "loop");
    }

    #[test]
    fn coverage_sums_site_attributions() {
        let p = Phase {
            id: 0,
            intervals: vec![0, 1, 2, 3],
            sites: vec![
                site(1, InstrumentationType::Body, vec![0, 1]),
                site(2, InstrumentationType::Loop, vec![2]),
            ],
        };
        assert!((p.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_phase_coverage_is_zero() {
        let p = Phase {
            id: 0,
            intervals: vec![],
            sites: vec![],
        };
        assert_eq!(p.coverage(), 0.0);
    }

    #[test]
    fn site_functions_dedupe() {
        let p = Phase {
            id: 0,
            intervals: vec![0],
            sites: vec![
                site(2, InstrumentationType::Body, vec![]),
                site(2, InstrumentationType::Loop, vec![]),
                site(1, InstrumentationType::Body, vec![]),
            ],
        };
        assert_eq!(p.site_functions(), vec![FunctionId(1), FunctionId(2)]);
    }
}
