//! Online (streaming) phase detection.
//!
//! The published pipeline is offline: collect the whole run, then
//! cluster. The paper's related work (§VII) highlights Nickolayev et
//! al.'s real-time statistical clustering and "work in online
//! performance monitoring and analysis … processing incremental
//! performance data" as relevant directions. This module provides that
//! capability: a leader–follower (sequential) clusterer that consumes
//! interval profiles *as the collector produces them*, assigning each
//! interval to an existing phase when it is close enough to the phase's
//! running centroid and opening a new phase otherwise.
//!
//! This is the shape a deployed IncProf would take: phase transitions
//! become visible one interval after they happen, instead of after the
//! run ends.

use incprof_profile::{FlatProfile, FunctionId};
use std::collections::BTreeMap;

/// Configuration for [`OnlinePhaseDetector`].
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Distance threshold (seconds, Euclidean over interval feature
    /// vectors) under which an interval joins the nearest phase.
    /// Relative to the 1-second interval: 0.35 works well — intervals
    /// within one phase differ by boundary jitter, across phases by the
    /// whole interval length.
    pub distance_threshold_secs: f64,
    /// Cap on phases; past it, intervals always join the nearest phase
    /// (the paper's k ≤ 8 observation makes 8 a natural cap).
    pub max_phases: usize,
    /// Centroid update weight: `None` = running mean (stable phases);
    /// `Some(alpha)` = exponential moving average (tracks slow drift).
    pub ema_alpha: Option<f64>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            distance_threshold_secs: 0.35,
            max_phases: 8,
            ema_alpha: None,
        }
    }
}

/// What [`OnlinePhaseDetector::observe`] reports for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineObservation {
    /// Interval index (0-based, in arrival order).
    pub interval: usize,
    /// Phase the interval was assigned to.
    pub phase: usize,
    /// True when this interval *created* the phase.
    pub new_phase: bool,
    /// True when the phase differs from the previous interval's phase
    /// (a phase transition, the event a deployment would alert on).
    pub transition: bool,
    /// True when the interval was beyond the distance threshold of every
    /// centroid but was absorbed into the nearest phase anyway because
    /// the detector is saturated at [`OnlineConfig::max_phases`]. A run
    /// of capped observations means the cap is hiding real behavior
    /// changes — raise `max_phases` or treat the assignment as low
    /// confidence.
    pub capped: bool,
}

/// Streaming leader–follower phase detector.
#[derive(Debug, Clone)]
pub struct OnlinePhaseDetector {
    config: OnlineConfig,
    /// Column index per function, grown as new functions appear.
    columns: BTreeMap<FunctionId, usize>,
    /// Phase centroids in the growing feature space.
    centroids: Vec<Vec<f64>>,
    /// Members per phase (for running means).
    member_counts: Vec<usize>,
    assignments: Vec<usize>,
    transitions: Vec<usize>,
    /// Interval indices absorbed only because of the phase cap.
    capped: Vec<usize>,
}

impl OnlinePhaseDetector {
    /// Create a detector.
    pub fn new(config: OnlineConfig) -> OnlinePhaseDetector {
        OnlinePhaseDetector {
            config,
            columns: BTreeMap::new(),
            centroids: Vec::new(),
            member_counts: Vec::new(),
            assignments: Vec::new(),
            transitions: Vec::new(),
            capped: Vec::new(),
        }
    }

    /// Feed one interval profile; returns its assignment.
    pub fn observe(&mut self, interval: &FlatProfile) -> OnlineObservation {
        // Grow the feature space for unseen functions (all existing
        // centroids implicitly extend with zeros).
        for (id, _) in interval.iter() {
            let next = self.columns.len();
            self.columns.entry(id).or_insert(next);
        }
        let dim = self.columns.len();
        for c in &mut self.centroids {
            c.resize(dim, 0.0);
        }
        // lint: allow(A01, one feature vector per interval whose dim tracks the live function set; reuse would need a self-field resize on every growth)
        let mut features = vec![0.0; dim];
        for (id, stats) in interval.iter() {
            features[self.columns[&id]] = stats.self_time as f64 / 1e9;
        }

        // Nearest centroid.
        let mut best: Option<(usize, f64)> = None;
        for (p, c) in self.centroids.iter().enumerate() {
            let d = dist(&features, c);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((p, d));
            }
        }

        let idx = self.assignments.len();
        let (phase, new_phase, capped) = match best {
            Some((p, d)) if d <= self.config.distance_threshold_secs => {
                self.absorb(p, &features);
                (p, false, false)
            }
            // Saturated: absorb a too-distant interval rather than open
            // a phase past the cap, but mark the assignment as forced.
            Some((p, _)) if self.centroids.len() >= self.config.max_phases => {
                self.absorb(p, &features);
                self.capped.push(idx);
                (p, false, true)
            }
            _ => {
                self.centroids.push(features);
                self.member_counts.push(1);
                (self.centroids.len() - 1, true, false)
            }
        };

        let transition = idx > 0 && self.assignments[idx - 1] != phase;
        if transition {
            self.transitions.push(idx);
        }
        self.assignments.push(phase);
        OnlineObservation {
            interval: idx,
            phase,
            new_phase,
            transition,
            capped,
        }
    }

    fn absorb(&mut self, phase: usize, features: &[f64]) {
        self.member_counts[phase] += 1;
        let c = &mut self.centroids[phase];
        match self.config.ema_alpha {
            Some(alpha) => {
                for (cv, &fv) in c.iter_mut().zip(features) {
                    *cv = (1.0 - alpha) * *cv + alpha * fv;
                }
            }
            None => {
                let n = self.member_counts[phase] as f64;
                for (cv, &fv) in c.iter_mut().zip(features) {
                    *cv += (fv - *cv) / n;
                }
            }
        }
    }

    /// Number of phases opened so far.
    pub fn n_phases(&self) -> usize {
        self.centroids.len()
    }

    /// Assignment per observed interval.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Interval indices at which the phase changed.
    pub fn transitions(&self) -> &[usize] {
        &self.transitions
    }

    /// Member count per phase.
    pub fn phase_sizes(&self) -> &[usize] {
        &self.member_counts
    }

    /// Interval indices whose assignment was forced by the
    /// [`OnlineConfig::max_phases`] cap (see
    /// [`OnlineObservation::capped`]).
    pub fn capped_intervals(&self) -> &[usize] {
        &self.capped
    }
}

#[inline]
fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::FunctionStats;

    fn interval(entries: &[(u32, f64)]) -> FlatProfile {
        let mut p = FlatProfile::new();
        for &(id, secs) in entries {
            p.set(
                FunctionId(id),
                FunctionStats {
                    self_time: (secs * 1e9) as u64,
                    calls: 1,
                    child_time: 0,
                },
            );
        }
        p
    }

    #[test]
    fn detects_planted_phases_and_transitions() {
        let mut det = OnlinePhaseDetector::new(OnlineConfig::default());
        let mut observations = Vec::new();
        for _ in 0..10 {
            observations.push(det.observe(&interval(&[(0, 1.0)])));
        }
        for _ in 0..10 {
            observations.push(det.observe(&interval(&[(1, 1.0)])));
        }
        for _ in 0..5 {
            observations.push(det.observe(&interval(&[(0, 1.0)])));
        }
        assert_eq!(det.n_phases(), 2);
        // Returning to phase 0 reuses the old centroid.
        assert_eq!(det.assignments()[20..], [0; 5]);
        assert_eq!(det.transitions(), &[10, 20]);
        // New-phase flags exactly at first sight.
        let new_flags: Vec<usize> = observations
            .iter()
            .filter(|o| o.new_phase)
            .map(|o| o.interval)
            .collect();
        assert_eq!(new_flags, vec![0, 10]);
    }

    #[test]
    fn jitter_within_threshold_stays_in_phase() {
        let mut det = OnlinePhaseDetector::new(OnlineConfig::default());
        for i in 0..20 {
            let wobble = 1.0 + 0.01 * (i % 5) as f64;
            det.observe(&interval(&[(0, wobble)]));
        }
        assert_eq!(det.n_phases(), 1);
        assert!(det.transitions().is_empty());
    }

    #[test]
    fn max_phases_caps_growth() {
        let cfg = OnlineConfig {
            max_phases: 2,
            ..OnlineConfig::default()
        };
        let mut det = OnlinePhaseDetector::new(cfg);
        det.observe(&interval(&[(0, 1.0)]));
        det.observe(&interval(&[(1, 1.0)]));
        det.observe(&interval(&[(2, 1.0)])); // would be phase 3
        assert_eq!(det.n_phases(), 2);
        assert_eq!(det.assignments().len(), 3);
    }

    #[test]
    fn capped_flag_marks_forced_absorption_at_max_phases() {
        let cfg = OnlineConfig {
            max_phases: 2,
            ..OnlineConfig::default()
        };
        let mut det = OnlinePhaseDetector::new(cfg);
        // Two clean phases fill the cap; neither observation is capped.
        assert!(!det.observe(&interval(&[(0, 1.0)])).capped);
        assert!(!det.observe(&interval(&[(1, 1.0)])).capped);
        // A planted outlier, orthogonal to both centroids: far beyond
        // the threshold, absorbed only because the detector is full.
        let outlier = det.observe(&interval(&[(2, 5.0)]));
        assert!(outlier.capped, "distant interval at cap must be flagged");
        assert!(!outlier.new_phase);
        assert_eq!(det.n_phases(), 2);
        // An interval sitting on an existing centroid is a genuine
        // within-threshold match even at the cap — not capped. Phase 1's
        // centroid is unshifted (the outlier joined phase 0 or 1; use
        // whichever the outlier did not join).
        let clean_id = if outlier.phase == 0 { 1 } else { 0 };
        let clean = det.observe(&interval(&[(clean_id as u32, 1.0)]));
        assert!(!clean.capped, "in-threshold match must not be flagged");
        assert_eq!(det.capped_intervals(), &[2]);
    }

    #[test]
    fn running_mean_tracks_centroid() {
        let mut det = OnlinePhaseDetector::new(OnlineConfig::default());
        det.observe(&interval(&[(0, 1.0)]));
        det.observe(&interval(&[(0, 1.2)]));
        // Centroid is the mean 1.1; a 1.1 interval is distance 0.
        let obs = det.observe(&interval(&[(0, 1.1)]));
        assert_eq!(obs.phase, 0);
        assert_eq!(det.phase_sizes()[0], 3);
    }

    #[test]
    fn ema_mode_tracks_drift() {
        let cfg = OnlineConfig {
            ema_alpha: Some(0.5),
            distance_threshold_secs: 0.3,
            ..OnlineConfig::default()
        };
        let mut det = OnlinePhaseDetector::new(cfg);
        // Slow drift from 1.0 to 1.8 in 0.1 steps: the EMA centroid
        // follows, so no new phase opens despite the total drift far
        // exceeding the 0.3 threshold.
        let mut v = 1.0;
        for _ in 0..9 {
            det.observe(&interval(&[(0, v)]));
            v += 0.1;
        }
        assert_eq!(det.n_phases(), 1);
    }

    #[test]
    fn new_functions_extend_feature_space() {
        let mut det = OnlinePhaseDetector::new(OnlineConfig::default());
        det.observe(&interval(&[(0, 1.0)]));
        // A new function dimension appears mid-run.
        let obs = det.observe(&interval(&[(7, 1.0)]));
        assert!(obs.new_phase, "orthogonal behavior must open a phase");
        assert_eq!(det.n_phases(), 2);
    }

    #[test]
    fn agrees_with_batch_kmeans_on_clean_phases() {
        use incprof_cluster::{kmeans, Dataset, KMeansConfig};
        // Three clean phases; online and batch must produce the same
        // partition (up to label permutation).
        let mut profiles = Vec::new();
        for _ in 0..8 {
            profiles.push(interval(&[(0, 1.0)]));
        }
        for _ in 0..8 {
            profiles.push(interval(&[(1, 1.0)]));
        }
        for _ in 0..8 {
            profiles.push(interval(&[(2, 1.0)]));
        }
        let mut det = OnlinePhaseDetector::new(OnlineConfig::default());
        for p in &profiles {
            det.observe(p);
        }
        let online = det.assignments().to_vec();

        let matrix = incprof_collect::IntervalMatrix::from_interval_profiles(&profiles);
        let data = Dataset::from_rows(matrix.feature_rows());
        let batch = kmeans(&data, &KMeansConfig::new(3)).assignments;

        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                assert_eq!(
                    online[i] == online[j],
                    batch[i] == batch[j],
                    "co-membership mismatch at ({i},{j})"
                );
            }
        }
    }
}
