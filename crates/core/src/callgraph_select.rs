//! Call-graph-aware site lifting (paper future work, §VI-B).
//!
//! In MiniFE the pipeline selected `sum_in_symm_elem_matrix`, a callee
//! "essentially equivalent in behavior" to the human-chosen
//! `perform_element_loop`; the paper suggests "extending the discovery
//! analysis to use the call-graph structure might be a way to improve it
//! and select our site, which is higher up in the call graph."
//!
//! This module implements that idea conservatively: a selected site is
//! lifted to a call-graph ancestor only when the ancestor is
//! *behaviorally equivalent within the phase*:
//!
//! * the ancestor's activity rank over the phase's intervals is at least
//!   the site's rank (it is live whenever the site is), and
//! * the ancestor dominates the site's invocations: every recorded call
//!   arc into the site originates (transitively) from the ancestor, and
//! * the ancestor's whole-run call count does not exceed the site's
//!   (lifting must not land on a chatty utility wrapper).
//!
//! Among eligible ancestors the highest one (minimal depth from the call
//! roots) wins; ties break on function id.

use crate::pipeline::PhaseAnalysis;
use incprof_collect::IntervalMatrix;
use incprof_profile::{CallGraphProfile, FunctionId};

/// Whole-run call count of `f` summed over the matrix.
fn total_calls(matrix: &IntervalMatrix, f: FunctionId) -> u64 {
    match matrix.col_of(f) {
        Some(col) => (0..matrix.n_intervals())
            .map(|i| matrix.calls(i, col))
            .sum(),
        None => 0,
    }
}

/// Whether every caller path into `f` passes through `anc`: `anc` is the
/// sole "entry" into `f`'s caller subtree. Conservative approximation:
/// every *direct* caller of `f` is either `anc` or has `anc` as an
/// ancestor.
fn dominates(callgraph: &CallGraphProfile, anc: FunctionId, f: FunctionId) -> bool {
    let callers = callgraph.callers_of(f);
    if callers.is_empty() {
        return false;
    }
    callers
        .iter()
        .all(|&c| c == anc || callgraph.ancestors_of(c).contains(&anc))
}

/// Lift the sites of `analysis` along the call graph where a higher,
/// behaviorally equivalent ancestor exists. Returns the number of sites
/// lifted. Percentages and covered intervals are preserved (the lifted
/// function covers the same intervals by construction).
pub fn lift_sites_to_callers(
    analysis: &mut PhaseAnalysis,
    matrix: &IntervalMatrix,
    callgraph: &CallGraphProfile,
) -> usize {
    let mut lifted = 0;
    for phase in &mut analysis.phases {
        let intervals = phase.intervals.clone();
        for site in &mut phase.sites {
            let f = site.function;
            let site_rank = match matrix.col_of(f) {
                Some(col) => matrix.rank_in(col, &intervals),
                None => continue,
            };
            let site_calls = total_calls(matrix, f);
            let mut best: Option<(usize, FunctionId)> = None;
            for anc in callgraph.ancestors_of(f) {
                if anc == f {
                    continue;
                }
                let Some(anc_col) = matrix.col_of(anc) else {
                    continue;
                };
                let anc_rank = matrix.rank_in(anc_col, &intervals);
                if anc_rank + 1e-12 < site_rank {
                    continue;
                }
                if total_calls(matrix, anc) > site_calls {
                    continue;
                }
                if !dominates(callgraph, anc, f) {
                    continue;
                }
                let depth = callgraph.depth_from_roots(anc).unwrap_or(usize::MAX);
                let better = match best {
                    None => true,
                    Some((bd, bf)) => depth < bd || (depth == bd && anc < bf),
                };
                if better {
                    best = Some((depth, anc));
                }
            }
            if let Some((_, anc)) = best {
                site.function = anc;
                lifted += 1;
            }
        }
    }
    lifted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PhaseDetector;
    use incprof_profile::{FlatProfile, FunctionStats};

    fn profile(entries: &[(u32, u64, u64)]) -> FlatProfile {
        let mut p = FlatProfile::new();
        for &(id, self_ns, calls) in entries {
            p.set(
                FunctionId(id),
                FunctionStats {
                    self_time: self_ns,
                    calls,
                    child_time: 0,
                },
            );
        }
        p
    }

    /// MiniFE-shaped scenario: driver 1 (perform_element_loop) calls leaf
    /// 2 (sum_in_symm_elem_matrix) exclusively; both active in every
    /// interval; leaf carries the self time so Algorithm 1 picks... both
    /// are active; leaf has more calls per interval, so the *driver* is
    /// picked by calls-ascending unless the driver is absent from some
    /// intervals. Force the leaf pick by giving the driver zero self time
    /// in profiles (it delegates everything) — then lift should restore
    /// the driver? No: rank requires activity. Instead give the driver
    /// small self time (active) but fewer calls — Algorithm 1 already
    /// picks it. To exercise lifting, make the driver active but with
    /// MORE calls than the leaf in the triggering interval.
    fn minife_like() -> (IntervalMatrix, CallGraphProfile) {
        let intervals: Vec<FlatProfile> = (0..8)
            .map(|_| profile(&[(1, 50_000_000, 10), (2, 950_000_000, 1)]))
            .collect();
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let mut cg = CallGraphProfile::new();
        cg.record_arcs(FunctionId(0), FunctionId(1), 8); // main -> driver
        cg.record_arcs(FunctionId(1), FunctionId(2), 80); // driver -> leaf
        (matrix, cg)
    }

    #[test]
    fn lifts_leaf_site_to_dominating_caller() {
        let (matrix, cg) = minife_like();
        let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
        // Algorithm 1 picked the leaf (function 2: 1 call vs 10).
        assert_eq!(analysis.phases[0].sites[0].function, FunctionId(2));
        let lifted = lift_sites_to_callers(&mut analysis, &matrix, &cg);
        // Caller (1) has 10 calls/interval = 80 total vs leaf's 8... the
        // caller's total calls (80) exceed the leaf's (8): not lifted.
        assert_eq!(lifted, 0);
        assert_eq!(analysis.phases[0].sites[0].function, FunctionId(2));
    }

    /// When the caller is genuinely quieter (fewer calls) and equally
    /// active, the site lifts to it.
    #[test]
    fn lifts_when_caller_is_quieter() {
        let intervals: Vec<FlatProfile> = (0..8)
            .map(|_| profile(&[(1, 50_000_000, 1), (2, 950_000_000, 10)]))
            .collect();
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let mut cg = CallGraphProfile::new();
        cg.record_arcs(FunctionId(1), FunctionId(2), 80);
        let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
        // Algorithm 1 already prefers the quiet caller here; force the
        // leaf to exercise lifting.
        analysis.phases[0].sites[0].function = FunctionId(2);
        let lifted = lift_sites_to_callers(&mut analysis, &matrix, &cg);
        assert_eq!(lifted, 1);
        assert_eq!(analysis.phases[0].sites[0].function, FunctionId(1));
    }

    #[test]
    fn does_not_lift_across_partial_dominance() {
        // Two independent callers -> no single ancestor dominates.
        let intervals: Vec<FlatProfile> = (0..4)
            .map(|_| profile(&[(1, 10_000_000, 1), (3, 10_000_000, 1), (2, 900_000_000, 5)]))
            .collect();
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let mut cg = CallGraphProfile::new();
        cg.record_arcs(FunctionId(1), FunctionId(2), 10);
        cg.record_arcs(FunctionId(3), FunctionId(2), 10);
        let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
        analysis.phases[0].sites[0].function = FunctionId(2);
        let lifted = lift_sites_to_callers(&mut analysis, &matrix, &cg);
        assert_eq!(lifted, 0);
    }

    #[test]
    fn does_not_lift_to_low_rank_ancestor() {
        // Caller only active in half the phase intervals.
        let mut intervals: Vec<FlatProfile> = (0..4)
            .map(|_| profile(&[(1, 10_000_000, 1), (2, 900_000_000, 2)]))
            .collect();
        intervals.extend((0..4).map(|_| profile(&[(2, 900_000_000, 2)])));
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let mut cg = CallGraphProfile::new();
        cg.record_arcs(FunctionId(1), FunctionId(2), 8);
        let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
        for phase in &mut analysis.phases {
            for site in &mut phase.sites {
                site.function = FunctionId(2);
            }
        }
        let before: Vec<FunctionId> = analysis
            .phases
            .iter()
            .flat_map(|p| p.sites.iter().map(|s| s.function))
            .collect();
        // The phase containing the caller-free intervals must not lift.
        let _ = lift_sites_to_callers(&mut analysis, &matrix, &cg);
        for (phase, &orig) in analysis.phases.iter().zip(&before) {
            let col1 = matrix.col_of(FunctionId(1)).unwrap();
            let caller_rank = matrix.rank_in(col1, &phase.intervals);
            if caller_rank < 1.0 {
                assert_eq!(phase.sites[0].function, orig, "must not lift past rank gap");
            }
        }
    }

    #[test]
    fn highest_eligible_ancestor_wins() {
        // Chain: 0 -> 1 -> 2, all active everywhere, calls descending
        // toward the root; site starts at 2 and should lift to 0.
        let intervals: Vec<FlatProfile> = (0..6)
            .map(|_| profile(&[(0, 1_000_000, 1), (1, 2_000_000, 2), (2, 900_000_000, 4)]))
            .collect();
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let mut cg = CallGraphProfile::new();
        cg.record_arcs(FunctionId(0), FunctionId(1), 12);
        cg.record_arcs(FunctionId(1), FunctionId(2), 24);
        let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
        analysis.phases[0].sites[0].function = FunctionId(2);
        let lifted = lift_sites_to_callers(&mut analysis, &matrix, &cg);
        assert_eq!(lifted, 1);
        assert_eq!(analysis.phases[0].sites[0].function, FunctionId(0));
    }
}
