//! # incprof-core
//!
//! The IncProf phase-detection and instrumentation-site-selection core —
//! the paper's primary contribution (§V).
//!
//! Given the interval profile data produced by `incprof-collect`, this
//! crate:
//!
//! 1. represents each interval as a tuple of function self times
//!    ([`incprof_collect::IntervalMatrix`]),
//! 2. clusters the intervals with k-means for k = 1..8 and selects k by
//!    the elbow method ([`PhaseDetector`]; silhouette and DBSCAN variants
//!    are available for the paper's ablations),
//! 3. interprets each cluster as a **phase**, and
//! 4. runs **Algorithm 1** ([`algorithm1`]) to pick, for every phase, the
//!    source functions to instrument with heartbeats, each tagged *body*
//!    (instrument function entry/exit) or *loop* (instrument a loop inside
//!    the function), with the paper's 95% coverage threshold.
//!
//! The paper's future-work extensions are implemented behind explicit
//! calls so their effect can be measured:
//!
//! * [`merge`] — postprocessing that combines phases sharing the same
//!   instrumentation sites (suggested in §VI-A after Graph500 produced two
//!   phases with the same `run_bfs` site).
//! * [`callgraph_select`] — call-graph-aware site lifting (suggested in
//!   §VI-B after MiniFE selected `sum_in_symm_elem_matrix` where a human
//!   chose its caller `perform_element_loop`).
//!
//! [`report`] renders the analysis as the paper's per-application tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several parallel arrays in one loop; the
// iterator rewrite clippy suggests hurts readability there.
#![allow(clippy::needless_range_loop)]

pub mod algorithm1;
pub mod cache;
pub mod callgraph_select;
pub mod merge;
pub mod online;
pub mod pipeline;
pub mod report;
pub mod types;

pub use cache::AnalysisCache;
pub use online::{OnlineConfig, OnlineObservation, OnlinePhaseDetector};
pub use pipeline::{ClusteringMethod, FeatureSet, PhaseAnalysis, PhaseDetector, PipelineError};
pub use report::{source_context_json, SourceGraph};
pub use types::{InstrumentationSite, InstrumentationType, Phase};
