//! Algorithm 1: Instrumentation Identification (paper §V-B).
//!
//! A faithful implementation of the paper's greedy site-selection
//! algorithm, including the published refinements described in the prose:
//!
//! * intervals are processed from most-representative (closest to the
//!   cluster centroid) outward (line 3);
//! * an interval already containing a previously selected function is
//!   skipped — it is covered (lines 7–9);
//! * within an interval, active functions are sorted by call count
//!   ascending (the phase-median count, compared by order of magnitude —
//!   see the private `phase_median_calls` and `call_bucket` helpers),
//!   then rank
//!   descending (line 10); ties break on interval self time descending,
//!   then function id for determinism;
//! * the chosen function is tagged *body* if it had calls in the interval
//!   and *loop* if it was active with zero calls (lines 12–16);
//! * selection stops once the selected sites cover at least the
//!   configured fraction of the phase's intervals (the paper's 95%
//!   threshold, §VI), leaving outliers uncovered.

use crate::types::{InstrumentationSite, InstrumentationType, Phase};
use incprof_collect::IntervalMatrix;
use incprof_profile::FunctionId;
use std::collections::BTreeMap;

/// Inputs that vary per cluster: the member intervals, each paired with
/// its (squared) distance to the cluster centroid.
#[derive(Debug, Clone)]
pub struct ClusterIntervals {
    /// Interval indices belonging to this cluster.
    pub intervals: Vec<usize>,
    /// Distance to the centroid per member, parallel to `intervals`.
    pub centroid_dist: Vec<f64>,
}

/// Configuration for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct Algorithm1Config {
    /// Stop selecting once this fraction of a phase's intervals is
    /// covered (paper: 0.95).
    pub coverage_threshold: f64,
}

impl Default for Algorithm1Config {
    fn default() -> Self {
        Algorithm1Config {
            coverage_threshold: 0.95,
        }
    }
}

/// Shared heartbeat-id assignment across all phases of one analysis:
/// each distinct ⟨function, instrumentation type⟩ pair gets one id, in
/// first-selection order, starting at 1 (the paper's "HB ID" column).
#[derive(Debug, Default)]
pub struct HbIdAssigner {
    ids: BTreeMap<(FunctionId, InstrumentationType), u32>,
}

impl HbIdAssigner {
    /// Create an empty assigner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for a site, allocating the next id on first sight.
    pub fn assign(&mut self, f: FunctionId, t: InstrumentationType) -> u32 {
        let next = self.ids.len() as u32 + 1;
        *self.ids.entry((f, t)).or_insert(next)
    }
}

/// Run Algorithm 1 for every cluster, producing the phase set `P`.
///
/// `clusters[i]` describes phase `i`. `matrix` supplies the per-interval
/// function activity (self time) and call counts `F`; ranks `R` are
/// computed per phase from the matrix as "the fraction of intervals in
/// the phase that the function is active in".
pub fn identify_instrumentation(
    matrix: &IntervalMatrix,
    clusters: &[ClusterIntervals],
    config: Algorithm1Config,
) -> Vec<Phase> {
    let mut assigner = HbIdAssigner::new();
    clusters
        .iter()
        .enumerate()
        .map(|(phase_id, cluster)| {
            select_sites_for_phase(matrix, phase_id, cluster, config, &mut assigner)
        })
        .collect()
}

/// Order-of-magnitude bucket for call-count comparison (line 10's "calls
/// ascending"). Comparing log2 magnitudes keeps the paper's intent — a
/// function called once beats a helper called thousands of times — while
/// ignoring small fluctuations (ties fall through to rank and self time).
fn call_bucket(calls: u64) -> u32 {
    match calls {
        0 => 0, // long-lived, never-returning: the strongest loop candidate
        n => u64::BITS - n.leading_zeros(),
    }
}

/// Per-function *typical* call count over the phase: the median of the
/// function's call counts across the phase intervals where it is active.
///
/// The pseudocode's line 10 sorts by the triggering interval's raw call
/// count, but raw per-interval counts suffer boundary aliasing: a kernel
/// invoked once per timestep lands 3 calls in one interval and 4 in the
/// next depending on where the snapshot falls, and whichever interval
/// happens to sit closest to the centroid then decides the site. The
/// phase median is stable under that jitter by construction, matching the
/// prose's phase-level reasoning ("zero calls for MOST intervals").
fn phase_median_calls(matrix: &IntervalMatrix, cluster_intervals: &[usize], col: usize) -> u64 {
    let mut counts: Vec<u64> = cluster_intervals
        .iter()
        .copied()
        .filter(|&i| matrix.active(i, col))
        .map(|i| matrix.calls(i, col))
        .collect();
    if counts.is_empty() {
        return 0;
    }
    counts.sort_unstable();
    counts[counts.len() / 2]
}

fn select_sites_for_phase(
    matrix: &IntervalMatrix,
    phase_id: usize,
    cluster: &ClusterIntervals,
    config: Algorithm1Config,
    assigner: &mut HbIdAssigner,
) -> Phase {
    assert_eq!(cluster.intervals.len(), cluster.centroid_dist.len());
    let n_phase = cluster.intervals.len();
    let total_intervals = matrix.n_intervals().max(1);

    // Per-phase function ranks (R in the paper) and typical call counts.
    let ranks: Vec<f64> = (0..matrix.n_functions())
        .map(|col| matrix.rank_in(col, &cluster.intervals))
        .collect();
    let median_calls: Vec<u64> = (0..matrix.n_functions())
        .map(|col| phase_median_calls(matrix, &cluster.intervals, col))
        .collect();

    // Line 3: sort intervals by distance to the centroid (most
    // representative first). Ties break on interval index.
    let mut order: Vec<usize> = (0..n_phase).collect();
    order.sort_by(|&a, &b| {
        cluster.centroid_dist[a]
            .total_cmp(&cluster.centroid_dist[b])
            .then(cluster.intervals[a].cmp(&cluster.intervals[b]))
    });

    // Selected sites, plus per-site attribution of covered intervals.
    let mut sites: Vec<InstrumentationSite> = Vec::new();
    let mut selected: BTreeMap<(FunctionId, InstrumentationType), usize> = BTreeMap::new();
    // Whole-phase coverage of the selected site set, updated as sites are
    // added: covered_flags[pos] is true when any selected function is
    // active in cluster interval `pos`.
    let mut covered_flags = vec![false; n_phase];
    let mut covered_count = 0usize;

    for &pos in &order {
        let interval = cluster.intervals[pos];

        // Lines 7-9: an interval already covered by a selected function is
        // attributed to the first such site and skipped.
        if covered_flags[pos] {
            if let Some(site_idx) = first_covering_site(matrix, interval, &sites) {
                sites[site_idx].covered_intervals.push(interval);
            }
            continue;
        }

        // Coverage threshold (paper §VI): "once selected sites covered
        // that much of the intervals in a phase, no further site selection
        // was done" — the threshold gates *selection*, computed over the
        // whole phase, leaving outlier intervals uncovered.
        if n_phase > 0 && covered_count as f64 / n_phase as f64 >= config.coverage_threshold {
            continue;
        }

        // Line 10: active functions sorted by calls asc, then rank desc.
        let mut active: Vec<usize> = (0..matrix.n_functions())
            .filter(|&col| matrix.active(interval, col))
            .collect();
        if active.is_empty() {
            continue; // an all-idle interval cannot select a site
        }
        active.sort_by(|&a, &b| {
            call_bucket(median_calls[a])
                .cmp(&call_bucket(median_calls[b]))
                .then(ranks[b].total_cmp(&ranks[a]))
                // Residual tie (same call magnitude, same rank — e.g. the
                // per-timestep kernels of an iterative solver): prefer the
                // function that dominates the interval's time, i.e. the
                // one most representative of the phase behavior.
                .then(
                    matrix
                        .self_secs(interval, b)
                        .total_cmp(&matrix.self_secs(interval, a)),
                )
                .then(median_calls[a].cmp(&median_calls[b]))
                .then(matrix.function_at(a).cmp(&matrix.function_at(b)))
        });

        // Lines 11-16: take the top function; tag body/loop. The
        // pseudocode tests the triggering interval's calls, but the
        // paper's prose is the robust form we implement: "A function is
        // designated for loop instrumentation if it is active and
        // selected ... but has zero calls for MOST intervals in that
        // phase, meaning that it is long-lived." (Ties between equally
        // representative intervals would otherwise make the tag depend
        // on processing order.)
        let col = active[0];
        let f = matrix.function_at(col);
        let active_ivs = cluster
            .intervals
            .iter()
            .copied()
            .filter(|&i| matrix.active(i, col))
            .count();
        let with_calls = cluster
            .intervals
            .iter()
            .copied()
            .filter(|&i| matrix.active(i, col) && matrix.calls(i, col) > 0)
            .count();
        let inst_type = if with_calls * 2 >= active_ivs.max(1) {
            InstrumentationType::Body
        } else {
            InstrumentationType::Loop
        };

        // Lines 17-19: add if new; either way the interval is now covered
        // and attributed to the site.
        let site_idx = *selected.entry((f, inst_type)).or_insert_with(|| {
            let hb_id = assigner.assign(f, inst_type);
            sites.push(InstrumentationSite {
                function: f,
                inst_type,
                hb_id,
                covered_intervals: Vec::new(),
                phase_pct: 0.0,
                app_pct: 0.0,
            });
            sites.len() - 1
        });
        sites[site_idx].covered_intervals.push(interval);
        // Update whole-phase coverage with the newly selected function.
        for (p, flag) in covered_flags.iter_mut().enumerate() {
            if !*flag && matrix.active(cluster.intervals[p], col) {
                *flag = true;
                covered_count += 1;
            }
        }
    }

    for site in &mut sites {
        site.covered_intervals.sort_unstable();
        site.phase_pct = 100.0 * site.covered_intervals.len() as f64 / n_phase.max(1) as f64;
        site.app_pct = 100.0 * site.covered_intervals.len() as f64 / total_intervals as f64;
    }

    let mut intervals = cluster.intervals.clone();
    intervals.sort_unstable();
    Phase {
        id: phase_id,
        intervals,
        sites,
    }
}

/// Index of the first (selection-order) site whose function is active in
/// `interval`, if any. Matches the paper's membership test `f ∈ P_i`,
/// which is keyed on the function regardless of instrumentation type.
fn first_covering_site(
    matrix: &IntervalMatrix,
    interval: usize,
    sites: &[InstrumentationSite],
) -> Option<usize> {
    sites.iter().position(|s| {
        matrix
            .col_of(s.function)
            .is_some_and(|col| matrix.active(interval, col))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FlatProfile, FunctionStats};

    fn profile(entries: &[(u32, u64, u64)]) -> FlatProfile {
        let mut p = FlatProfile::new();
        for &(id, self_ns, calls) in entries {
            p.set(
                FunctionId(id),
                FunctionStats {
                    self_time: self_ns,
                    calls,
                    child_time: 0,
                },
            );
        }
        p
    }

    fn cluster(intervals: Vec<usize>) -> ClusterIntervals {
        let centroid_dist = intervals.iter().map(|&i| i as f64 * 0.0).collect();
        ClusterIntervals {
            intervals,
            centroid_dist,
        }
    }

    /// A phase where one function dominates with few calls, plus a noisy
    /// helper with many calls: the helper must not be selected.
    #[test]
    fn prefers_low_call_count_functions() {
        let intervals = vec![
            profile(&[(1, 900, 1), (2, 100, 1000)]),
            profile(&[(1, 900, 1), (2, 100, 900)]),
            profile(&[(1, 900, 1), (2, 100, 950)]),
        ];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0, 1, 2])],
            Algorithm1Config::default(),
        );
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].sites.len(), 1);
        let site = &phases[0].sites[0];
        assert_eq!(site.function, FunctionId(1));
        assert_eq!(site.inst_type, InstrumentationType::Body);
        assert_eq!(site.phase_pct, 100.0);
    }

    /// A long-lived function (active, zero calls) must get a loop site.
    #[test]
    fn zero_calls_yields_loop_type() {
        let intervals = vec![profile(&[(3, 1000, 0)]), profile(&[(3, 1000, 0)])];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases =
            identify_instrumentation(&matrix, &[cluster(vec![0, 1])], Algorithm1Config::default());
        assert_eq!(phases[0].sites[0].inst_type, InstrumentationType::Loop);
    }

    /// Rank breaks call-count ties: the function active in more of the
    /// phase's intervals wins.
    #[test]
    fn rank_breaks_ties() {
        let intervals = vec![
            profile(&[(1, 500, 2), (2, 500, 2)]),
            profile(&[(1, 500, 2)]),
            profile(&[(1, 500, 2)]),
        ];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0, 1, 2])],
            Algorithm1Config::default(),
        );
        // Function 1 has rank 1.0, function 2 rank 1/3; same calls in
        // interval 0.
        assert_eq!(phases[0].sites[0].function, FunctionId(1));
        assert_eq!(phases[0].sites[0].phase_pct, 100.0);
    }

    /// Two disjoint behaviors inside one cluster need two sites; coverage
    /// percentages are attributed disjointly and sum to 100%.
    #[test]
    fn multiple_sites_cover_disjoint_intervals() {
        let intervals = vec![
            profile(&[(1, 1000, 1)]),
            profile(&[(1, 1000, 1)]),
            profile(&[(2, 1000, 1)]),
        ];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0, 1, 2])],
            Algorithm1Config::default(),
        );
        let p = &phases[0];
        assert_eq!(p.sites.len(), 2);
        let pct_sum: f64 = p.sites.iter().map(|s| s.phase_pct).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9);
        // Sites keyed to different functions.
        assert_ne!(p.sites[0].function, p.sites[1].function);
    }

    /// With the 95% threshold, a rare outlier interval must NOT force an
    /// extra site.
    #[test]
    fn coverage_threshold_skips_outliers() {
        // 19 intervals of function 1, 1 outlier of function 9 placed
        // farthest from the centroid.
        let mut profs: Vec<FlatProfile> = (0..19).map(|_| profile(&[(1, 1000, 1)])).collect();
        profs.push(profile(&[(9, 1000, 1)]));
        let matrix = IntervalMatrix::from_interval_profiles(&profs);
        let cluster = ClusterIntervals {
            intervals: (0..20).collect(),
            centroid_dist: (0..20).map(|i| if i == 19 { 10.0 } else { 0.0 }).collect(),
        };
        let phases = identify_instrumentation(&matrix, &[cluster], Algorithm1Config::default());
        assert_eq!(phases[0].sites.len(), 1, "outlier must be skipped at 95%");
        assert_eq!(phases[0].sites[0].phase_pct, 95.0);
    }

    /// Threshold 1.0 covers everything, selecting the outlier site too.
    #[test]
    fn full_threshold_covers_outliers() {
        let mut profs: Vec<FlatProfile> = (0..19).map(|_| profile(&[(1, 1000, 1)])).collect();
        profs.push(profile(&[(9, 1000, 1)]));
        let matrix = IntervalMatrix::from_interval_profiles(&profs);
        let cluster = ClusterIntervals {
            intervals: (0..20).collect(),
            centroid_dist: (0..20).map(|i| if i == 19 { 10.0 } else { 0.0 }).collect(),
        };
        let phases = identify_instrumentation(
            &matrix,
            &[cluster],
            Algorithm1Config {
                coverage_threshold: 1.0,
            },
        );
        assert_eq!(phases[0].sites.len(), 2);
    }

    /// The same function can be a body site in one phase and a loop site
    /// in another (the paper's Graph500 run_bfs result), with distinct
    /// heartbeat ids.
    #[test]
    fn body_and_loop_variants_get_distinct_hb_ids() {
        let intervals = vec![
            profile(&[(1, 1000, 2)]), // phase 0: called -> body
            profile(&[(1, 1000, 0)]), // phase 1: running -> loop
        ];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0]), cluster(vec![1])],
            Algorithm1Config::default(),
        );
        let s0 = &phases[0].sites[0];
        let s1 = &phases[1].sites[0];
        assert_eq!(s0.function, s1.function);
        assert_eq!(s0.inst_type, InstrumentationType::Body);
        assert_eq!(s1.inst_type, InstrumentationType::Loop);
        assert_ne!(s0.hb_id, s1.hb_id);
    }

    /// The same ⟨function, type⟩ across two phases shares one heartbeat
    /// id (the paper's MiniFE cg_solve appears as HB 2 in two phases).
    #[test]
    fn same_site_in_two_phases_shares_hb_id() {
        let intervals = vec![profile(&[(1, 1000, 0)]), profile(&[(1, 1000, 0)])];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0]), cluster(vec![1])],
            Algorithm1Config::default(),
        );
        assert_eq!(phases[0].sites[0].hb_id, phases[1].sites[0].hb_id);
    }

    /// Centroid-distance ordering drives which interval selects first:
    /// the most representative interval's dominant function becomes the
    /// first site.
    #[test]
    fn representative_interval_selects_first() {
        let intervals = vec![
            profile(&[(5, 1000, 1)]), // outlier-ish
            profile(&[(1, 1000, 1)]), // representative
            profile(&[(1, 1000, 1), (5, 10, 1)]),
        ];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let cluster = ClusterIntervals {
            intervals: vec![0, 1, 2],
            centroid_dist: vec![5.0, 0.1, 0.2],
        };
        let phases = identify_instrumentation(
            &matrix,
            &[cluster],
            Algorithm1Config {
                coverage_threshold: 1.0,
            },
        );
        assert_eq!(phases[0].sites[0].function, FunctionId(1));
        // Interval 2 contains function 1 -> covered by site 0, not a new
        // site; interval 0 needs the second site.
        assert_eq!(phases[0].sites[0].covered_intervals, vec![1, 2]);
        assert_eq!(phases[0].sites[1].function, FunctionId(5));
    }

    #[test]
    fn empty_cluster_produces_empty_phase() {
        let matrix = IntervalMatrix::from_interval_profiles(&[profile(&[(1, 1, 1)])]);
        let phases =
            identify_instrumentation(&matrix, &[cluster(vec![])], Algorithm1Config::default());
        assert!(phases[0].sites.is_empty());
        assert!(phases[0].intervals.is_empty());
    }

    #[test]
    fn all_idle_interval_is_skipped() {
        let intervals = vec![profile(&[]), profile(&[(1, 10, 1)])];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0, 1])],
            Algorithm1Config {
                coverage_threshold: 1.0,
            },
        );
        assert_eq!(phases[0].sites.len(), 1);
        assert_eq!(phases[0].sites[0].covered_intervals, vec![1]);
    }

    #[test]
    fn app_pct_uses_total_run_length() {
        let intervals = vec![
            profile(&[(1, 1000, 1)]),
            profile(&[(1, 1000, 1)]),
            profile(&[(2, 1000, 1)]),
            profile(&[(2, 1000, 1)]),
        ];
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let phases = identify_instrumentation(
            &matrix,
            &[cluster(vec![0, 1]), cluster(vec![2, 3])],
            Algorithm1Config::default(),
        );
        assert_eq!(phases[0].sites[0].phase_pct, 100.0);
        assert_eq!(phases[0].sites[0].app_pct, 50.0);
        assert_eq!(phases[1].sites[0].app_pct, 50.0);
    }
}
