//! Mini MiniAMR (paper §VI-C, Table IV, Fig. 4).
//!
//! A block-structured adaptive-mesh proxy: "it applies a stencil
//! computation over a mesh that adaptively refines and coarsens as
//! objects move through it." The paper's discovered phases:
//!
//! * phase 0 — the "normal" computation, covering ~89% of the run, with
//!   `check_sum` as its site ("not a function that performs a simple
//!   mathematical checksum but rather embodies more involved matrix
//!   computations");
//! * phase 1 — the deviations: "the large and varied deviation in the
//!   middle is a mesh adaptation, while the smaller periodic deviations
//!   are large communication steps", with `allocate`, `pack_block` and
//!   `unpack_block` as its sites.
//!
//! Function inventory: `stencil_calc`, `check_sum`, `comm`, `pack_block`,
//! `unpack_block`, `allocate` (the manual sites are `check_sum`,
//! `stencil_calc`, `comm`).
//!
//! The mesh is real: blocks of `8³` cells holding a moving Gaussian
//! source; stencils, checksums, refinement splits, and ring halo
//! exchanges all do real arithmetic. `result_check` is the final global
//! checksum (must be finite and positive).

use crate::graph500::assemble_output;
use crate::harness::{AppOutput, Funcs, RankContext, RunMode};
use crate::plan::HeartbeatPlan;
use incprof_core::report::ManualSite;
use incprof_core::types::InstrumentationType;
use mpi_sim::{Comm, World};

/// Configuration for a MiniAMR run.
#[derive(Debug, Clone)]
pub struct MiniAmrConfig {
    /// Blocks per side of the initial coarse grid (`b³` blocks).
    pub blocks_per_side: usize,
    /// Number of timesteps.
    pub steps: usize,
    /// A large communication burst occurs every this many steps.
    pub comm_burst_every: usize,
    /// The big mesh-adaptation event starts at this step.
    pub adapt_at_step: usize,
    /// MPI ranks (must be 1 in virtual mode).
    pub procs: usize,
}

impl Default for MiniAmrConfig {
    fn default() -> Self {
        MiniAmrConfig {
            blocks_per_side: 4,
            steps: 420,
            comm_burst_every: 36,
            adapt_at_step: 210,
            procs: 1,
        }
    }
}

impl MiniAmrConfig {
    /// Tiny configuration for fast tests.
    pub fn tiny() -> MiniAmrConfig {
        MiniAmrConfig {
            blocks_per_side: 2,
            steps: 260,
            comm_burst_every: 40,
            adapt_at_step: 130,
            procs: 1,
        }
    }
}

/// Cells per block side.
const BS: usize = 8;
/// Cells per block.
const BCELLS: usize = BS * BS * BS;

const F_STENCIL: usize = 0;
const F_CHECKSUM: usize = 1;
const F_COMM: usize = 2;
const F_PACK: usize = 3;
const F_UNPACK: usize = 4;
const F_ALLOCATE: usize = 5;

const FUNC_NAMES: [&str; 6] = [
    "stencil_calc",
    "check_sum",
    "comm",
    "pack_block",
    "unpack_block",
    "allocate",
];

/// Virtual cost per cell in the stencil sweep (≈ 0.08 s/step at 64
/// blocks; several steps fit one collection interval, as in MiniAMR).
const NS_PER_STENCIL_CELL: u64 = 2_500;
/// Virtual cost per cell in check_sum (≈ 0.22 s/step at 64 blocks).
const NS_PER_CHECKSUM_CELL: u64 = 6_700;
/// Virtual cost per face cell in a normal halo pack/unpack.
const NS_PER_FACE_CELL: u64 = 1_000;
/// Virtual cost per face cell during a big communication burst.
const NS_PER_BURST_FACE_CELL: u64 = 5_000;
/// Virtual cost per newly allocated block during adaptation.
const NS_PER_ALLOC_BLOCK: u64 = 25_000_000;

/// The paper's manual instrumentation sites for MiniAMR (Table IV).
pub fn manual_sites() -> Vec<ManualSite> {
    vec![
        ManualSite::new("check_sum", InstrumentationType::Body),
        ManualSite::new("stencil_calc", InstrumentationType::Body),
        ManualSite::new("comm", InstrumentationType::Body),
    ]
}

/// One mesh block: refinement level and its cell data.
#[derive(Debug, Clone)]
struct Block {
    level: u32,
    /// Center position of the block in the unit cube.
    center: [f64; 3],
    /// Half side length of the block.
    half: f64,
    cells: Vec<f64>,
}

struct Mesh {
    blocks: Vec<Block>,
}

impl Mesh {
    fn initial(b: usize) -> Mesh {
        let mut blocks = Vec::with_capacity(b * b * b);
        for z in 0..b {
            for y in 0..b {
                for x in 0..b {
                    blocks.push(Block {
                        level: 0,
                        center: [
                            (x as f64 + 0.5) / b as f64,
                            (y as f64 + 0.5) / b as f64,
                            (z as f64 + 0.5) / b as f64,
                        ],
                        half: 0.5 / b as f64,
                        cells: vec![0.0; BCELLS],
                    });
                }
            }
        }
        Mesh { blocks }
    }

    fn total_cells(&self) -> usize {
        self.blocks.len() * BCELLS
    }
}

/// Inject the moving object (Gaussian bump) into the mesh at position `t`.
fn inject_object(mesh: &mut Mesh, t: f64) {
    let pos = [0.2 + 0.6 * t, 0.5, 0.2 + 0.6 * t];
    for b in &mut mesh.blocks {
        let d2: f64 = b
            .center
            .iter()
            .zip(&pos)
            .map(|(c, p)| (c - p) * (c - p))
            .sum();
        let scale = (-(d2) / 0.02).exp();
        if scale > 1e-6 {
            for (i, cell) in b.cells.iter_mut().enumerate() {
                *cell += scale * (1.0 + (i % 7) as f64 * 0.01);
            }
        }
    }
}

/// 7-point in-block stencil sweep (real arithmetic, boundary clamped).
fn stencil_calc(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    mesh: &mut Mesh,
) {
    let _p = ctx.rt.enter(funcs.id(F_STENCIL));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_STENCIL]);
    let idx = |x: usize, y: usize, z: usize| (z * BS + y) * BS + x;
    for b in &mut mesh.blocks {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_STENCIL]);
        let old = b.cells.clone();
        for z in 0..BS {
            for y in 0..BS {
                for x in 0..BS {
                    let c = old[idx(x, y, z)];
                    let xm = old[idx(x.saturating_sub(1), y, z)];
                    let xp = old[idx((x + 1).min(BS - 1), y, z)];
                    let ym = old[idx(x, y.saturating_sub(1), z)];
                    let yp = old[idx(x, (y + 1).min(BS - 1), z)];
                    let zm = old[idx(x, y, z.saturating_sub(1))];
                    let zp = old[idx(x, y, (z + 1).min(BS - 1))];
                    b.cells[idx(x, y, z)] = (c + xm + xp + ym + yp + zm + zp) / 7.0;
                }
            }
        }
        ctx.advance(BCELLS as u64 * NS_PER_STENCIL_CELL);
    }
}

/// Global checksum: weighted norms over every cell, allreduced.
fn check_sum(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    mesh: &Mesh,
    comm: &Comm,
) -> f64 {
    let _p = ctx.rt.enter(funcs.id(F_CHECKSUM));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_CHECKSUM]);
    let mut sum = 0.0f64;
    let mut norm2 = 0.0f64;
    for b in &mesh.blocks {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_CHECKSUM]);
        for &c in &b.cells {
            sum += c;
            norm2 += c * c;
        }
        ctx.advance(BCELLS as u64 * NS_PER_CHECKSUM_CELL);
    }
    comm.allreduce_sum(sum + norm2.sqrt())
}

/// Pack the six faces of every block into a send buffer.
fn pack_block(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    mesh: &Mesh,
    burst: bool,
) -> Vec<f64> {
    let _p = ctx.rt.enter(funcs.id(F_PACK));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_PACK]);
    let cost = if burst {
        NS_PER_BURST_FACE_CELL
    } else {
        NS_PER_FACE_CELL
    };
    let mut buf = Vec::with_capacity(mesh.blocks.len() * 6 * BS * BS);
    let idx = |x: usize, y: usize, z: usize| (z * BS + y) * BS + x;
    for b in &mesh.blocks {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_PACK]);
        for i in 0..BS {
            for j in 0..BS {
                buf.push(b.cells[idx(0, i, j)]);
                buf.push(b.cells[idx(BS - 1, i, j)]);
                buf.push(b.cells[idx(i, 0, j)]);
                buf.push(b.cells[idx(i, BS - 1, j)]);
                buf.push(b.cells[idx(i, j, 0)]);
                buf.push(b.cells[idx(i, j, BS - 1)]);
            }
        }
        ctx.advance(6 * (BS * BS) as u64 * cost);
    }
    buf
}

/// Unpack a received buffer, folding boundary contributions back in.
fn unpack_block(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    mesh: &mut Mesh,
    buf: &[f64],
    burst: bool,
) {
    let _p = ctx.rt.enter(funcs.id(F_UNPACK));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_UNPACK]);
    let cost = if burst {
        NS_PER_BURST_FACE_CELL
    } else {
        NS_PER_FACE_CELL
    };
    let idx = |x: usize, y: usize, z: usize| (z * BS + y) * BS + x;
    let mut k = 0usize;
    for b in &mut mesh.blocks {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_UNPACK]);
        for i in 0..BS {
            for j in 0..BS {
                if k + 6 <= buf.len() {
                    // Blend neighbor-face values into our faces (simple
                    // ghost-cell average).
                    let avg = |cur: f64, inc: f64| 0.5 * (cur + inc);
                    let c0 = b.cells[idx(0, i, j)];
                    b.cells[idx(0, i, j)] = avg(c0, buf[k]);
                    let c1 = b.cells[idx(BS - 1, i, j)];
                    b.cells[idx(BS - 1, i, j)] = avg(c1, buf[k + 1]);
                    k += 6;
                }
            }
        }
        ctx.advance(6 * (BS * BS) as u64 * cost);
    }
}

/// The communication driver: pack, ring sendrecv, unpack.
fn comm_step(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    mesh: &mut Mesh,
    comm: &Comm,
    burst: bool,
) {
    let _p = ctx.rt.enter(funcs.id(F_COMM));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_COMM]);
    let rounds = if burst { 2 } else { 1 };
    for _ in 0..rounds {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_COMM]);
        let buf = pack_block(ctx, funcs, plan, mesh, burst);
        let received = if comm.size() > 1 {
            // Ring halo exchange: send to the next rank, receive from the
            // previous one.
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, buf);
            comm.recv::<Vec<f64>>(prev)
        } else {
            buf
        };
        unpack_block(ctx, funcs, plan, mesh, &received, burst);
    }
}

/// Mesh adaptation: refine blocks the object currently overlaps,
/// splitting each into 8 children (`allocate` per child).
fn adapt_mesh(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    mesh: &mut Mesh,
    t: f64,
    max_blocks: usize,
) -> usize {
    let pos = [0.2 + 0.6 * t, 0.5, 0.2 + 0.6 * t];
    let mut new_blocks = Vec::new();
    let mut refined = 0usize;
    for b in std::mem::take(&mut mesh.blocks) {
        let d2: f64 = b
            .center
            .iter()
            .zip(&pos)
            .map(|(c, p)| (c - p) * (c - p))
            .sum();
        // A block refines when the object is within its own radius plus
        // a capture margin. Refinement is one level deep: real MiniAMR
        // coarsens blocks the object has left, keeping the mesh size
        // roughly stationary, which this bound models.
        let radius = 0.2 + b.half;
        let near = d2 < radius * radius && b.level < 1;
        if near && new_blocks.len() + 8 <= max_blocks {
            refined += 1;
            let half = b.half / 2.0;
            for oz in [-1.0, 1.0] {
                for oy in [-1.0, 1.0] {
                    for ox in [-1.0, 1.0] {
                        new_blocks.push(allocate(
                            ctx,
                            funcs,
                            plan,
                            &b,
                            [
                                b.center[0] + ox * half,
                                b.center[1] + oy * half,
                                b.center[2] + oz * half,
                            ],
                        ));
                    }
                }
            }
        } else {
            new_blocks.push(b);
        }
    }
    mesh.blocks = new_blocks;
    refined
}

/// Allocate one refined child block, interpolating parent data.
fn allocate(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    parent: &Block,
    center: [f64; 3],
) -> Block {
    let _p = ctx.rt.enter(funcs.id(F_ALLOCATE));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_ALLOCATE]);
    let mut cells = vec![0.0; BCELLS];
    // Injection interpolation: children inherit the parent mean plus a
    // positional perturbation (real data movement).
    let mean: f64 = parent.cells.iter().sum::<f64>() / BCELLS as f64;
    for (i, c) in cells.iter_mut().enumerate() {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_ALLOCATE]);
        *c = mean + parent.cells[i] * 0.125;
    }
    ctx.advance(NS_PER_ALLOC_BLOCK);
    Block {
        level: parent.level + 1,
        center,
        half: parent.half / 2.0,
        cells,
    }
}

/// Run MiniAMR; `result_check` is the final global checksum.
pub fn run(cfg: &MiniAmrConfig, mode: RunMode, plan: &HeartbeatPlan) -> AppOutput {
    if matches!(mode, RunMode::Virtual { .. }) {
        assert_eq!(
            cfg.procs, 1,
            "virtual mode requires a single rank for determinism"
        );
    }
    let results = World::run(cfg.procs, |comm| {
        let ctx = RankContext::new(mode);
        let funcs = Funcs::register(&ctx.rt, &FUNC_NAMES);
        let resolved = plan.resolve(&ctx.ekg);

        let mut mesh = Mesh::initial(cfg.blocks_per_side);
        let max_blocks = cfg.blocks_per_side.pow(3) * 3;
        let mut checksum = 0.0;
        for step in 0..cfg.steps {
            let t = step as f64 / cfg.steps.max(1) as f64;
            inject_object(&mut mesh, t);

            let burst = cfg.comm_burst_every > 0 && step > 0 && step % cfg.comm_burst_every == 0;
            comm_step(&ctx, &funcs, &resolved, &mut mesh, &comm, burst);

            // The big adaptation event: several consecutive steps spend
            // their time refining instead of computing.
            let adapting = step >= cfg.adapt_at_step && step < cfg.adapt_at_step + 12;
            if adapting {
                adapt_mesh(&ctx, &funcs, &resolved, &mut mesh, t, max_blocks);
                comm_step(&ctx, &funcs, &resolved, &mut mesh, &comm, true);
                continue;
            }

            stencil_calc(&ctx, &funcs, &resolved, &mut mesh);
            checksum = check_sum(&ctx, &funcs, &resolved, &mesh, &comm);
        }
        let _ = mesh.total_cells();
        let final_profile = ctx.rt.snapshot(0).flat;
        let data = (comm.rank() == 0).then(|| ctx.finish());
        (data, checksum, final_profile)
    });
    assemble_output(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::discovered_site_names;
    use incprof_core::PhaseDetector;

    fn tiny_run() -> AppOutput {
        run(
            &MiniAmrConfig::tiny(),
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        )
    }

    #[test]
    fn checksum_is_finite_and_positive() {
        let out = tiny_run();
        assert!(out.result_check.is_finite());
        assert!(
            out.result_check > 0.0,
            "object injection must leave mass in the mesh"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny_run();
        let b = tiny_run();
        assert_eq!(a.result_check, b.result_check);
        assert_eq!(
            a.rank0.series.last().unwrap().flat,
            b.rank0.series.last().unwrap().flat
        );
    }

    #[test]
    fn adaptation_refines_blocks() {
        // The profile must show allocate calls (the adaptation ran).
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let alloc = out.rank0.table.id_of("allocate").unwrap();
        assert!(last.flat.get(alloc).calls > 0, "no blocks were refined");
        assert_eq!(
            last.flat.get(alloc).calls % 8,
            0,
            "refinement splits into 8 children"
        );
    }

    #[test]
    fn checksum_dominates_profile() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let cs = out.rank0.table.id_of("check_sum").unwrap();
        let frac = last.flat.get(cs).self_time as f64 / last.flat.total_self_time() as f64;
        assert!(frac > 0.3, "check_sum fraction {frac}");
    }

    #[test]
    fn phase_analysis_recovers_paper_shape() {
        let out = run(
            &MiniAmrConfig {
                blocks_per_side: 3,
                steps: 150,
                comm_burst_every: 25,
                adapt_at_step: 75,
                procs: 1,
            },
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        );
        let analysis = PhaseDetector::new()
            .detect_series(&out.rank0.series)
            .unwrap();
        assert!((2..=5).contains(&analysis.k), "got k = {}", analysis.k);
        let names = discovered_site_names(&analysis, &out.rank0.table);
        assert!(names.contains("check_sum"), "{names:?}");
        // The deviation phase must expose at least one of the paper's
        // three deviation sites.
        assert!(
            ["allocate", "pack_block", "unpack_block"]
                .iter()
                .any(|n| names.contains(*n)),
            "{names:?}"
        );
        // check_sum is the dominant site (paper: ~89% of the app).
        let dominant = analysis
            .phases
            .iter()
            .flat_map(|p| &p.sites)
            .max_by(|a, b| a.app_pct.partial_cmp(&b.app_pct).unwrap())
            .unwrap();
        assert_eq!(out.rank0.table.name(dominant.function), "check_sum");
        assert!(
            dominant.app_pct > 55.0,
            "dominant covers {}%",
            dominant.app_pct
        );
    }

    #[test]
    fn manual_sites_are_simultaneously_active() {
        // The paper's observation: the three manual sites beat together
        // in normal steps (not capturing distinct phases).
        let plan = HeartbeatPlan::from_manual(&manual_sites());
        let out = run(&MiniAmrConfig::tiny(), RunMode::virtual_1s(), &plan);
        let names = &out.rank0.hb_names;
        let cs = names.iter().position(|n| n == "check_sum").unwrap() as u32;
        let st = names.iter().position(|n| n == "stencil_calc").unwrap() as u32;
        let mut both_active = 0;
        let mut cs_active = 0;
        for r in &out.rank0.hb_records {
            let a = r.count(appekg::HeartbeatId(cs)) > 0;
            let b = r.count(appekg::HeartbeatId(st)) > 0;
            if a {
                cs_active += 1;
                if b {
                    both_active += 1;
                }
            }
        }
        assert!(cs_active > 0);
        assert!(
            both_active * 10 >= cs_active * 7,
            "stencil and check_sum should usually share intervals ({both_active}/{cs_active})"
        );
    }

    #[test]
    fn multirank_wall_run_exchanges_halos() {
        let out = run(
            &MiniAmrConfig {
                blocks_per_side: 2,
                steps: 6,
                comm_burst_every: 3,
                adapt_at_step: 4,
                procs: 4,
            },
            RunMode::Wall {
                interval_ns: 50_000_000,
                profile: true,
            },
            &HeartbeatPlan::none(),
        );
        assert!(out.result_check.is_finite());
        let pack = out.rank0.table.id_of("pack_block").unwrap();
        assert!(out.rank0.series.last().unwrap().flat.get(pack).calls > 0);
    }
}
