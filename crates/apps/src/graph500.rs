//! Mini Graph500 (paper §VI-A, Table II, Fig. 2).
//!
//! Reproduces the structure of the Graph500 2.1.4 `mpi_simple` benchmark:
//! "creates a large graph data structure, and then performs breadth-first
//! searches over the graph, and checks (validates) the result of the
//! searches." The function inventory matches the paper's discovered and
//! manual sites:
//!
//! * `generate_kronecker_range` / `make_one_edge` — R-MAT/Kronecker edge
//!   generation, one call per edge;
//! * `make_graph_data_structure` — CSR construction;
//! * `run_bfs` — level-synchronous BFS (one call per root, several
//!   intervals long, so phase analysis sees both call-bearing and
//!   continuation intervals — the paper's body *and* loop sites);
//! * `validate_bfs_result` — multi-pass validation, the longest kernel
//!   (the paper's dominant phase at ~62% of the run).
//!
//! The virtual cost model is calibrated so the default configuration
//! spans ≈190 one-second intervals with the paper's rough proportions
//! (validate ≈ 60%, BFS ≈ 25%, generation ≈ 11%).

use crate::harness::{AppOutput, Funcs, RankContext, RankData, RunMode};
use crate::plan::HeartbeatPlan;
use incprof_core::report::ManualSite;
use incprof_core::types::InstrumentationType;
use mpi_sim::{Comm, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a Graph500 run.
#[derive(Debug, Clone)]
pub struct Graph500Config {
    /// log2 of the vertex count (Graph500 "scale").
    pub scale: u32,
    /// Edges per vertex (Graph500 "edgefactor").
    pub edge_factor: u32,
    /// Number of BFS roots searched and validated.
    pub num_roots: usize,
    /// RNG seed.
    pub seed: u64,
    /// MPI ranks (must be 1 in virtual mode).
    pub procs: usize,
}

impl Default for Graph500Config {
    fn default() -> Self {
        Graph500Config {
            scale: 13,
            edge_factor: 16,
            num_roots: 48,
            seed: 42,
            procs: 1,
        }
    }
}

impl Graph500Config {
    /// A tiny configuration for fast tests (a handful of intervals).
    pub fn tiny() -> Graph500Config {
        Graph500Config {
            scale: 9,
            edge_factor: 8,
            num_roots: 10,
            seed: 42,
            procs: 1,
        }
    }
}

/// Virtual cost per generated edge (ns): generation ≈ 20 s total.
const NS_PER_GEN_EDGE: u64 = 150_000;
/// Virtual cost per edge during CSR construction: ≈ 3 s total.
const NS_PER_BUILD_EDGE: u64 = 23_000;
/// Virtual cost per edge traversal in BFS: BFS ≈ 1.5 s per root.
const NS_PER_BFS_EDGE: u64 = 5_700;
/// Virtual cost per edge check in validation passes 2–3: ≈ 3.6 s per root.
const NS_PER_VALIDATE_EDGE: u64 = 6_800;
/// Virtual cost per vertex per level-fill pass in validation pass 1.
const NS_PER_VALIDATE_VERTEX: u64 = 800;

const F_GEN: usize = 0;
const F_EDGE: usize = 1;
const F_BUILD: usize = 2;
const F_BFS: usize = 3;
const F_VALIDATE: usize = 4;

const FUNC_NAMES: [&str; 5] = [
    "generate_kronecker_range",
    "make_one_edge",
    "make_graph_data_structure",
    "run_bfs",
    "validate_bfs_result",
];

/// The paper's manual instrumentation sites for Graph500 (Table II).
pub fn manual_sites() -> Vec<ManualSite> {
    vec![
        ManualSite::new("make_graph_data_structure", InstrumentationType::Body),
        ManualSite::new("generate_kronecker_range", InstrumentationType::Body),
        ManualSite::new("run_bfs", InstrumentationType::Body),
        ManualSite::new("validate_bfs_result", InstrumentationType::Body),
    ]
}

/// CSR graph.
struct Csr {
    nv: usize,
    xadj: Vec<u32>,
    adj: Vec<u32>,
}

impl Csr {
    fn degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }
    fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.xadj[v] as usize..self.xadj[v + 1] as usize]
    }
}

/// R-MAT edge via 'scale' recursive quadrant choices (A=0.57, B=0.19,
/// C=0.19, D=0.05 — the Graph500 parameters).
fn make_one_edge(ctx: &RankContext, funcs: &Funcs, rng: &mut StdRng, scale: u32) -> (u32, u32) {
    let _p = ctx.rt.enter(funcs.id(F_EDGE));
    let mut u = 0u32;
    let mut v = 0u32;
    for bit in (0..scale).rev() {
        let r: f64 = rng.gen();
        let (ub, vb) = if r < 0.57 {
            (0, 0)
        } else if r < 0.76 {
            (0, 1)
        } else if r < 0.95 {
            (1, 0)
        } else {
            (1, 1)
        };
        u |= ub << bit;
        v |= vb << bit;
    }
    ctx.advance(NS_PER_GEN_EDGE);
    (u, v)
}

/// Generate this rank's share of the edge list.
fn generate_kronecker_range(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    cfg: &Graph500Config,
    comm: &Comm,
) -> Vec<(u32, u32)> {
    let _p = ctx.rt.enter(funcs.id(F_GEN));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_GEN]);
    let total_edges = (cfg.edge_factor as u64) << cfg.scale;
    let per_rank = total_edges / comm.size() as u64;
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(comm.rank() as u64));
    let mut edges = Vec::with_capacity(per_rank as usize);
    for _ in 0..per_rank {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_GEN]);
        let _hb = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_EDGE]);
        edges.push(make_one_edge(ctx, funcs, &mut rng, cfg.scale));
    }
    edges
}

/// Build the CSR structure from the (allgathered) edge list.
fn make_graph_data_structure(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    nv: usize,
    edges: &[(u32, u32)],
) -> Csr {
    let _p = ctx.rt.enter(funcs.id(F_BUILD));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_BUILD]);
    let mut deg = vec![0u32; nv + 1];
    for &(u, v) in edges {
        if u != v {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
    }
    ctx.advance(edges.len() as u64 * NS_PER_BUILD_EDGE / 2);
    for i in 0..nv {
        deg[i + 1] += deg[i];
    }
    let xadj = deg.clone();
    let mut cursor = xadj.clone();
    let mut adj = vec![0u32; xadj[nv] as usize];
    for &(u, v) in edges {
        if u != v {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
    }
    ctx.advance(edges.len() as u64 * NS_PER_BUILD_EDGE / 2);
    Csr { nv, xadj, adj }
}

/// Level-synchronous BFS; returns the parent array (u32::MAX = unvisited).
fn run_bfs(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    graph: &Csr,
    root: u32,
    comm: &Comm,
) -> Vec<u32> {
    let _p = ctx.rt.enter(funcs.id(F_BFS));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_BFS]);
    let mut parent = vec![u32::MAX; graph.nv];
    parent[root as usize] = root;
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_BFS]);
        let mut next = Vec::new();
        let mut edges_scanned = 0u64;
        for &u in &frontier {
            for &v in graph.neighbors(u as usize) {
                edges_scanned += 1;
                if parent[v as usize] == u32::MAX {
                    parent[v as usize] = u;
                    next.push(v);
                }
            }
        }
        // Rank-symmetric level synchronization, as in mpi_simple.
        let global_next = comm.allreduce_sum_u64(next.len() as u64);
        ctx.advance(edges_scanned * NS_PER_BFS_EDGE);
        if global_next == 0 {
            break;
        }
        frontier = next;
    }
    parent
}

/// Multi-pass validation of a BFS tree; returns the number of errors.
fn validate_bfs_result(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    graph: &Csr,
    root: u32,
    parent: &[u32],
    comm: &Comm,
) -> u64 {
    let _p = ctx.rt.enter(funcs.id(F_VALIDATE));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_VALIDATE]);
    let mut errors = 0u64;

    // Pass 1: recompute levels from the parent array.
    let mut level = vec![u32::MAX; graph.nv];
    level[root as usize] = 0;
    let mut changed = true;
    let mut passes = 0u64;
    while changed && passes < graph.nv as u64 {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_VALIDATE]);
        changed = false;
        for v in 0..graph.nv {
            let p = parent[v];
            if p != u32::MAX
                && v as u32 != root
                && level[v] == u32::MAX
                && level[p as usize] != u32::MAX
            {
                level[v] = level[p as usize] + 1;
                changed = true;
            }
        }
        passes += 1;
        ctx.advance(graph.nv as u64 * NS_PER_VALIDATE_VERTEX);
    }

    // Pass 2: each tree edge must exist in the graph and span one level.
    let mut scanned = 0u64;
    for v in 0..graph.nv {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_VALIDATE]);
        let p = parent[v];
        if p == u32::MAX || v as u32 == root {
            continue;
        }
        if level[v] != level[p as usize] + 1 {
            errors += 1;
        }
        // Charge a bounded per-lookup cost (the real benchmark uses a
        // sorted adjacency lookup, not a full linear scan of hub rows).
        scanned += (graph.degree(p as usize) as u64).min(64);
        if !graph.neighbors(p as usize).contains(&(v as u32)) {
            errors += 1;
        }
        if scanned >= 4096 {
            ctx.advance(scanned * NS_PER_VALIDATE_EDGE);
            scanned = 0;
        }
    }
    ctx.advance(scanned * NS_PER_VALIDATE_EDGE);

    // Pass 3: every edge with a visited endpoint must have both visited.
    scanned = 0;
    for u in 0..graph.nv {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_VALIDATE]);
        for &v in graph.neighbors(u) {
            scanned += 1;
            let uv = parent[u] != u32::MAX;
            let vv = parent[v as usize] != u32::MAX;
            if uv != vv {
                errors += 1;
            }
        }
        if scanned >= 4096 {
            ctx.advance(scanned * NS_PER_VALIDATE_EDGE);
            scanned = 0;
        }
    }
    ctx.advance(scanned * NS_PER_VALIDATE_EDGE);

    comm.allreduce_sum_u64(errors)
}

/// Run the benchmark. Returns rank 0's collected profile/heartbeat data
/// and the total validation error count (must be 0) in `result_check`.
pub fn run(cfg: &Graph500Config, mode: RunMode, plan: &HeartbeatPlan) -> AppOutput {
    if matches!(mode, RunMode::Virtual { .. }) {
        assert_eq!(
            cfg.procs, 1,
            "virtual mode requires a single rank for determinism"
        );
    }
    let results: Vec<(Option<RankData>, f64, incprof_profile::FlatProfile)> =
        World::run(cfg.procs, |comm| {
            let ctx = RankContext::new(mode);
            let funcs = Funcs::register(&ctx.rt, &FUNC_NAMES);
            let resolved = plan.resolve(&ctx.ekg);

            let local_edges = generate_kronecker_range(&ctx, &funcs, &resolved, cfg, &comm);
            // Everyone gets the full edge list (allgather), as each rank in
            // mpi_simple holds the graph pieces it needs for its searches.
            let all: Vec<Vec<(u32, u32)>> = comm.allgather(local_edges);
            let edges: Vec<(u32, u32)> = all.into_iter().flatten().collect();
            let nv = 1usize << cfg.scale;
            let graph = make_graph_data_structure(&ctx, &funcs, &resolved, nv, &edges);

            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
            let mut total_errors = 0u64;
            let mut visited_total = 0u64;
            for _ in 0..cfg.num_roots {
                // Pick a root with nonzero degree (as the benchmark does).
                let root = loop {
                    let r = rng.gen_range(0..nv as u32);
                    if graph.degree(r as usize) > 0 {
                        break r;
                    }
                };
                comm.barrier();
                let parent = run_bfs(&ctx, &funcs, &resolved, &graph, root, &comm);
                visited_total += parent.iter().filter(|&&p| p != u32::MAX).count() as u64;
                total_errors +=
                    validate_bfs_result(&ctx, &funcs, &resolved, &graph, root, &parent, &comm);
            }
            let check = total_errors as f64 + (visited_total == 0) as u64 as f64;
            let final_profile = ctx.rt.snapshot(0).flat;
            let data = (comm.rank() == 0).then(|| ctx.finish());
            (data, check, final_profile)
        })
        .into_iter()
        .collect();

    assemble_output(results)
}

/// Combine per-rank results into an [`AppOutput`] (shared by all apps):
/// rank 0's data carries the full series; every rank contributes its
/// final cumulative profile; `result_check` is rank 0's check value
/// (collectives make it identical on every rank).
pub(crate) fn assemble_output(
    results: Vec<(Option<RankData>, f64, incprof_profile::FlatProfile)>,
) -> AppOutput {
    let mut rank0 = None;
    let mut check = 0.0;
    let mut rank_profiles = Vec::with_capacity(results.len());
    for (data, c, profile) in results {
        if let Some(d) = data {
            check = c;
            rank0 = Some(d);
        }
        rank_profiles.push(profile);
    }
    let rank0 = rank0.expect("rank 0 present");
    AppOutput {
        makespan_ns: rank0.elapsed_wall_ns,
        rank0,
        rank_profiles,
        result_check: check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::discovered_site_names;
    use incprof_core::PhaseDetector;

    fn tiny_run() -> AppOutput {
        run(
            &Graph500Config::tiny(),
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        )
    }

    #[test]
    fn bfs_trees_validate_cleanly() {
        let out = tiny_run();
        assert_eq!(out.result_check, 0.0, "validation errors detected");
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny_run();
        let b = tiny_run();
        assert_eq!(a.rank0.series.len(), b.rank0.series.len());
        assert_eq!(
            a.rank0.series.last().unwrap().flat,
            b.rank0.series.last().unwrap().flat
        );
    }

    #[test]
    fn profile_contains_all_five_functions() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        for name in FUNC_NAMES {
            let id = out.rank0.table.id_of(name).unwrap();
            let stats = last.flat.get(id);
            // generate_kronecker_range delegates all its time to
            // make_one_edge; it appears through its call count (exactly
            // as in real gprof data).
            assert!(
                stats.self_time > 0 || stats.calls > 0,
                "{name} absent from the profile"
            );
        }
        let edge = out.rank0.table.id_of("make_one_edge").unwrap();
        assert!(last.flat.get(edge).self_time > 0);
    }

    #[test]
    fn validation_dominates_profile() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let total = last.flat.total_self_time() as f64;
        let val = out.rank0.table.id_of("validate_bfs_result").unwrap();
        let frac = last.flat.get(val).self_time as f64 / total;
        assert!(frac > 0.4, "validate fraction {frac} too small");
    }

    #[test]
    fn phase_analysis_recovers_paper_shape() {
        let out = run(
            &Graph500Config {
                scale: 12,
                edge_factor: 16,
                num_roots: 20,
                ..Graph500Config::tiny()
            },
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        );
        let analysis = PhaseDetector::new()
            .detect_series(&out.rank0.series)
            .unwrap();
        assert!(
            (2..=6).contains(&analysis.k),
            "expected a handful of phases, got {}",
            analysis.k
        );
        let names = discovered_site_names(&analysis, &out.rank0.table);
        assert!(
            names.contains("validate_bfs_result"),
            "validate site missing from {names:?}"
        );
        assert!(
            names.contains("run_bfs") || names.contains("make_one_edge"),
            "bfs/generation sites missing from {names:?}"
        );
        // The dominant site (largest app %) must be validation.
        let dominant = analysis
            .phases
            .iter()
            .flat_map(|p| &p.sites)
            .max_by(|a, b| a.app_pct.partial_cmp(&b.app_pct).unwrap())
            .unwrap();
        assert_eq!(
            out.rank0.table.name(dominant.function),
            "validate_bfs_result"
        );
    }

    #[test]
    fn heartbeats_fire_for_manual_plan() {
        let plan = HeartbeatPlan::from_manual(&manual_sites());
        let out = run(&Graph500Config::tiny(), RunMode::virtual_1s(), &plan);
        assert!(!out.rank0.hb_records.is_empty());
        // One body beat per root for run_bfs.
        let names = &out.rank0.hb_names;
        let bfs_idx = names.iter().position(|n| n == "run_bfs").unwrap() as u32;
        let total: u64 = out
            .rank0
            .hb_records
            .iter()
            .map(|r| r.count(appekg::HeartbeatId(bfs_idx)))
            .sum();
        assert_eq!(total, Graph500Config::tiny().num_roots as u64);
    }

    #[test]
    fn multirank_wall_run_is_symmetric_and_correct() {
        let cfg = Graph500Config {
            scale: 8,
            edge_factor: 6,
            num_roots: 2,
            procs: 4,
            ..Graph500Config::tiny()
        };
        let out = run(
            &cfg,
            RunMode::Wall {
                interval_ns: 50_000_000,
                profile: true,
            },
            &HeartbeatPlan::none(),
        );
        assert_eq!(out.result_check, 0.0);
        assert!(out.rank0.series.last().is_some());
    }
}
