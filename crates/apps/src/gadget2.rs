//! Mini Gadget2 — cosmological N-body timestep loop (paper §VI-E,
//! Table VI, Fig. 6).
//!
//! "Gadget2 combines N-body simulation with hydrodynamic forces for
//! large-scale cosmological simulations. As with many scientific
//! simulations, it is timestep-based, recomputing particle densities,
//! accelerations, and positions over a timestep-driven loop with four
//! main function calls in it."
//!
//! Function inventory: the paper's three *discovered* sites —
//! `force_treeevaluate_shortrange` (Barnes–Hut tree walk, ~70% of the
//! run), `pm_setup_nonperiodic_kernel` (the expensive one-time PM-grid
//! kernel construction, ~29%), `force_update_node_recursive` (tree
//! center-of-mass updates) — plus the four *manual* timestep functions
//! (`find_next_sync_point_and_drift`, `domain_decomposition`,
//! `compute_accelerations`, `advance_and_find_timesteps`), which each run
//! far faster than the 1-second interval, reproducing the paper's
//! finding that interval-based analysis cannot separate them.
//!
//! The physics is real: a Plummer-ish particle cloud, an octree with
//! recursively computed centers of mass, gravitational tree forces with
//! an opening-angle criterion, and leapfrog updates. `result_check` is
//! the magnitude of the center-of-mass drift (≈ 0 by momentum
//! conservation).

use crate::graph500::assemble_output;
use crate::harness::{AppOutput, Funcs, RankContext, RunMode};
use crate::plan::HeartbeatPlan;
use incprof_core::report::ManualSite;
use incprof_core::types::InstrumentationType;
use mpi_sim::{Comm, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a Gadget2 run.
#[derive(Debug, Clone)]
pub struct Gadget2Config {
    /// Particle count.
    pub particles: usize,
    /// Timesteps.
    pub steps: usize,
    /// PM kernel grid side (the grid has `side³` cells).
    pub pm_grid: usize,
    /// RNG seed for initial conditions.
    pub seed: u64,
    /// MPI ranks (must be 1 in virtual mode).
    pub procs: usize,
}

impl Default for Gadget2Config {
    fn default() -> Self {
        Gadget2Config {
            particles: 1024,
            steps: 100,
            pm_grid: 32,
            seed: 42,
            procs: 1,
        }
    }
}

impl Gadget2Config {
    /// Tiny configuration for fast tests.
    pub fn tiny() -> Gadget2Config {
        Gadget2Config {
            particles: 256,
            steps: 12,
            pm_grid: 12,
            seed: 42,
            procs: 1,
        }
    }
}

const F_TREE_EVAL: usize = 0;
const F_PM_SETUP: usize = 1;
const F_NODE_UPDATE: usize = 2;
const F_SYNC: usize = 3;
const F_DOMAIN: usize = 4;
const F_ACCEL: usize = 5;
const F_ADVANCE: usize = 6;

const FUNC_NAMES: [&str; 7] = [
    "force_treeevaluate_shortrange",
    "pm_setup_nonperiodic_kernel",
    "force_update_node_recursive",
    "find_next_sync_point_and_drift",
    "domain_decomposition",
    "compute_accelerations",
    "advance_and_find_timesteps",
];

/// Virtual cost per tree-node visit in the force walk
/// (tree force ≈ 0.7 s/step at defaults, ~400 visits/particle).
const NS_PER_NODE_VISIT: u64 = 1_800;
/// Virtual cost per PM grid cell in kernel setup (≈ 21 s at 32³).
const NS_PER_PM_CELL: u64 = 650_000;
/// Virtual cost per tree node in center-of-mass updates.
const NS_PER_NODE_UPDATE: u64 = 18_000;
/// Virtual cost per particle in the fast timestep-driver functions.
const NS_PER_PARTICLE_FAST: u64 = 20_000;

/// The paper's manual instrumentation sites for Gadget2 (Table VI).
pub fn manual_sites() -> Vec<ManualSite> {
    vec![
        ManualSite::new("find_next_sync_point_and_drift", InstrumentationType::Body),
        ManualSite::new("domain_decomposition", InstrumentationType::Body),
        ManualSite::new("compute_accelerations", InstrumentationType::Body),
        ManualSite::new("advance_and_find_timesteps", InstrumentationType::Body),
    ]
}

/// Octree node (children indexed into the arena; -1 = none).
struct Node {
    center: [f64; 3],
    half: f64,
    mass: f64,
    com: [f64; 3],
    children: [i32; 8],
    particle: i32,
}

struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new(half: f64) -> Tree {
        Tree {
            nodes: vec![Node {
                center: [0.0; 3],
                half,
                mass: 0.0,
                com: [0.0; 3],
                children: [-1; 8],
                particle: -1,
            }],
        }
    }

    fn insert(&mut self, pos: &[[f64; 3]], p: usize) {
        let mut node = 0usize;
        loop {
            if self.nodes[node].children != [-1; 8] || self.nodes[node].particle >= 0 {
                // Internal (or about to become internal): push existing
                // particle down, then descend.
                if let Some(existing) = {
                    let n = &mut self.nodes[node];
                    let e = n.particle;
                    n.particle = -1;
                    (e >= 0).then_some(e as usize)
                } {
                    if existing != p {
                        let child = self.child_for(node, &pos[existing]);
                        self.insert_into_child(node, child, pos, existing);
                    }
                }
                let child = self.child_for(node, &pos[p]);
                let next = self.insert_into_child(node, child, pos, p);
                match next {
                    Some(n) => node = n,
                    None => return,
                }
            } else {
                self.nodes[node].particle = p as i32;
                return;
            }
        }
    }

    fn child_for(&self, node: usize, p: &[f64; 3]) -> usize {
        let c = &self.nodes[node].center;
        ((p[0] > c[0]) as usize) | (((p[1] > c[1]) as usize) << 1) | (((p[2] > c[2]) as usize) << 2)
    }

    /// Ensure the child exists; if it is empty, place the particle there
    /// and return None, otherwise return its index to keep descending.
    fn insert_into_child(
        &mut self,
        node: usize,
        child: usize,
        _pos: &[[f64; 3]],
        p: usize,
    ) -> Option<usize> {
        if self.nodes[node].children[child] < 0 {
            let half = self.nodes[node].half / 2.0;
            let mut center = self.nodes[node].center;
            center[0] += half * if child & 1 != 0 { 1.0 } else { -1.0 };
            center[1] += half * if child & 2 != 0 { 1.0 } else { -1.0 };
            center[2] += half * if child & 4 != 0 { 1.0 } else { -1.0 };
            let idx = self.nodes.len() as i32;
            self.nodes.push(Node {
                center,
                half,
                mass: 0.0,
                com: [0.0; 3],
                children: [-1; 8],
                particle: p as i32,
            });
            self.nodes[node].children[child] = idx;
            None
        } else {
            Some(self.nodes[node].children[child] as usize)
        }
    }
}

/// Recursively compute node masses and centers of mass —
/// `force_update_node_recursive`.
fn force_update_node_recursive(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    tree: &mut Tree,
    pos: &[[f64; 3]],
) {
    // Genuinely recursive, with one profiled (re-)entry per node — as in
    // Gadget2, where gprof records one call per recursion. The resulting
    // high call count is what makes Algorithm 1 deprioritize this
    // function relative to the long-running tree walk.
    fn recurse(
        ctx: &RankContext,
        funcs: &Funcs,
        tree: &mut Tree,
        node: usize,
        pos: &[[f64; 3]],
    ) -> (f64, [f64; 3]) {
        let _p = ctx.rt.enter(funcs.id(F_NODE_UPDATE));
        let mut mass = 0.0;
        let mut com = [0.0f64; 3];
        if tree.nodes[node].particle >= 0 {
            let p = tree.nodes[node].particle as usize;
            mass += 1.0;
            for k in 0..3 {
                com[k] += pos[p][k];
            }
        }
        for ci in 0..8 {
            let child = tree.nodes[node].children[ci];
            if child >= 0 {
                let (m, c) = recurse(ctx, funcs, tree, child as usize, pos);
                mass += m;
                for k in 0..3 {
                    com[k] += c[k] * m;
                }
            }
        }
        if mass > 0.0 {
            for c in &mut com {
                *c /= mass;
            }
        }
        tree.nodes[node].mass = mass;
        tree.nodes[node].com = com;
        ctx.advance(NS_PER_NODE_UPDATE);
        (mass, com)
    }
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_NODE_UPDATE]);
    recurse(ctx, funcs, tree, 0, pos);
}

/// Barnes–Hut tree walk computing the short-range force on particle `p`
/// — `force_treeevaluate_shortrange`. Returns (force, nodes visited).
fn tree_force(tree: &Tree, pos: &[f64; 3], theta: f64) -> ([f64; 3], u64) {
    let mut force = [0.0f64; 3];
    let mut visits = 0u64;
    let mut stack = vec![0usize];
    while let Some(node) = stack.pop() {
        visits += 1;
        let n = &tree.nodes[node];
        if n.mass <= 0.0 {
            continue;
        }
        let mut d = [0.0f64; 3];
        let mut r2 = 1e-4; // softening
        for k in 0..3 {
            d[k] = n.com[k] - pos[k];
            r2 += d[k] * d[k];
        }
        let r = r2.sqrt();
        let leaf = n.children == [-1; 8];
        if leaf || (2.0 * n.half) / r < theta {
            let f = n.mass / (r2 * r);
            for k in 0..3 {
                force[k] += f * d[k];
            }
        } else {
            for &c in &n.children {
                if c >= 0 {
                    stack.push(c as usize);
                }
            }
        }
    }
    (force, visits)
}

/// One-time PM kernel construction — `pm_setup_nonperiodic_kernel`:
/// fill the Green's-function kernel over the grid (real transcendental
/// math per cell, as the FFT-based original does).
fn pm_setup_nonperiodic_kernel(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    side: usize,
) -> f64 {
    let _p = ctx.rt.enter(funcs.id(F_PM_SETUP));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_PM_SETUP]);
    let mut acc = 0.0f64;
    for z in 0..side {
        for y in 0..side {
            let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_PM_SETUP]);
            for x in 0..side {
                let kx = x.min(side - x) as f64;
                let ky = y.min(side - y) as f64;
                let kz = z.min(side - z) as f64;
                let k2 = kx * kx + ky * ky + kz * kz;
                if k2 > 0.0 {
                    // -4π/k² with a Gaussian smoothing factor.
                    let v = -4.0 * std::f64::consts::PI / k2 * (-k2 / (side as f64)).exp();
                    acc += v.abs();
                }
            }
            ctx.advance(side as u64 * NS_PER_PM_CELL);
        }
    }
    acc
}

/// Fast timestep driver (sub-interval duration): drift positions.
fn find_next_sync_point_and_drift(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    pos: &mut [[f64; 3]],
    vel: &[[f64; 3]],
    dt: f64,
) {
    let _p = ctx.rt.enter(funcs.id(F_SYNC));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_SYNC]);
    for (p, v) in pos.iter_mut().zip(vel) {
        for k in 0..3 {
            p[k] += v[k] * dt * 0.5;
        }
    }
    ctx.advance(pos.len() as u64 * NS_PER_PARTICLE_FAST);
}

/// Fast timestep driver: exchange particle-count balance info.
fn domain_decomposition(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    n: usize,
    comm: &Comm,
) -> u64 {
    let _p = ctx.rt.enter(funcs.id(F_DOMAIN));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_DOMAIN]);
    ctx.advance(n as u64 * NS_PER_PARTICLE_FAST);
    comm.allreduce_sum_u64(n as u64)
}

/// The acceleration driver: rebuild tree, update nodes, walk forces —
/// `compute_accelerations` (the caller of all three discovered sites).
#[allow(clippy::too_many_arguments)]
fn compute_accelerations(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    pos: &[[f64; 3]],
    acc: &mut [[f64; 3]],
    half: f64,
    theta: f64,
) {
    let _p = ctx.rt.enter(funcs.id(F_ACCEL));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_ACCEL]);
    let mut tree = Tree::new(half);
    for p in 0..pos.len() {
        tree.insert(pos, p);
    }
    force_update_node_recursive(ctx, funcs, plan, &mut tree, pos);
    let _pe = ctx.rt.enter(funcs.id(F_TREE_EVAL));
    let _he = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_TREE_EVAL]);
    // Per-particle walks are independent: compute them data-parallel
    // (deterministic — results are assembled in particle order and each
    // walk only reads the tree), then charge the virtual cost in
    // interval-sized chunks so snapshots land mid-walk exactly as before.
    let results: Vec<([f64; 3], u64)> =
        incprof_par::par_map_index(pos.len(), |i| tree_force(&tree, &pos[i], theta));
    let mut visits_chunk = 0u64;
    for (i, (f, visits)) in results.into_iter().enumerate() {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_TREE_EVAL]);
        acc[i] = f;
        visits_chunk += visits;
        if visits_chunk >= 4096 {
            ctx.advance(visits_chunk * NS_PER_NODE_VISIT);
            visits_chunk = 0;
        }
    }
    ctx.advance(visits_chunk * NS_PER_NODE_VISIT);
}

/// Fast timestep driver: kick velocities and drift the second half.
fn advance_and_find_timesteps(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    pos: &mut [[f64; 3]],
    vel: &mut [[f64; 3]],
    acc: &[[f64; 3]],
    dt: f64,
) {
    let _p = ctx.rt.enter(funcs.id(F_ADVANCE));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_ADVANCE]);
    for i in 0..pos.len() {
        for k in 0..3 {
            vel[i][k] += acc[i][k] * dt;
            pos[i][k] += vel[i][k] * dt * 0.5;
        }
    }
    ctx.advance(pos.len() as u64 * NS_PER_PARTICLE_FAST);
}

/// Run the simulation; `result_check` is the center-of-mass velocity
/// magnitude (≈ 0: gravity between particles conserves momentum).
pub fn run(cfg: &Gadget2Config, mode: RunMode, plan: &HeartbeatPlan) -> AppOutput {
    if matches!(mode, RunMode::Virtual { .. }) {
        assert_eq!(
            cfg.procs, 1,
            "virtual mode requires a single rank for determinism"
        );
    }
    let results = World::run(cfg.procs, |comm| {
        let ctx = RankContext::new(mode);
        let funcs = Funcs::register(&ctx.rt, &FUNC_NAMES);
        let resolved = plan.resolve(&ctx.ekg);

        // Plummer-ish cloud in [-1,1]³.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = cfg.particles;
        let mut pos: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-0.8..0.8),
                    rng.gen_range(-0.8..0.8),
                    rng.gen_range(-0.8..0.8),
                ]
            })
            .collect();
        let mut vel = vec![[0.0f64; 3]; n];
        let mut acc = vec![[0.0f64; 3]; n];

        let _kernel_sum = pm_setup_nonperiodic_kernel(&ctx, &funcs, &resolved, cfg.pm_grid);

        let dt = 1e-4;
        for _step in 0..cfg.steps {
            find_next_sync_point_and_drift(&ctx, &funcs, &resolved, &mut pos, &vel, dt);
            domain_decomposition(&ctx, &funcs, &resolved, n, &comm);
            compute_accelerations(&ctx, &funcs, &resolved, &pos, &mut acc, 2.0, 0.6);
            advance_and_find_timesteps(&ctx, &funcs, &resolved, &mut pos, &mut vel, &acc, dt);
        }

        // Center-of-mass velocity (momentum conservation check).
        let mut v = [0.0f64; 3];
        for vi in &vel {
            for k in 0..3 {
                v[k] += vi[k];
            }
        }
        let check = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt() / n as f64;
        let final_profile = ctx.rt.snapshot(0).flat;
        let data = (comm.rank() == 0).then(|| ctx.finish());
        (data, check, final_profile)
    });
    assemble_output(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::discovered_site_names;
    use incprof_core::PhaseDetector;

    fn tiny_run() -> AppOutput {
        run(
            &Gadget2Config::tiny(),
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        )
    }

    #[test]
    fn momentum_is_approximately_conserved() {
        let out = tiny_run();
        // Tree-force approximation breaks exact symmetry; the residual
        // center-of-mass velocity must still be tiny.
        assert!(out.result_check < 1e-2, "COM velocity {}", out.result_check);
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny_run();
        let b = tiny_run();
        assert_eq!(a.result_check, b.result_check);
        assert_eq!(
            a.rank0.series.last().unwrap().flat,
            b.rank0.series.last().unwrap().flat
        );
    }

    #[test]
    fn tree_walk_dominates_timestep_loop() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let walk = out
            .rank0
            .table
            .id_of("force_treeevaluate_shortrange")
            .unwrap();
        let sync = out
            .rank0
            .table
            .id_of("find_next_sync_point_and_drift")
            .unwrap();
        assert!(last.flat.get(walk).self_time > 10 * last.flat.get(sync).self_time);
    }

    #[test]
    fn driver_calls_all_discovered_sites() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let accel = out.rank0.table.id_of("compute_accelerations").unwrap();
        let walk = out
            .rank0
            .table
            .id_of("force_treeevaluate_shortrange")
            .unwrap();
        let update = out
            .rank0
            .table
            .id_of("force_update_node_recursive")
            .unwrap();
        assert!(last.callgraph.get(accel, walk).count > 0);
        assert!(last.callgraph.get(accel, update).count > 0);
    }

    #[test]
    fn phase_analysis_recovers_paper_shape() {
        let out = run(
            &Gadget2Config {
                particles: 700,
                steps: 40,
                pm_grid: 24,
                ..Gadget2Config::tiny()
            },
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        );
        let analysis = PhaseDetector::new()
            .detect_series(&out.rank0.series)
            .unwrap();
        assert!((2..=5).contains(&analysis.k), "got k = {}", analysis.k);
        let names = discovered_site_names(&analysis, &out.rank0.table);
        assert!(names.contains("force_treeevaluate_shortrange"), "{names:?}");
        assert!(names.contains("pm_setup_nonperiodic_kernel"), "{names:?}");
        // None of the four fast manual functions should be discovered —
        // they are too quick for interval analysis (paper §VI-E).
        for fast in [
            "find_next_sync_point_and_drift",
            "domain_decomposition",
            "advance_and_find_timesteps",
        ] {
            assert!(
                !names.contains(fast),
                "fast function {fast} wrongly selected"
            );
        }
    }

    #[test]
    fn manual_heartbeats_overlap_every_step() {
        // The paper: "our manual heartbeat sites result in a plot where
        // all four lines essentially overlap each other".
        let plan = HeartbeatPlan::from_manual(&manual_sites());
        let cfg = Gadget2Config::tiny();
        let out = run(&cfg, RunMode::virtual_1s(), &plan);
        let names = &out.rank0.hb_names;
        let counts: Vec<u64> = (0..names.len() as u32)
            .map(|i| {
                out.rank0
                    .hb_records
                    .iter()
                    .map(|r| r.count(appekg::HeartbeatId(i)))
                    .sum()
            })
            .collect();
        // All four manual sites beat exactly once per timestep.
        for (name, &c) in names.iter().zip(&counts) {
            assert_eq!(c, cfg.steps as u64, "{name} beat {c} times");
        }
    }

    #[test]
    fn multirank_wall_run_works() {
        let out = run(
            &Gadget2Config {
                particles: 128,
                steps: 3,
                pm_grid: 8,
                procs: 4,
                ..Gadget2Config::tiny()
            },
            RunMode::Wall {
                interval_ns: 50_000_000,
                profile: true,
            },
            &HeartbeatPlan::none(),
        );
        assert!(out.result_check.is_finite());
    }
}
