//! Heartbeat instrumentation plans.
//!
//! The paper instruments each application twice: once with manually chosen
//! "best" sites, once with the sites discovered by phase analysis (§VI).
//! A [`HeartbeatPlan`] captures such a set of ⟨function, type⟩ sites; the
//! app harness resolves it against an [`appekg::AppEkg`] instance so the
//! app code can cheaply ask "does this function have a body/loop
//! heartbeat?" at its hook points.

use appekg::{AppEkg, HeartbeatGuard, HeartbeatId};
use incprof_core::report::ManualSite;
use incprof_core::types::InstrumentationType;
use incprof_core::PhaseAnalysis;
use incprof_profile::{FunctionId, FunctionTable};
use std::collections::{BTreeMap, BTreeSet};

/// A set of heartbeat instrumentation sites keyed by function name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeartbeatPlan {
    sites: BTreeMap<String, BTreeSet<InstrumentationType>>,
}

impl HeartbeatPlan {
    /// The empty plan: no heartbeats (profiling-only runs and baselines).
    pub fn none() -> HeartbeatPlan {
        Self::default()
    }

    /// Build a plan from explicit ⟨name, type⟩ pairs.
    pub fn from_sites<'a>(
        sites: impl IntoIterator<Item = (&'a str, InstrumentationType)>,
    ) -> HeartbeatPlan {
        let mut plan = HeartbeatPlan::default();
        for (name, t) in sites {
            plan.add(name, t);
        }
        plan
    }

    /// Build a plan from the paper's manual site lists.
    pub fn from_manual(sites: &[ManualSite]) -> HeartbeatPlan {
        let mut plan = HeartbeatPlan::default();
        for s in sites {
            plan.add(&s.function, s.inst_type);
        }
        plan
    }

    /// Build a plan from a phase analysis: every discovered site becomes a
    /// heartbeat (the paper's "instrumented the sites chosen by our phase
    /// discovery methodology").
    pub fn from_analysis(analysis: &PhaseAnalysis, table: &FunctionTable) -> HeartbeatPlan {
        let mut plan = HeartbeatPlan::default();
        for phase in &analysis.phases {
            for site in &phase.sites {
                plan.add(table.name(site.function), site.inst_type);
            }
        }
        plan
    }

    /// Add one site.
    pub fn add(&mut self, name: &str, t: InstrumentationType) {
        self.sites.entry(name.to_string()).or_default().insert(t);
    }

    /// Whether the plan has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of ⟨function, type⟩ sites.
    pub fn len(&self) -> usize {
        self.sites.values().map(BTreeSet::len).sum()
    }

    /// Whether `name` has a site of type `t`.
    pub fn contains(&self, name: &str, t: InstrumentationType) -> bool {
        self.sites.get(name).is_some_and(|s| s.contains(&t))
    }

    /// Iterate `(name, type)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, InstrumentationType)> {
        self.sites
            .iter()
            .flat_map(|(n, ts)| ts.iter().map(move |&t| (n.as_str(), t)))
    }

    /// Resolve against an AppEKG instance, registering one heartbeat per
    /// site. Heartbeat names are `"<function>"` for body sites and
    /// `"<function>[loop]"` for loop sites, so both variants of one
    /// function remain distinguishable in the output.
    pub fn resolve(&self, ekg: &AppEkg) -> ResolvedPlan {
        let mut body = BTreeMap::new();
        let mut loops = BTreeMap::new();
        for (name, t) in self.iter() {
            match t {
                InstrumentationType::Body => {
                    body.insert(name.to_string(), ekg.register_heartbeat(name));
                }
                InstrumentationType::Loop => {
                    loops.insert(
                        name.to_string(),
                        ekg.register_heartbeat(format!("{name}[loop]")),
                    );
                }
            }
        }
        ResolvedPlan { body, loops }
    }
}

/// A plan resolved to heartbeat ids (per-run, per-AppEKG).
#[derive(Debug, Clone, Default)]
pub struct ResolvedPlan {
    body: BTreeMap<String, HeartbeatId>,
    loops: BTreeMap<String, HeartbeatId>,
}

impl ResolvedPlan {
    /// Body-site heartbeat id for `name`, if planned.
    pub fn body(&self, name: &str) -> Option<HeartbeatId> {
        self.body.get(name).copied()
    }

    /// Loop-site heartbeat id for `name`, if planned.
    pub fn loop_site(&self, name: &str) -> Option<HeartbeatId> {
        self.loops.get(name).copied()
    }

    /// Begin a body heartbeat scope for `name` if planned (hook used at
    /// function entry; ends at scope exit).
    pub fn body_scope<'a>(&self, ekg: &'a AppEkg, name: &str) -> Option<HeartbeatGuard<'a>> {
        self.body(name).map(|hb| ekg.scope(hb))
    }

    /// Begin a loop-iteration heartbeat scope for `name` if planned (hook
    /// used inside the function's main loop).
    pub fn loop_scope<'a>(&self, ekg: &'a AppEkg, name: &str) -> Option<HeartbeatGuard<'a>> {
        self.loop_site(name).map(|hb| ekg.scope(hb))
    }
}

/// Helper for tests and tables: find the discovered site functions of an
/// analysis as a name set.
pub fn discovered_site_names(analysis: &PhaseAnalysis, table: &FunctionTable) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for p in &analysis.phases {
        for s in &p.sites {
            out.insert(table.name(s.function).to_string());
        }
    }
    out
}

/// Helper: the discovered ⟨function name, type⟩ pairs of an analysis.
pub fn discovered_sites(
    analysis: &PhaseAnalysis,
    table: &FunctionTable,
) -> BTreeSet<(String, InstrumentationType)> {
    let mut out = BTreeSet::new();
    for p in &analysis.phases {
        for s in &p.sites {
            out.insert((table.name(s.function).to_string(), s.inst_type));
        }
    }
    out
}

/// Suppress unused warnings for FunctionId re-export used by downstream
/// test helpers.
#[doc(hidden)]
pub fn _id(id: FunctionId) -> u32 {
    id.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_runtime::Clock;

    #[test]
    fn build_and_query_plan() {
        let plan = HeartbeatPlan::from_sites([
            ("run_bfs", InstrumentationType::Body),
            ("run_bfs", InstrumentationType::Loop),
            ("validate_bfs_result", InstrumentationType::Loop),
        ]);
        assert_eq!(plan.len(), 3);
        assert!(plan.contains("run_bfs", InstrumentationType::Body));
        assert!(plan.contains("run_bfs", InstrumentationType::Loop));
        assert!(!plan.contains("validate_bfs_result", InstrumentationType::Body));
        assert!(!plan.contains("missing", InstrumentationType::Body));
    }

    #[test]
    fn none_plan_is_empty() {
        assert!(HeartbeatPlan::none().is_empty());
        assert_eq!(HeartbeatPlan::none().len(), 0);
    }

    #[test]
    fn resolve_registers_distinct_ids() {
        let ekg = AppEkg::new(Clock::virtual_clock(), 1_000);
        let plan = HeartbeatPlan::from_sites([
            ("f", InstrumentationType::Body),
            ("f", InstrumentationType::Loop),
        ]);
        let resolved = plan.resolve(&ekg);
        let b = resolved.body("f").unwrap();
        let l = resolved.loop_site("f").unwrap();
        assert_ne!(b, l);
        assert_eq!(ekg.heartbeat_name(b), "f");
        assert_eq!(ekg.heartbeat_name(l), "f[loop]");
    }

    #[test]
    fn scopes_record_only_planned_sites() {
        let clock = Clock::virtual_clock();
        let ekg = AppEkg::new(clock.clone(), 1_000);
        let plan = HeartbeatPlan::from_sites([("a", InstrumentationType::Body)]);
        let resolved = plan.resolve(&ekg);
        {
            let _g = resolved.body_scope(&ekg, "a");
            let none = resolved.body_scope(&ekg, "b");
            assert!(none.is_none());
            clock.advance(5);
        }
        let recs = ekg.finish();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn from_manual_mirrors_site_list() {
        let manual = [
            ManualSite::new("cg_solve", InstrumentationType::Loop),
            ManualSite::new("init_matrix", InstrumentationType::Loop),
        ];
        let plan = HeartbeatPlan::from_manual(&manual);
        assert!(plan.contains("cg_solve", InstrumentationType::Loop));
        assert_eq!(plan.len(), 2);
    }
}
