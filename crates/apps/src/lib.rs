//! # hpc-apps
//!
//! The five evaluation applications of the IncProf paper (§VI), rebuilt as
//! mini Rust kernels with the same function inventory, call structure, and
//! time-varying phase behavior the paper describes:
//!
//! * [`graph500`] — Kronecker graph generation, level-synchronous BFS, and
//!   result validation (Graph500 `mpi_simple`, Table II / Fig. 2).
//! * [`minife`] — implicit finite-element mini-app: mesh/matrix structure
//!   generation, element assembly, Dirichlet conditions, CG solve
//!   (MiniFE, Table III / Fig. 3).
//! * [`miniamr`] — block-structured adaptive mesh refinement with stencil
//!   sweeps, checksums, refinement, and pack/unpack communication
//!   (MiniAMR, Table IV / Fig. 4).
//! * [`lammps`] — Lennard-Jones molecular dynamics: neighbor-list builds
//!   and force computation (LAMMPS lj/metal, Table V / Fig. 5).
//! * [`gadget2`] — N-body/SPH cosmology timestep loop: tree forces, PM
//!   grid setup, tree updates (Gadget2, Table VI / Fig. 6).
//!
//! Every app:
//!
//! * performs **real computation** (real BFS, real CG iterations, real
//!   stencils, real LJ forces, real tree walks) with a verifiable result;
//! * is **rank-symmetric** over [`mpi_sim`] (allreduces, halo exchanges),
//!   like the paper's 16-rank MPI runs;
//! * is instrumented for the `-pg`-equivalent profiler
//!   ([`incprof_runtime::ProfilerRuntime`]) and for AppEKG heartbeats via
//!   a configurable [`plan::HeartbeatPlan`] (none / the paper's manual
//!   sites / sites discovered by phase analysis);
//! * runs under a **virtual clock** with a calibrated per-operation cost
//!   model (deterministic experiments reproducing the paper's 1-second
//!   interval counts in milliseconds of real time) or under the **wall
//!   clock** (for the Table I overhead measurements).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several parallel arrays in one loop; the
// iterator rewrite clippy suggests hurts readability there.
#![allow(clippy::needless_range_loop)]

pub mod gadget2;
pub mod graph500;
pub mod harness;
pub mod lammps;
pub mod miniamr;
pub mod minife;
pub mod plan;
pub mod synth;

pub use harness::{AppOutput, RankContext, RankData, RunMode};
pub use plan::HeartbeatPlan;

/// The application names, as used in experiment harnesses and Table I.
pub const APP_NAMES: [&str; 5] = ["Graph500", "MiniFE", "MiniAMR", "LAMMPS", "Gadget2"];
