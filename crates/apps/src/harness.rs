//! The per-rank execution harness shared by all five applications.
//!
//! A [`RankContext`] bundles everything one MPI-rank-equivalent needs:
//! the profiling runtime (the `-pg` equivalent), the AppEKG instance, the
//! clock, and — in virtual mode — the IncProf collector, which the
//! context ticks automatically whenever [`RankContext::advance`] crosses
//! an interval boundary. That reproduces the paper's collection loop
//! (snapshot once per second, wherever the application happens to be in
//! its call stack) deterministically.
//!
//! The **cost model**: in virtual mode, kernels do their real computation
//! and then call `advance(ops * NS_PER_OP)` with per-app calibrated
//! constants, so a run spans the same number of 1-second intervals as the
//! paper's 5–10-minute runs while finishing in milliseconds. In wall mode
//! `advance` is a no-op and elapsed real time is what it is — that mode
//! exists for the Table I overhead measurements.

use appekg::{AppEkg, IntervalRecord};
use incprof_collect::{CollectorConfig, IncProfCollector, SampleSeries};
use incprof_profile::{FunctionId, FunctionTable};
use incprof_runtime::{Clock, ProfilerRuntime};
use std::sync::atomic::{AtomicU64, Ordering};

/// How an application run is clocked and collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Deterministic virtual time; the collector is ticked at every
    /// interval boundary crossed by [`RankContext::advance`]. Requires a
    /// single rank (`procs = 1`) for determinism.
    Virtual {
        /// Profile/heartbeat interval in virtual nanoseconds (paper: 1 s).
        interval_ns: u64,
    },
    /// Real time; a background collector thread samples every
    /// `interval_ns` when `profile` is true. Used for overhead runs.
    Wall {
        /// Collector and heartbeat interval in real nanoseconds.
        interval_ns: u64,
        /// Enable the profiler + collector (IncProf on/off).
        profile: bool,
    },
}

impl RunMode {
    /// The interval length for this mode.
    pub fn interval_ns(&self) -> u64 {
        match self {
            RunMode::Virtual { interval_ns } | RunMode::Wall { interval_ns, .. } => *interval_ns,
        }
    }

    /// Standard virtual mode with the paper's 1-second interval.
    pub fn virtual_1s() -> RunMode {
        RunMode::Virtual {
            interval_ns: 1_000_000_000,
        }
    }
}

/// Everything a rank needs while running, plus collection state.
pub struct RankContext {
    /// The `-pg`-equivalent profiling runtime.
    pub rt: ProfilerRuntime,
    /// The AppEKG heartbeat framework instance.
    pub ekg: AppEkg,
    /// The clock shared by `rt` and `ekg`.
    pub clock: Clock,
    collector: Option<IncProfCollector>,
    interval_ns: u64,
    virtual_mode: bool,
    next_boundary: AtomicU64,
    started: std::time::Instant,
}

impl RankContext {
    /// Create a context for `mode`. In wall mode with `profile = false`,
    /// the profiler runtime is disabled (its guards cost one atomic load)
    /// and no collector runs — the uninstrumented baseline.
    pub fn new(mode: RunMode) -> RankContext {
        match mode {
            RunMode::Virtual { interval_ns } => {
                let clock = Clock::virtual_clock();
                let rt = ProfilerRuntime::with_clock(clock.clone());
                let ekg = AppEkg::new(clock.clone(), interval_ns);
                let collector = IncProfCollector::manual(
                    rt.clone(),
                    CollectorConfig {
                        interval_ns,
                        encode_gmon: false,
                    },
                );
                RankContext {
                    rt,
                    ekg,
                    clock,
                    collector: Some(collector),
                    interval_ns,
                    virtual_mode: true,
                    next_boundary: AtomicU64::new(interval_ns),
                    started: std::time::Instant::now(),
                }
            }
            RunMode::Wall {
                interval_ns,
                profile,
            } => {
                let clock = Clock::wall();
                let rt = ProfilerRuntime::with_clock(clock.clone());
                rt.set_enabled(profile);
                let ekg = AppEkg::new(clock.clone(), interval_ns);
                let collector = profile.then(|| {
                    IncProfCollector::start_wall(
                        rt.clone(),
                        CollectorConfig {
                            interval_ns,
                            encode_gmon: false,
                        },
                    )
                });
                RankContext {
                    rt,
                    ekg,
                    clock,
                    collector,
                    interval_ns,
                    virtual_mode: false,
                    next_boundary: AtomicU64::new(interval_ns),
                    started: std::time::Instant::now(),
                }
            }
        }
    }

    /// Advance virtual time by `ns` (cost-model charge), ticking the
    /// collector at every interval boundary crossed. A charge that spans
    /// several boundaries is applied in steps — advance to the boundary,
    /// snapshot, continue — so each cumulative sample is taken *at* its
    /// boundary, exactly like the paper's once-per-second renames. No-op
    /// on the wall clock.
    pub fn advance(&self, ns: u64) {
        if !self.virtual_mode {
            return;
        }
        let mut remaining = ns;
        while remaining > 0 {
            let now = self.clock.now_ns();
            let boundary = self.next_boundary.load(Ordering::Acquire);
            let to_boundary = boundary.saturating_sub(now);
            if remaining < to_boundary {
                self.clock.advance(remaining);
                break;
            }
            self.clock.advance(to_boundary);
            remaining -= to_boundary;
            self.next_boundary
                .store(boundary + self.interval_ns, Ordering::Release);
            if let Some(c) = &self.collector {
                c.tick();
            }
        }
    }

    /// The interval length.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Whether this context runs on virtual time.
    pub fn is_virtual(&self) -> bool {
        self.virtual_mode
    }

    /// Finish the run: stop the collector (taking a final sample) and
    /// flush all heartbeat records.
    pub fn finish(self) -> RankData {
        let elapsed_wall_ns = self.started.elapsed().as_nanos() as u64;
        let table = self.rt.function_table();
        let series = match self.collector {
            Some(c) => c.stop(),
            None => SampleSeries::new(),
        };
        let hb_records = self.ekg.finish();
        let hb_names = self.ekg.heartbeat_names();
        RankData {
            series,
            table,
            hb_records,
            hb_names,
            elapsed_wall_ns,
            elapsed_virtual_ns: if self.virtual_mode {
                self.clock.now_ns()
            } else {
                0
            },
        }
    }
}

/// The collected artifacts of one rank's run.
#[derive(Debug, Clone)]
pub struct RankData {
    /// Cumulative profile samples (one per interval, plus the final one).
    pub series: SampleSeries,
    /// Function table of the rank's profiler runtime.
    pub table: FunctionTable,
    /// Heartbeat interval records.
    pub hb_records: Vec<IntervalRecord>,
    /// Heartbeat names, indexed by heartbeat id.
    pub hb_names: Vec<String>,
    /// Real elapsed time of the rank.
    pub elapsed_wall_ns: u64,
    /// Final virtual clock reading (0 in wall mode).
    pub elapsed_virtual_ns: u64,
}

impl RankData {
    /// Number of complete intervals the run spanned.
    pub fn n_intervals(&self) -> usize {
        self.series.len()
    }
}

/// Output of a full application run.
#[derive(Debug, Clone)]
pub struct AppOutput {
    /// Rank 0's collected data (the paper analyzes one representative
    /// rank of the symmetric job).
    pub rank0: RankData,
    /// Every rank's final cumulative flat profile, in rank order — the
    /// input to the paper's cross-rank "aggregate descriptive
    /// statistics" (see `incprof_collect::aggregate`).
    pub rank_profiles: Vec<incprof_profile::FlatProfile>,
    /// A scalar application result (checksum / energy / residual) for
    /// correctness assertions — phases must come from *real* computation.
    pub result_check: f64,
    /// Wall time of the slowest rank (job makespan).
    pub makespan_ns: u64,
}

/// Convenience: pre-registered function ids for an app's instrumented
/// functions. Apps build one of these at rank start so profiling guards
/// never do name lookups on the hot path.
#[derive(Debug, Clone)]
pub struct Funcs {
    ids: Vec<FunctionId>,
    names: Vec<&'static str>,
}

impl Funcs {
    /// Register `names` in order; ids are retrieved positionally via
    /// [`Funcs::id`].
    pub fn register(rt: &ProfilerRuntime, names: &[&'static str]) -> Funcs {
        Funcs {
            ids: names.iter().map(|n| rt.register_function(*n)).collect(),
            names: names.to_vec(),
        }
    }

    /// Id of the `idx`-th registered name.
    #[inline]
    pub fn id(&self, idx: usize) -> FunctionId {
        self.ids[idx]
    }

    /// Name of the `idx`-th registered function.
    pub fn name(&self, idx: usize) -> &'static str {
        self.names[idx]
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_context_ticks_collector_on_boundaries() {
        let ctx = RankContext::new(RunMode::Virtual { interval_ns: 1_000 });
        let f = ctx.rt.register_function("work");
        for _ in 0..5 {
            let _g = ctx.rt.enter(f);
            ctx.advance(1_000); // exactly one interval each
        }
        let data = ctx.finish();
        // 5 boundary ticks + 1 final stop sample.
        assert_eq!(data.n_intervals(), 6);
        let intervals = data.series.interval_profiles().unwrap();
        let id = data.table.id_of("work").unwrap();
        for p in intervals.iter().take(5) {
            assert_eq!(p.get(id).self_time, 1_000);
        }
    }

    #[test]
    fn large_advance_ticks_multiple_boundaries() {
        let ctx = RankContext::new(RunMode::Virtual { interval_ns: 1_000 });
        let f = ctx.rt.register_function("long");
        {
            let _g = ctx.rt.enter(f);
            ctx.advance(3_500); // crosses 3 boundaries at once
        }
        let data = ctx.finish();
        assert_eq!(data.n_intervals(), 4); // 3 ticks + final
        let intervals = data.series.interval_profiles().unwrap();
        let id = data.table.id_of("long").unwrap();
        // Long call spreads self time across intervals; call counted once
        // in its first interval.
        assert_eq!(intervals[0].get(id).calls, 1);
        assert_eq!(intervals[0].get(id).self_time, 1_000);
        assert_eq!(intervals[1].get(id).calls, 0);
        assert_eq!(intervals[1].get(id).self_time, 1_000);
    }

    #[test]
    fn wall_unprofiled_context_collects_nothing() {
        let ctx = RankContext::new(RunMode::Wall {
            interval_ns: 10_000_000,
            profile: false,
        });
        let f = ctx.rt.register_function("work");
        {
            let _g = ctx.rt.enter(f);
        }
        let data = ctx.finish();
        assert_eq!(data.n_intervals(), 0);
        assert!(!ctx_is_profiled(&data));
    }

    fn ctx_is_profiled(data: &RankData) -> bool {
        data.series.last().is_some_and(|s| !s.flat.is_empty())
    }

    #[test]
    fn wall_profiled_context_collects() {
        let ctx = RankContext::new(RunMode::Wall {
            interval_ns: 5_000_000,
            profile: true,
        });
        let f = ctx.rt.register_function("spin");
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(30);
        while std::time::Instant::now() < deadline {
            let _g = ctx.rt.enter(f);
            std::hint::black_box(1u64);
        }
        let data = ctx.finish();
        assert!(data.n_intervals() >= 1);
        assert!(data.elapsed_wall_ns > 0);
    }

    #[test]
    fn advance_is_noop_on_wall() {
        let ctx = RankContext::new(RunMode::Wall {
            interval_ns: 1_000_000,
            profile: false,
        });
        ctx.advance(10_000_000_000);
        assert!(!ctx.is_virtual());
        let data = ctx.finish();
        assert_eq!(data.elapsed_virtual_ns, 0);
    }

    #[test]
    fn funcs_registry_roundtrip() {
        let rt = ProfilerRuntime::with_clock(Clock::virtual_clock());
        let funcs = Funcs::register(&rt, &["alpha", "beta"]);
        assert_eq!(funcs.len(), 2);
        assert_eq!(rt.function_id("alpha"), Some(funcs.id(0)));
        assert_eq!(funcs.name(1), "beta");
    }

    #[test]
    fn heartbeats_flow_through_context() {
        let ctx = RankContext::new(RunMode::Virtual { interval_ns: 1_000 });
        let hb = ctx.ekg.register_heartbeat("beat");
        ctx.ekg.begin(hb);
        ctx.advance(100);
        ctx.ekg.end(hb);
        let data = ctx.finish();
        assert_eq!(data.hb_records.len(), 1);
        assert_eq!(data.hb_names, vec!["beat"]);
    }
}
