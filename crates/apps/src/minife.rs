//! Mini MiniFE (paper §VI-B, Table III, Fig. 3).
//!
//! An implicit finite-element mini-app in the shape of Mantevo MiniFE:
//! "the first \[kernel\] generates the matrix/vector mesh structures, the
//! second assembles the mesh into sparse matrices, the third performs
//! sparse matrix operations during a conjugate-gradient solver, and the
//! fourth performs various vector operations."
//!
//! Function inventory (matching the paper's discovered + manual sites):
//! `generate_matrix_structure`, `init_matrix`, `perform_element_loop`
//! (assembly driver), `sum_in_symm_elem_matrix` (per-element kernel,
//! called from the driver — the pair behind the paper's call-graph
//! observation), `impose_dirichlet`, `make_local_matrix`, `cg_solve`.
//!
//! The linear system is a real 7-point Laplacian on an `n × n × n` brick,
//! assembled element-by-element, and CG genuinely solves it; the returned
//! `result_check` is the final residual norm.

use crate::graph500::assemble_output;
use crate::harness::{AppOutput, Funcs, RankContext, RunMode};
use crate::plan::HeartbeatPlan;
use incprof_core::report::ManualSite;
use incprof_core::types::InstrumentationType;
use mpi_sim::{Comm, World};

/// Configuration for a MiniFE run.
#[derive(Debug, Clone)]
pub struct MiniFeConfig {
    /// Mesh points per side (the system has `n³` unknowns).
    pub n: usize,
    /// CG iterations to run (MiniFE uses a fixed iteration count).
    pub cg_iters: usize,
    /// MPI ranks (must be 1 in virtual mode).
    pub procs: usize,
}

impl Default for MiniFeConfig {
    fn default() -> Self {
        MiniFeConfig {
            n: 20,
            cg_iters: 200,
            procs: 1,
        }
    }
}

impl MiniFeConfig {
    /// Tiny configuration for fast tests.
    pub fn tiny() -> MiniFeConfig {
        MiniFeConfig {
            n: 8,
            cg_iters: 30,
            procs: 1,
        }
    }
}

const F_GEN: usize = 0;
const F_INIT: usize = 1;
const F_ELEM_LOOP: usize = 2;
const F_SUM: usize = 3;
const F_DIRICHLET: usize = 4;
const F_LOCAL: usize = 5;
const F_CG: usize = 6;

const FUNC_NAMES: [&str; 7] = [
    "generate_matrix_structure",
    "init_matrix",
    "perform_element_loop",
    "sum_in_symm_elem_matrix",
    "impose_dirichlet",
    "make_local_matrix",
    "cg_solve",
];

/// Virtual cost per row while generating structure (≈ 2 s at n = 20).
const NS_PER_GEN_ROW: u64 = 250_000;
/// Virtual cost per nonzero while initializing (≈ 15 s at n = 20).
const NS_PER_INIT_NNZ: u64 = 270_000;
/// Virtual cost per element in assembly (≈ 30 s at n = 20).
const NS_PER_ELEMENT: u64 = 4_400_000;
/// Virtual cost per boundary node in impose_dirichlet (≈ 7 s at n = 20).
const NS_PER_BOUNDARY_NODE: u64 = 3_200_000;
/// Virtual cost per row in make_local_matrix (≈ 1.5 s at n = 20).
const NS_PER_LOCAL_ROW: u64 = 190_000;
/// Virtual cost per CG iteration (≈ 95 s over 200 iterations at n = 20).
const NS_PER_CG_ITER: u64 = 475_000_000;

/// The paper's manual instrumentation sites for MiniFE (Table III).
pub fn manual_sites() -> Vec<ManualSite> {
    vec![
        ManualSite::new("cg_solve", InstrumentationType::Loop),
        ManualSite::new("perform_element_loop", InstrumentationType::Loop),
        ManualSite::new("init_matrix", InstrumentationType::Loop),
        ManualSite::new("impose_dirichlet", InstrumentationType::Loop),
        ManualSite::new("make_local_matrix", InstrumentationType::Loop),
    ]
}

/// CSR matrix over `n³` rows.
struct Sparse {
    n: usize,
    rowptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f64>,
}

impl Sparse {
    fn nrows(&self) -> usize {
        self.n * self.n * self.n
    }
    fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
        (z * n + y) * n + x
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        for r in 0..self.nrows() {
            let mut acc = 0.0;
            for k in self.rowptr[r] as usize..self.rowptr[r + 1] as usize {
                acc += self.val[k] * x[self.col[k] as usize];
            }
            y[r] = acc;
        }
    }
    /// Entry accumulate (assembly path).
    fn add_at(&mut self, r: usize, c: usize, v: f64) {
        for k in self.rowptr[r] as usize..self.rowptr[r + 1] as usize {
            if self.col[k] as usize == c {
                self.val[k] += v;
                return;
            }
        }
    }
}

/// Build the 7-point stencil *structure* (no values yet).
fn generate_matrix_structure(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    n: usize,
) -> Sparse {
    let _p = ctx.rt.enter(funcs.id(F_GEN));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_GEN]);
    let nrows = n * n * n;
    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut col = Vec::new();
    rowptr.push(0u32);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_GEN]);
                let mut push = |xx: isize, yy: isize, zz: isize| {
                    if xx >= 0
                        && yy >= 0
                        && zz >= 0
                        && (xx as usize) < n
                        && (yy as usize) < n
                        && (zz as usize) < n
                    {
                        col.push(Sparse::idx(n, xx as usize, yy as usize, zz as usize) as u32);
                    }
                };
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                push(xi, yi, zi);
                push(xi - 1, yi, zi);
                push(xi + 1, yi, zi);
                push(xi, yi - 1, zi);
                push(xi, yi + 1, zi);
                push(xi, yi, zi - 1);
                push(xi, yi, zi + 1);
                rowptr.push(col.len() as u32);
                ctx.advance(NS_PER_GEN_ROW);
            }
        }
    }
    let val = vec![0.0; col.len()];
    Sparse {
        n,
        rowptr,
        col,
        val,
    }
}

/// Zero-fill the matrix values (MiniFE's init kernel touches every nnz).
fn init_matrix(ctx: &RankContext, funcs: &Funcs, plan: &crate::plan::ResolvedPlan, m: &mut Sparse) {
    let _p = ctx.rt.enter(funcs.id(F_INIT));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_INIT]);
    let nnz = m.val.len();
    let chunk = 512;
    let mut k = 0;
    while k < nnz {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_INIT]);
        let end = (k + chunk).min(nnz);
        for v in &mut m.val[k..end] {
            *v = 0.0;
        }
        ctx.advance((end - k) as u64 * NS_PER_INIT_NNZ);
        k = end;
    }
}

/// Per-element stiffness contribution, summed symmetrically into the
/// global matrix (keeps it diagonally dominant, hence SPD, before the
/// Dirichlet correction).
fn sum_in_symm_elem_matrix(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    m: &mut Sparse,
    nodes: &[usize],
) {
    let _p = ctx.rt.enter(funcs.id(F_SUM));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_SUM]);
    for (a, &ra) in nodes.iter().enumerate() {
        m.add_at(ra, ra, 1.0);
        for &rb in nodes.iter().skip(a + 1) {
            m.add_at(ra, rb, -1.0 / 8.0);
            m.add_at(rb, ra, -1.0 / 8.0);
        }
    }
    ctx.advance(NS_PER_ELEMENT);
}

/// The assembly driver: iterate all elements, summing each element
/// matrix (the paper's call-graph pair with `sum_in_symm_elem_matrix`).
fn perform_element_loop(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    m: &mut Sparse,
) {
    let _p = ctx.rt.enter(funcs.id(F_ELEM_LOOP));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_ELEM_LOOP]);
    let n = m.n;
    for z in 0..n - 1 {
        for y in 0..n - 1 {
            for x in 0..n - 1 {
                let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_ELEM_LOOP]);
                // Axis-edge corners of the hex restricted to the 7-point
                // structure.
                let nodes = [
                    Sparse::idx(n, x, y, z),
                    Sparse::idx(n, x + 1, y, z),
                    Sparse::idx(n, x, y + 1, z),
                    Sparse::idx(n, x, y, z + 1),
                ];
                sum_in_symm_elem_matrix(ctx, funcs, plan, m, &nodes);
            }
        }
    }
}

/// Pin boundary nodes to identity rows (Dirichlet conditions).
fn impose_dirichlet(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    m: &mut Sparse,
    b: &mut [f64],
) {
    let _p = ctx.rt.enter(funcs.id(F_DIRICHLET));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_DIRICHLET]);
    let n = m.n;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                if x == 0 || y == 0 || z == 0 || x == n - 1 || y == n - 1 || z == n - 1 {
                    let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_DIRICHLET]);
                    let r = Sparse::idx(n, x, y, z);
                    for k in m.rowptr[r] as usize..m.rowptr[r + 1] as usize {
                        m.val[k] = if m.col[k] as usize == r { 1.0 } else { 0.0 };
                    }
                    b[r] = 0.0;
                    ctx.advance(NS_PER_BOUNDARY_NODE);
                }
            }
        }
    }
}

/// Build the "local" operator view (MiniFE's communication setup step);
/// returns the global count of off-rank columns.
fn make_local_matrix(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    m: &Sparse,
    comm: &Comm,
) -> u64 {
    let _p = ctx.rt.enter(funcs.id(F_LOCAL));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_LOCAL]);
    let mut external_cols = 0u64;
    let rows = m.nrows();
    let per_rank = rows / comm.size();
    let lo = comm.rank() * per_rank;
    let hi = if comm.rank() == comm.size() - 1 {
        rows
    } else {
        lo + per_rank
    };
    for r in lo..hi {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_LOCAL]);
        for k in m.rowptr[r] as usize..m.rowptr[r + 1] as usize {
            let c = m.col[k] as usize;
            if c < lo || c >= hi {
                external_cols += 1;
            }
        }
        if r % 8 == 0 {
            ctx.advance(8 * NS_PER_LOCAL_ROW);
        }
    }
    comm.allreduce_sum_u64(external_cols)
}

/// Conjugate-gradient solve; returns the final residual norm.
fn cg_solve(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    m: &Sparse,
    b: &[f64],
    iters: usize,
    comm: &Comm,
) -> f64 {
    let _p = ctx.rt.enter(funcs.id(F_CG));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_CG]);
    let nrows = m.nrows();
    let mut x = vec![0.0; nrows];
    let mut r: Vec<f64> = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; nrows];
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(u, v)| u * v).sum() };
    // Every rank holds the full small system; the allreduce mirrors
    // MiniFE's distributed dot products (values are identical per rank,
    // so divide the sum back out).
    let mut rsold = comm.allreduce_sum(dot(&r, &r)) / comm.size() as f64;
    for _ in 0..iters {
        // MiniFE runs a fixed iteration count; only a perfectly solved
        // system stops early (keeps heartbeat counts deterministic).
        if rsold == 0.0 {
            break;
        }
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_CG]);
        m.spmv(&p, &mut ap);
        let denom = comm.allreduce_sum(dot(&p, &ap)) / comm.size() as f64;
        let alpha = if denom.abs() > 0.0 {
            rsold / denom
        } else {
            0.0
        };
        for i in 0..nrows {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rsnew = comm.allreduce_sum(dot(&r, &r)) / comm.size() as f64;
        let beta = rsnew / rsold;
        for i in 0..nrows {
            p[i] = r[i] + beta * p[i];
        }
        rsold = rsnew;
        ctx.advance(NS_PER_CG_ITER);
    }
    rsold.sqrt()
}

/// Run MiniFE; `result_check` is the final CG residual norm.
pub fn run(cfg: &MiniFeConfig, mode: RunMode, plan: &HeartbeatPlan) -> AppOutput {
    if matches!(mode, RunMode::Virtual { .. }) {
        assert_eq!(
            cfg.procs, 1,
            "virtual mode requires a single rank for determinism"
        );
    }
    let results = World::run(cfg.procs, |comm| {
        let ctx = RankContext::new(mode);
        let funcs = Funcs::register(&ctx.rt, &FUNC_NAMES);
        let resolved = plan.resolve(&ctx.ekg);

        let mut m = generate_matrix_structure(&ctx, &funcs, &resolved, cfg.n);
        init_matrix(&ctx, &funcs, &resolved, &mut m);
        perform_element_loop(&ctx, &funcs, &resolved, &mut m);
        let mut b = vec![1.0; m.nrows()];
        impose_dirichlet(&ctx, &funcs, &resolved, &mut m, &mut b);
        let _externals = make_local_matrix(&ctx, &funcs, &resolved, &m, &comm);
        let residual = cg_solve(&ctx, &funcs, &resolved, &m, &b, cfg.cg_iters, &comm);

        let final_profile = ctx.rt.snapshot(0).flat;
        let data = (comm.rank() == 0).then(|| ctx.finish());
        (data, residual, final_profile)
    });
    assemble_output(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{discovered_site_names, discovered_sites};
    use incprof_core::PhaseDetector;

    fn tiny_run() -> AppOutput {
        run(
            &MiniFeConfig::tiny(),
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        )
    }

    #[test]
    fn cg_converges_on_tiny_mesh() {
        let out = run(
            &MiniFeConfig {
                n: 8,
                cg_iters: 300,
                procs: 1,
            },
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        );
        assert!(
            out.result_check < 1e-6,
            "residual {} too large",
            out.result_check
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny_run();
        let b = tiny_run();
        assert_eq!(a.rank0.series.len(), b.rank0.series.len());
        assert_eq!(
            a.rank0.series.last().unwrap().flat,
            b.rank0.series.last().unwrap().flat
        );
        assert_eq!(a.result_check, b.result_check);
    }

    #[test]
    fn profile_contains_all_kernels() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        for name in FUNC_NAMES {
            let id = out.rank0.table.id_of(name).unwrap();
            let s = last.flat.get(id);
            assert!(s.self_time > 0 || s.calls > 0, "{name} missing");
        }
    }

    #[test]
    fn cg_dominates_profile() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let cg = out.rank0.table.id_of("cg_solve").unwrap();
        let frac = last.flat.get(cg).self_time as f64 / last.flat.total_self_time() as f64;
        assert!(frac > 0.35, "cg fraction {frac}");
    }

    #[test]
    fn element_loop_delegates_to_sum_kernel() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let driver = out.rank0.table.id_of("perform_element_loop").unwrap();
        let kernel = out.rank0.table.id_of("sum_in_symm_elem_matrix").unwrap();
        let arcs = last.callgraph.get(driver, kernel);
        let n = MiniFeConfig::tiny().n as u64;
        assert_eq!(arcs.count, (n - 1).pow(3), "one kernel call per element");
        assert!(last.flat.get(driver).child_time > 0);
    }

    #[test]
    fn phase_analysis_recovers_paper_shape() {
        let out = run(
            &MiniFeConfig {
                n: 14,
                cg_iters: 60,
                procs: 1,
            },
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        );
        let analysis = PhaseDetector::new()
            .detect_series(&out.rank0.series)
            .unwrap();
        assert!((3..=6).contains(&analysis.k), "got k = {}", analysis.k);
        let names = discovered_site_names(&analysis, &out.rank0.table);
        assert!(names.contains("cg_solve"), "{names:?}");
        assert!(
            names.contains("sum_in_symm_elem_matrix") || names.contains("perform_element_loop"),
            "{names:?}"
        );
        assert!(
            names.contains("init_matrix") || names.contains("impose_dirichlet"),
            "{names:?}"
        );
        // cg_solve must be a loop site (paper Table III).
        let sites = discovered_sites(&analysis, &out.rank0.table);
        assert!(
            sites.contains(&("cg_solve".to_string(), InstrumentationType::Loop)),
            "{sites:?}"
        );
        // Dominant site by app% is cg_solve.
        let dominant = analysis
            .phases
            .iter()
            .flat_map(|p| &p.sites)
            .max_by(|a, b| a.app_pct.partial_cmp(&b.app_pct).unwrap())
            .unwrap();
        assert_eq!(out.rank0.table.name(dominant.function), "cg_solve");
    }

    #[test]
    fn manual_heartbeats_beat_once_per_cg_iteration() {
        let plan = HeartbeatPlan::from_manual(&manual_sites());
        let cfg = MiniFeConfig::tiny();
        let out = run(&cfg, RunMode::virtual_1s(), &plan);
        let idx = out
            .rank0
            .hb_names
            .iter()
            .position(|n| n == "cg_solve[loop]")
            .expect("cg loop heartbeat registered") as u32;
        let total: u64 = out
            .rank0
            .hb_records
            .iter()
            .map(|r| r.count(appekg::HeartbeatId(idx)))
            .sum();
        assert_eq!(total, cfg.cg_iters as u64);
    }

    #[test]
    fn multirank_wall_run_works() {
        let out = run(
            &MiniFeConfig {
                n: 6,
                cg_iters: 10,
                procs: 4,
            },
            RunMode::Wall {
                interval_ns: 50_000_000,
                profile: true,
            },
            &HeartbeatPlan::none(),
        );
        assert!(out.result_check.is_finite());
        assert!(out.rank0.series.last().is_some());
    }
}
