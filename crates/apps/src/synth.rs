//! Declarative synthetic workloads with planted phase ground truth.
//!
//! The paper evaluates phase detection qualitatively; to evaluate it
//! *quantitatively* we need runs whose true phase structure is known.
//! A [`PhaseScript`] declares phases — how many intervals each spans and
//! which functions are active with what time share and call rate — and
//! [`run_script`] executes it against the real profiling stack (virtual
//! clock, real collector), returning both the collected data and the
//! ground-truth interval assignment. The accuracy harness
//! (`incprof-bench --bin accuracy`) scores detected partitions against
//! the plant with the adjusted Rand index.

use crate::harness::{RankContext, RankData, RunMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One function's behavior within a phase.
#[derive(Debug, Clone)]
pub struct FunctionLoad {
    /// Function name (shared across phases by name).
    pub name: String,
    /// Fraction of each interval spent in this function.
    pub share: f64,
    /// Completed calls per interval. `0` marks the phase's long-lived
    /// driver: it is entered once at phase start (so later intervals see
    /// activity with zero calls — loop semantics). At most one such
    /// function per phase, and it must be listed first.
    pub calls_per_interval: u64,
}

impl FunctionLoad {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, share: f64, calls_per_interval: u64) -> FunctionLoad {
        FunctionLoad {
            name: name.into(),
            share,
            calls_per_interval,
        }
    }
}

/// One planted phase.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Intervals this phase spans.
    pub intervals: u64,
    /// Active functions. Shares are normalized per interval.
    pub functions: Vec<FunctionLoad>,
}

/// A whole planted run.
#[derive(Debug, Clone)]
pub struct PhaseScript {
    /// The phases, in execution order.
    pub phases: Vec<PhaseSpec>,
    /// Relative per-interval share jitter (0.0 = exact).
    pub jitter: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
}

impl PhaseScript {
    /// Total planted intervals.
    pub fn total_intervals(&self) -> u64 {
        self.phases.iter().map(|p| p.intervals).sum()
    }

    /// The ground-truth assignment: phase index per interval.
    pub fn truth(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.total_intervals() as usize);
        for (i, p) in self.phases.iter().enumerate() {
            out.extend(std::iter::repeat_n(i, p.intervals as usize));
        }
        out
    }

    /// Generate a random-but-well-formed script: `n_phases` phases of
    /// 5–20 intervals, each dominated by its own function with 0–2
    /// shared background functions.
    pub fn random(n_phases: usize, seed: u64) -> PhaseScript {
        let mut rng = StdRng::seed_from_u64(seed);
        let phases = (0..n_phases)
            .map(|p| {
                let mut functions = vec![FunctionLoad::new(
                    format!("phase_kernel_{p}"),
                    0.7 + rng.gen::<f64>() * 0.25,
                    if rng.gen_bool(0.5) {
                        0
                    } else {
                        rng.gen_range(1..50)
                    },
                )];
                for b in 0..rng.gen_range(0..3usize) {
                    functions.push(FunctionLoad::new(
                        format!("background_{b}"),
                        0.02 + rng.gen::<f64>() * 0.1,
                        rng.gen_range(1..200),
                    ));
                }
                PhaseSpec {
                    intervals: rng.gen_range(5..21),
                    functions,
                }
            })
            .collect();
        PhaseScript {
            phases,
            jitter: 0.03,
            seed: seed ^ 0xD1CE,
        }
    }
}

/// The executed script: collected rank data plus the planted truth.
#[derive(Debug, Clone)]
pub struct SynthRun {
    /// Profile series, function table, heartbeat records.
    pub data: RankData,
    /// Ground-truth phase per interval.
    pub truth: Vec<usize>,
}

/// Execute a script on the real profiling stack (virtual time).
///
/// # Panics
/// Panics if a phase has a zero-call function that is not listed first,
/// or more than one of them, or non-positive shares.
pub fn run_script(script: &PhaseScript, interval_ns: u64) -> SynthRun {
    let ctx = RankContext::new(RunMode::Virtual { interval_ns });
    let mut rng = StdRng::seed_from_u64(script.seed);

    for phase in &script.phases {
        for (i, f) in phase.functions.iter().enumerate() {
            assert!(f.share > 0.0, "share must be positive");
            if f.calls_per_interval == 0 {
                assert_eq!(i, 0, "the long-lived driver must be listed first");
            }
        }
        let driver = phase
            .functions
            .first()
            .filter(|f| f.calls_per_interval == 0)
            .map(|f| ctx.rt.register_function(f.name.clone()));
        // Enter the long-lived driver once for the whole phase.
        let driver_guard = driver.map(|id| ctx.rt.enter(id));

        for _ in 0..phase.intervals {
            // Jittered shares, normalized so every interval sums to 1.
            let shares: Vec<f64> = phase
                .functions
                .iter()
                .map(|f| {
                    let j = 1.0 + script.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                    f.share * j
                })
                .collect();
            let total: f64 = shares.iter().sum();
            let mut consumed = 0u64;
            for (f, share) in phase.functions.iter().zip(&shares) {
                let budget = (share / total * interval_ns as f64) as u64;
                if f.calls_per_interval == 0 {
                    // Driver self time: we are already inside its frame.
                    ctx.advance(budget);
                    consumed += budget;
                } else {
                    let id = ctx.rt.register_function(f.name.clone());
                    let per_call = budget.checked_div(f.calls_per_interval).unwrap_or(0).max(1);
                    for _ in 0..f.calls_per_interval {
                        let _g = ctx.rt.enter(id);
                        ctx.advance(per_call);
                    }
                    consumed += per_call * f.calls_per_interval;
                }
            }
            // Pad rounding residue so every interval lands exactly on
            // its boundary (charged to the driver frame if one is open,
            // otherwise to unprofiled "other" time, as in a real app).
            ctx.advance(interval_ns.saturating_sub(consumed));
        }
        drop(driver_guard);
    }

    SynthRun {
        data: ctx.finish(),
        truth: script.truth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_cluster::adjusted_rand_index;
    use incprof_core::PhaseDetector;

    fn three_phase_script() -> PhaseScript {
        PhaseScript {
            phases: vec![
                PhaseSpec {
                    intervals: 10,
                    functions: vec![FunctionLoad::new("init", 1.0, 20)],
                },
                PhaseSpec {
                    intervals: 15,
                    functions: vec![
                        FunctionLoad::new("solve", 0.9, 0),
                        FunctionLoad::new("comm", 0.1, 100),
                    ],
                },
                PhaseSpec {
                    intervals: 5,
                    functions: vec![FunctionLoad::new("output", 1.0, 3)],
                },
            ],
            jitter: 0.02,
            seed: 7,
        }
    }

    #[test]
    fn truth_matches_script_layout() {
        let s = three_phase_script();
        assert_eq!(s.total_intervals(), 30);
        let t = s.truth();
        assert_eq!(t.len(), 30);
        assert_eq!(t[0], 0);
        assert_eq!(t[10], 1);
        assert_eq!(t[29], 2);
    }

    #[test]
    fn detection_recovers_planted_truth() {
        let s = three_phase_script();
        let run = run_script(&s, 1_000_000_000);
        // One sample per interval plus the final stop sample.
        assert_eq!(run.data.series.len() as u64, s.total_intervals() + 1);
        let analysis = PhaseDetector::new()
            .detect_series(&run.data.series)
            .unwrap();
        // The final stop sample is an extra (usually empty) interval;
        // score only the planted prefix.
        let detected = &analysis.assignments[..run.truth.len()];
        let ari = adjusted_rand_index(detected, &run.truth);
        assert!(ari > 0.9, "ARI {ari}");
        assert_eq!(analysis.k, 3);
    }

    #[test]
    fn long_lived_driver_gets_loop_site() {
        use incprof_core::types::InstrumentationType;
        let s = three_phase_script();
        let run = run_script(&s, 1_000_000_000);
        let analysis = PhaseDetector::new()
            .detect_series(&run.data.series)
            .unwrap();
        let solve = run.data.table.id_of("solve").unwrap();
        let site = analysis
            .phases
            .iter()
            .flat_map(|p| &p.sites)
            .find(|st| st.function == solve)
            .expect("solve selected");
        assert_eq!(site.inst_type, InstrumentationType::Loop);
    }

    #[test]
    fn random_scripts_are_reproducible_and_valid() {
        let a = PhaseScript::random(4, 99);
        let b = PhaseScript::random(4, 99);
        assert_eq!(a.total_intervals(), b.total_intervals());
        assert_eq!(a.phases.len(), 4);
        let run_a = run_script(&a, 1_000_000_000);
        let run_b = run_script(&b, 1_000_000_000);
        assert_eq!(
            run_a.data.series.last().unwrap().flat,
            run_b.data.series.last().unwrap().flat
        );
    }

    #[test]
    #[should_panic(expected = "listed first")]
    fn misplaced_driver_panics() {
        let s = PhaseScript {
            phases: vec![PhaseSpec {
                intervals: 2,
                functions: vec![
                    FunctionLoad::new("a", 0.5, 1),
                    FunctionLoad::new("b", 0.5, 0),
                ],
            }],
            jitter: 0.0,
            seed: 0,
        };
        let _ = run_script(&s, 1_000_000_000);
    }
}
