//! Mini LAMMPS — Lennard-Jones molecular dynamics (paper §VI-D,
//! Table V, Fig. 5).
//!
//! "We chose the metal type atoms with the Lennard-Jones (LJ) force
//! model. After initialization and atom creation, the application has one
//! main core computation, that of using the LJ force computation
//! algorithm to simulate the interaction between atoms."
//!
//! Function inventory (the paper's discovered + manual sites):
//! `PairLJCut::compute` (the dominant force kernel, ~90% of the run
//! across two k-means phases), `NPairHalf::build` (periodic neighbor-list
//! rebuilds, the paper's phase 1/3 site), `Velocity::create`
//! (initialization). Integration is velocity-Verlet.
//!
//! The dynamics are real: atoms on a perturbed cubic lattice in a
//! periodic box, half neighbor lists from cell binning, shifted LJ
//! forces, and `result_check` is the magnitude of total momentum — which
//! Newton's third law keeps at (numerically) zero.

use crate::graph500::assemble_output;
use crate::harness::{AppOutput, Funcs, RankContext, RunMode};
use crate::plan::HeartbeatPlan;
use incprof_core::report::ManualSite;
use incprof_core::types::InstrumentationType;
use mpi_sim::{Comm, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a LAMMPS-LJ run.
#[derive(Debug, Clone)]
pub struct LammpsConfig {
    /// Atoms per side of the initial cubic lattice (`a³` atoms).
    pub atoms_per_side: usize,
    /// MD timesteps.
    pub steps: usize,
    /// Rebuild the neighbor list every this many steps.
    pub rebuild_every: usize,
    /// RNG seed for initial velocities.
    pub seed: u64,
    /// MPI ranks (must be 1 in virtual mode).
    pub procs: usize,
}

impl Default for LammpsConfig {
    fn default() -> Self {
        LammpsConfig {
            atoms_per_side: 12,
            steps: 150,
            rebuild_every: 8,
            seed: 42,
            procs: 1,
        }
    }
}

impl LammpsConfig {
    /// Tiny configuration for fast tests.
    pub fn tiny() -> LammpsConfig {
        LammpsConfig {
            atoms_per_side: 6,
            steps: 20,
            rebuild_every: 5,
            seed: 42,
            procs: 1,
        }
    }
}

const F_COMPUTE: usize = 0;
const F_BUILD: usize = 1;
const F_VELOCITY: usize = 2;

const FUNC_NAMES: [&str; 3] = ["PairLJCut::compute", "NPairHalf::build", "Velocity::create"];

/// Virtual cost per neighbor pair in the force kernel
/// (≈ 1.8 s/step at the default size).
const NS_PER_PAIR_FORCE: u64 = 44_000;
/// Virtual cost per neighbor pair constructed during a rebuild
/// (≈ 1.6 s/rebuild at the default size).
const NS_PER_PAIR_BUILD: u64 = 39_000;
/// Virtual cost per atom in Velocity::create (≈ 3 s at default size).
const NS_PER_ATOM_VELOCITY: u64 = 1_700_000;

/// LJ cutoff in lattice units.
const CUTOFF: f64 = 1.6;

/// The paper's manual instrumentation sites for LAMMPS (Table V).
pub fn manual_sites() -> Vec<ManualSite> {
    vec![
        ManualSite::new("PairLJCut::compute", InstrumentationType::Body),
        ManualSite::new("NPairHalf::build", InstrumentationType::Body),
    ]
}

struct Atoms {
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
    box_len: f64,
}

impl Atoms {
    fn n(&self) -> usize {
        self.pos.len()
    }
}

/// Minimum-image displacement under periodic boundaries.
fn min_image(mut d: f64, l: f64) -> f64 {
    if d > l / 2.0 {
        d -= l;
    } else if d < -l / 2.0 {
        d += l;
    }
    d
}

/// Initialize velocities (Maxwell-ish) and zero total momentum —
/// LAMMPS's `Velocity::create`.
fn velocity_create(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    atoms: &mut Atoms,
    seed: u64,
) {
    let _p = ctx.rt.enter(funcs.id(F_VELOCITY));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_VELOCITY]);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = atoms.n();
    let mut total = [0.0f64; 3];
    for v in &mut atoms.vel {
        let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_VELOCITY]);
        for (k, t) in total.iter_mut().enumerate() {
            v[k] = rng.gen_range(-0.5..0.5);
            *t += v[k];
        }
        ctx.advance(NS_PER_ATOM_VELOCITY);
    }
    // Zero the aggregate momentum, as LAMMPS does.
    for v in &mut atoms.vel {
        for k in 0..3 {
            v[k] -= total[k] / n as f64;
        }
    }
}

/// Build the half neighbor list via cell binning — `NPairHalf::build`.
fn npair_half_build(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    atoms: &Atoms,
) -> Vec<(u32, u32)> {
    let _p = ctx.rt.enter(funcs.id(F_BUILD));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_BUILD]);
    let l = atoms.box_len;
    let nbins = (l / CUTOFF).floor().max(1.0) as usize;
    let bin_of = |p: &[f64; 3]| -> usize {
        let f = |x: f64| {
            let mut b = (x / l * nbins as f64).floor() as isize;
            b = b.rem_euclid(nbins as isize);
            b as usize
        };
        (f(p[2]) * nbins + f(p[1])) * nbins + f(p[0])
    };
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nbins * nbins * nbins];
    for (i, p) in atoms.pos.iter().enumerate() {
        bins[bin_of(p)].push(i as u32);
    }
    let mut pairs = Vec::new();
    let skin = CUTOFF * 1.15; // neighbor skin so lists survive a few steps
    for bz in 0..nbins {
        for by in 0..nbins {
            for bx in 0..nbins {
                let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_BUILD]);
                let here = &bins[(bz * nbins + by) * nbins + bx];
                for dz in -1isize..=1 {
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            let nb = ((bz as isize + dz).rem_euclid(nbins as isize) as usize
                                * nbins
                                + (by as isize + dy).rem_euclid(nbins as isize) as usize)
                                * nbins
                                + (bx as isize + dx).rem_euclid(nbins as isize) as usize;
                            for &i in here {
                                for &j in &bins[nb] {
                                    if i < j {
                                        let (pi, pj) =
                                            (&atoms.pos[i as usize], &atoms.pos[j as usize]);
                                        let r2: f64 = (0..3)
                                            .map(|k| {
                                                let d = min_image(pi[k] - pj[k], l);
                                                d * d
                                            })
                                            .sum();
                                        if r2 < skin * skin {
                                            pairs.push((i, j));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    ctx.advance(pairs.len() as u64 * NS_PER_PAIR_BUILD);
    pairs
}

/// Shifted LJ force over the half neighbor list — `PairLJCut::compute`.
/// Returns the potential energy.
fn pair_lj_cut_compute(
    ctx: &RankContext,
    funcs: &Funcs,
    plan: &crate::plan::ResolvedPlan,
    atoms: &mut Atoms,
    pairs: &[(u32, u32)],
    comm: &Comm,
) -> f64 {
    let _p = ctx.rt.enter(funcs.id(F_COMPUTE));
    let _h = plan.body_scope(&ctx.ekg, FUNC_NAMES[F_COMPUTE]);
    for f in &mut atoms.force {
        *f = [0.0; 3];
    }
    let l = atoms.box_len;
    let mut pe = 0.0f64;
    let mut chunk = 0u64;
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        let mut d = [0.0f64; 3];
        let mut r2 = 0.0;
        for k in 0..3 {
            d[k] = min_image(atoms.pos[i][k] - atoms.pos[j][k], l);
            r2 += d[k] * d[k];
        }
        if r2 < CUTOFF * CUTOFF && r2 > 1e-12 {
            let inv2 = 1.0 / r2;
            let inv6 = inv2 * inv2 * inv2;
            let fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
            pe += 4.0 * inv6 * (inv6 - 1.0);
            for k in 0..3 {
                atoms.force[i][k] += fmag * d[k];
                atoms.force[j][k] -= fmag * d[k];
            }
        }
        chunk += 1;
        if chunk >= 2048 {
            let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_COMPUTE]);
            ctx.advance(chunk * NS_PER_PAIR_FORCE);
            chunk = 0;
        }
    }
    let _l = plan.loop_scope(&ctx.ekg, FUNC_NAMES[F_COMPUTE]);
    ctx.advance(chunk * NS_PER_PAIR_FORCE);
    comm.allreduce_sum(pe)
}

/// Run the MD simulation; `result_check` is |total momentum| (≈ 0).
pub fn run(cfg: &LammpsConfig, mode: RunMode, plan: &HeartbeatPlan) -> AppOutput {
    if matches!(mode, RunMode::Virtual { .. }) {
        assert_eq!(
            cfg.procs, 1,
            "virtual mode requires a single rank for determinism"
        );
    }
    let results = World::run(cfg.procs, |comm| {
        let ctx = RankContext::new(mode);
        let funcs = Funcs::register(&ctx.rt, &FUNC_NAMES);
        let resolved = plan.resolve(&ctx.ekg);

        // Atoms on a perturbed cubic lattice, spacing ~1.1 (near the LJ
        // minimum) so the dynamics are stable.
        let a = cfg.atoms_per_side;
        let spacing = 1.1;
        let box_len = a as f64 * spacing;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xfeed);
        let mut pos = Vec::with_capacity(a * a * a);
        for z in 0..a {
            for y in 0..a {
                for x in 0..a {
                    pos.push([
                        x as f64 * spacing + rng.gen_range(-0.02..0.02),
                        y as f64 * spacing + rng.gen_range(-0.02..0.02),
                        z as f64 * spacing + rng.gen_range(-0.02..0.02),
                    ]);
                }
            }
        }
        let n = pos.len();
        let mut atoms = Atoms {
            pos,
            vel: vec![[0.0; 3]; n],
            force: vec![[0.0; 3]; n],
            box_len,
        };

        velocity_create(&ctx, &funcs, &resolved, &mut atoms, cfg.seed);
        let mut pairs = npair_half_build(&ctx, &funcs, &resolved, &atoms);
        let mut _pe = pair_lj_cut_compute(&ctx, &funcs, &resolved, &mut atoms, &pairs, &comm);

        let dt = 0.002;
        for step in 1..=cfg.steps {
            // Velocity-Verlet: half kick, drift, rebuild if due, force,
            // half kick.
            for i in 0..n {
                for k in 0..3 {
                    atoms.vel[i][k] += 0.5 * dt * atoms.force[i][k];
                    atoms.pos[i][k] = (atoms.pos[i][k] + dt * atoms.vel[i][k]).rem_euclid(box_len);
                }
            }
            if step % cfg.rebuild_every == 0 {
                comm.barrier();
                pairs = npair_half_build(&ctx, &funcs, &resolved, &atoms);
            }
            _pe = pair_lj_cut_compute(&ctx, &funcs, &resolved, &mut atoms, &pairs, &comm);
            for i in 0..n {
                for k in 0..3 {
                    atoms.vel[i][k] += 0.5 * dt * atoms.force[i][k];
                }
            }
        }

        // Total momentum must be conserved at ~0.
        let mut mom = [0.0f64; 3];
        for v in &atoms.vel {
            for k in 0..3 {
                mom[k] += v[k];
            }
        }
        let mom_mag = (mom[0] * mom[0] + mom[1] * mom[1] + mom[2] * mom[2]).sqrt();
        let final_profile = ctx.rt.snapshot(0).flat;
        let data = (comm.rank() == 0).then(|| ctx.finish());
        (data, mom_mag, final_profile)
    });
    assemble_output(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{discovered_site_names, discovered_sites};
    use incprof_core::PhaseDetector;

    fn tiny_run() -> AppOutput {
        run(
            &LammpsConfig::tiny(),
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        )
    }

    #[test]
    fn momentum_is_conserved() {
        let out = tiny_run();
        assert!(
            out.result_check < 1e-9,
            "momentum drifted to {}",
            out.result_check
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny_run();
        let b = tiny_run();
        assert_eq!(a.result_check, b.result_check);
        assert_eq!(
            a.rank0.series.last().unwrap().flat,
            b.rank0.series.last().unwrap().flat
        );
    }

    #[test]
    fn force_kernel_dominates() {
        let out = tiny_run();
        let last = out.rank0.series.last().unwrap();
        let c = out.rank0.table.id_of("PairLJCut::compute").unwrap();
        let frac = last.flat.get(c).self_time as f64 / last.flat.total_self_time() as f64;
        assert!(frac > 0.6, "compute fraction {frac}");
    }

    #[test]
    fn rebuild_count_matches_schedule() {
        let out = tiny_run();
        let cfg = LammpsConfig::tiny();
        let last = out.rank0.series.last().unwrap();
        let b = out.rank0.table.id_of("NPairHalf::build").unwrap();
        let expected = 1 + cfg.steps as u64 / cfg.rebuild_every as u64;
        assert_eq!(last.flat.get(b).calls, expected);
    }

    #[test]
    fn phase_analysis_recovers_paper_shape() {
        let out = run(
            &LammpsConfig {
                atoms_per_side: 9,
                steps: 60,
                rebuild_every: 8,
                ..LammpsConfig::tiny()
            },
            RunMode::virtual_1s(),
            &HeartbeatPlan::none(),
        );
        let analysis = PhaseDetector::new()
            .detect_series(&out.rank0.series)
            .unwrap();
        assert!((2..=5).contains(&analysis.k), "got k = {}", analysis.k);
        let names = discovered_site_names(&analysis, &out.rank0.table);
        assert!(names.contains("PairLJCut::compute"), "{names:?}");
        let dominant = analysis
            .phases
            .iter()
            .flat_map(|p| &p.sites)
            .max_by(|a, b| a.app_pct.partial_cmp(&b.app_pct).unwrap())
            .unwrap();
        assert_eq!(
            out.rank0.table.name(dominant.function),
            "PairLJCut::compute"
        );
        // The force kernel runs longer than an interval between calls, so
        // it must be discovered as a loop site (paper Table V).
        let sites = discovered_sites(&analysis, &out.rank0.table);
        assert!(
            sites.contains(&("PairLJCut::compute".to_string(), InstrumentationType::Loop))
                || sites.contains(&("PairLJCut::compute".to_string(), InstrumentationType::Body)),
            "{sites:?}"
        );
    }

    #[test]
    fn manual_heartbeats_count_force_calls() {
        let plan = HeartbeatPlan::from_manual(&manual_sites());
        let cfg = LammpsConfig::tiny();
        let out = run(&cfg, RunMode::virtual_1s(), &plan);
        let idx = out
            .rank0
            .hb_names
            .iter()
            .position(|n| n == "PairLJCut::compute")
            .unwrap() as u32;
        let total: u64 = out
            .rank0
            .hb_records
            .iter()
            .map(|r| r.count(appekg::HeartbeatId(idx)))
            .sum();
        assert_eq!(total, cfg.steps as u64 + 1); // initial force + per step
    }

    #[test]
    fn multirank_wall_run_works() {
        let out = run(
            &LammpsConfig {
                atoms_per_side: 4,
                steps: 4,
                rebuild_every: 2,
                procs: 4,
                ..LammpsConfig::tiny()
            },
            RunMode::Wall {
                interval_ns: 50_000_000,
                profile: true,
            },
            &HeartbeatPlan::none(),
        );
        assert!(out.result_check.is_finite());
    }
}
