//! Leveled stderr logging gated by the `INCPROF_LOG` environment filter.
//!
//! Filter grammar (comma-separated, case-insensitive):
//!
//! ```text
//! INCPROF_LOG=warn                     global level
//! INCPROF_LOG=incprof_cluster=trace    per-target override (prefix match)
//! INCPROF_LOG=info,incprof_collect=debug
//! ```
//!
//! Targets are module paths (`module_path!()` at the call site); an
//! override applies to any target it prefixes, longest prefix wins. The
//! default level is `warn`. [`raise_level`] lets the CLI's `--verbose`
//! flag turn logging up without touching the environment (the
//! environment still wins where it asks for more).
//!
//! The disabled-path cost is one relaxed atomic load and a compare.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from quietest to noisiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions the run survives (missed ticks, clamps).
    Warn = 2,
    /// High-level progress (stage completions, chosen k).
    Info = 3,
    /// Detailed per-step diagnostics.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Parsed `INCPROF_LOG` filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Level applied when no override matches.
    pub default: Level,
    /// (target prefix, level) overrides.
    pub overrides: Vec<(String, Level)>,
}

impl Filter {
    /// Parse a filter string (see module docs). Unrecognized pieces are
    /// ignored rather than fatal — a typo in an env var must not kill a
    /// profiling run.
    pub fn parse(spec: &str) -> Filter {
        let mut default = DEFAULT_LEVEL;
        let mut overrides = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(l) = Level::parse(level) {
                        overrides.push((target.trim().to_string(), l));
                    }
                }
                None => {
                    if let Some(l) = Level::parse(part) {
                        default = l;
                    }
                }
            }
        }
        // Longest prefix first so the first match is the most specific.
        overrides.sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
        Filter { default, overrides }
    }

    /// The level in effect for `target`.
    pub fn level_for(&self, target: &str) -> Level {
        self.overrides
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map(|&(_, l)| l)
            .unwrap_or(self.default)
    }

    /// The noisiest level any target can reach (the fast-path gate).
    pub fn max_level(&self) -> Level {
        self.overrides
            .iter()
            .map(|&(_, l)| l)
            .max()
            .unwrap_or(Level::Off)
            .max(self.default)
    }
}

/// Default level when `INCPROF_LOG` is unset or empty.
const DEFAULT_LEVEL: Level = Level::Warn;

static FILTER: OnceLock<Filter> = OnceLock::new();
/// Fast gate: noisiest level that could possibly be enabled. Combines
/// the env filter's max with any [`raise_level`] calls.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX); // "unknown" until init
/// Floor installed by [`raise_level`] (e.g. the CLI's `--verbose`).
static RAISED: AtomicU8 = AtomicU8::new(0);

fn filter() -> &'static Filter {
    FILTER.get_or_init(|| {
        let f = match std::env::var("INCPROF_LOG") {
            Ok(spec) => Filter::parse(&spec),
            Err(_) => Filter {
                default: DEFAULT_LEVEL,
                overrides: Vec::new(),
            },
        };
        MAX_LEVEL.store(f.max_level() as u8, Ordering::Relaxed);
        f
    })
}

/// Raise the effective level to at least `level` for every target
/// (programmatic override; the env filter still wins where noisier).
pub fn raise_level(level: Level) {
    let f = filter(); // ensure MAX_LEVEL is initialized from the env
    RAISED.fetch_max(level as u8, Ordering::Relaxed);
    MAX_LEVEL.store((f.max_level() as u8).max(level as u8), Ordering::Relaxed);
}

/// Whether a record at `level` for `target` would be emitted.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max != u8::MAX && level as u8 > max {
        return false; // common case: one load, no filter walk
    }
    let f = filter();
    let floor = RAISED.load(Ordering::Relaxed);
    level as u8 <= (f.level_for(target) as u8).max(floor)
}

/// Emit one record to stderr (use the level macros instead).
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(level, target) {
        return;
    }
    eprintln!("[{:5} {target}] {args}", level.label());
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Trace, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_level() {
        let f = Filter::parse("debug");
        assert_eq!(f.default, Level::Debug);
        assert!(f.overrides.is_empty());
        assert_eq!(f.level_for("anything"), Level::Debug);
    }

    #[test]
    fn parse_overrides_longest_prefix_wins() {
        let f = Filter::parse("info,incprof=debug,incprof_cluster=trace");
        assert_eq!(f.level_for("incprof_cluster::kmeans"), Level::Trace);
        assert_eq!(f.level_for("incprof_collect::series"), Level::Debug);
        assert_eq!(f.level_for("other"), Level::Info);
        assert_eq!(f.max_level(), Level::Trace);
    }

    #[test]
    fn parse_ignores_garbage() {
        let f = Filter::parse("bogus,incprof=notalevel,,warn");
        assert_eq!(f.default, Level::Warn);
        assert!(f.overrides.is_empty());
    }

    #[test]
    fn off_silences_everything() {
        let f = Filter::parse("off");
        assert_eq!(f.max_level(), Level::Off);
        assert_eq!(f.level_for("x"), Level::Off);
    }
}
