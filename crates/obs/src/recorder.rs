//! The flight recorder: a fixed-capacity lock-free ring of recent
//! operational events.
//!
//! Long-running daemons fail in ways a process-exit report cannot
//! explain: by the time the report is written, the interesting events
//! (the decode error, the Busy burst, the session fault) are minutes
//! in the past. The recorder keeps the last `capacity` events in a
//! ring of atomic slots so the daemon can replay its recent history on
//! demand — into the admin `RecorderDump` reply, into the log on an
//! error reply, and into the final run report on SIGINT — without ever
//! blocking the hot path on a lock.
//!
//! Concurrency: each slot is a tiny seqlock. A writer claims a ticket
//! from the head counter, stamps the slot odd (in progress), writes
//! the fields, then stamps it with the ticket's final even value;
//! writers lapping onto the same slot are serialized in ticket order
//! by a CAS on the stamp, so field stores of different tickets never
//! interleave. Readers validate the stamp before and after copying
//! the fields and simply skip slots caught mid-write or already
//! overwritten — a snapshot is best-effort recent history, never a
//! blocking view. All accesses use `SeqCst`: events are rare (errors,
//! faults, drain steps), so simplicity beats saving a fence.

use crate::span::TimeSource;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. The two `u64` payload fields of an [`EventRecord`]
/// are interpreted per kind (see each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A frame failed to decode (`a` = error code, `b` = 0).
    DecodeError,
    /// A Busy reply was sent (`a` = session id, 0 at the accept loop).
    BusyReply,
    /// A session faulted (`a` = session id, `b` = error code).
    SessionFault,
    /// The analysis cache discarded memoized work (`a` = intervals
    /// discarded).
    CacheInvalidation,
    /// A session queue drain step (`a` = session id, `b` = snapshots
    /// drained).
    DrainStep,
    /// A typed error reply was sent (`a` = session id, `b` = error
    /// code).
    ErrorReply,
    /// The daemon entered drain-and-exit (`a` = sessions drained).
    Shutdown,
}

impl EventKind {
    fn to_u64(self) -> u64 {
        match self {
            EventKind::DecodeError => 1,
            EventKind::BusyReply => 2,
            EventKind::SessionFault => 3,
            EventKind::CacheInvalidation => 4,
            EventKind::DrainStep => 5,
            EventKind::ErrorReply => 6,
            EventKind::Shutdown => 7,
        }
    }

    fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::DecodeError,
            2 => EventKind::BusyReply,
            3 => EventKind::SessionFault,
            4 => EventKind::CacheInvalidation,
            5 => EventKind::DrainStep,
            6 => EventKind::ErrorReply,
            7 => EventKind::Shutdown,
            _ => return None,
        })
    }
}

/// One event read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotone event number (total order across the process).
    pub seq: u64,
    /// Reading of the recorder's time source when recorded.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First context word (per-kind meaning, see [`EventKind`]).
    pub a: u64,
    /// Second context word (per-kind meaning, see [`EventKind`]).
    pub b: u64,
}

/// One ring slot: a stamp word plus the event fields it guards.
#[derive(Debug)]
struct Slot {
    /// 0 = never written; `2*ticket + 1` = write in progress;
    /// `2*(ticket + 1)` = ticket's event is complete.
    stamp: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity lock-free ring of recent [`EventRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    time: TimeSource,
    slots: Vec<Slot>,
    /// Next ticket; total events ever recorded.
    head: AtomicU64,
}

impl FlightRecorder {
    /// Default ring capacity.
    pub const DEFAULT_CAP: usize = 1024;

    /// Recorder over `time` with the default capacity.
    pub fn new(time: TimeSource) -> FlightRecorder {
        FlightRecorder::with_capacity(time, Self::DEFAULT_CAP)
    }

    /// Recorder with an explicit capacity (rounded up to a power of
    /// two, minimum 2, so the ring index is a mask).
    pub fn with_capacity(time: TimeSource, cap: usize) -> FlightRecorder {
        let cap = cap.max(2).next_power_of_two();
        FlightRecorder {
            time,
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Record one event, overwriting the oldest when the ring is full.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let t_ns = self.time.now_ns();
        let ticket = self.head.fetch_add(1, Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        // Writers that lap each other onto the same slot must not
        // interleave their field stores (a reader could then validate
        // a torn slot), so claim the slot in ticket order: wait for
        // the previous lap's final stamp before going in-progress.
        let prev = if ticket >= cap {
            (ticket - cap + 1) * 2
        } else {
            0
        };
        while slot
            .stamp
            .compare_exchange(prev, ticket * 2 + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            std::hint::spin_loop();
        }
        slot.t_ns.store(t_ns, Ordering::SeqCst);
        slot.kind.store(kind.to_u64(), Ordering::SeqCst);
        slot.a.store(a, Ordering::SeqCst);
        slot.b.store(b, Ordering::SeqCst);
        slot.stamp.store((ticket + 1) * 2, Ordering::SeqCst);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Reset the ring to empty. Only safe at quiescent points (no
    /// concurrent [`FlightRecorder::record`] calls): a writer racing a
    /// clear could spin forever on a stale stamp. Benches use this to
    /// keep their run reports focused on gauges rather than replayed
    /// history; the serving hot path never calls it.
    pub fn clear(&self) {
        self.head.store(0, Ordering::SeqCst);
        for slot in &self.slots {
            slot.stamp.store(0, Ordering::SeqCst);
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Best-effort copy of the retained events, oldest first. Slots
    /// caught mid-write or lapped by a concurrent writer are skipped.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        let head = self.head.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
            let want = (ticket + 1) * 2;
            if slot.stamp.load(Ordering::SeqCst) != want {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::SeqCst);
            let kind = slot.kind.load(Ordering::SeqCst);
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            if slot.stamp.load(Ordering::SeqCst) != want {
                continue;
            }
            if let Some(kind) = EventKind::from_u64(kind) {
                out.push(EventRecord {
                    seq: ticket,
                    t_ns,
                    kind,
                    a,
                    b,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::VirtualClock;

    fn virt_recorder(cap: usize) -> (FlightRecorder, VirtualClock) {
        let clock = VirtualClock::new();
        (
            FlightRecorder::with_capacity(TimeSource::Virtual(clock.clone()), cap),
            clock,
        )
    }

    #[test]
    fn records_in_order_with_timestamps() {
        let (rec, clock) = virt_recorder(8);
        rec.record(EventKind::DecodeError, 3, 0);
        clock.advance(100);
        rec.record(EventKind::BusyReply, 7, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::DecodeError);
        assert_eq!(events[0].a, 3);
        assert_eq!(events[0].t_ns, 0);
        assert_eq!(events[1].kind, EventKind::BusyReply);
        assert_eq!(events[1].t_ns, 100);
        assert_eq!(events[1].seq, 1);
        assert_eq!(rec.total(), 2);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let (rec, _clock) = virt_recorder(4);
        for i in 0..10 {
            rec.record(EventKind::DrainStep, i, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "only the newest `capacity` events survive"
        );
        assert_eq!(rec.total(), 10);
    }

    #[test]
    fn clear_empties_the_ring_and_accepts_new_events() {
        let (rec, _clock) = virt_recorder(4);
        for i in 0..6 {
            rec.record(EventKind::DrainStep, i, 0);
        }
        rec.clear();
        assert_eq!(rec.total(), 0);
        assert!(rec.snapshot().is_empty());
        rec.record(EventKind::Shutdown, 2, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Shutdown);
        assert_eq!(events[0].seq, 0);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (rec, _clock) = virt_recorder(5);
        assert_eq!(rec.capacity(), 8);
        let (tiny, _clock) = virt_recorder(0);
        assert_eq!(tiny.capacity(), 2);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_snapshot() {
        use std::sync::Arc;
        let rec = Arc::new(FlightRecorder::with_capacity(
            TimeSource::Virtual(VirtualClock::new()),
            64,
        ));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        // Encode writer and index so a torn read would
                        // produce an (a, b) pair that disagrees.
                        rec.record(EventKind::DrainStep, w * 10_000 + i, w * 10_000 + i);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for e in rec.snapshot() {
                assert_eq!(e.a, e.b, "validated slots are never torn");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(rec.total(), 4000);
        assert_eq!(rec.snapshot().len(), 64);
    }

    #[test]
    fn event_record_round_trips_through_json() {
        let e = EventRecord {
            seq: 5,
            t_ns: 123,
            kind: EventKind::SessionFault,
            a: 1,
            b: 7,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: EventRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
