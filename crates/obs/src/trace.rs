//! Wire-propagated trace context: follow one request across process
//! boundaries as a single span tree.
//!
//! A client opens a traced root span ([`SpanStore::enter_traced`]) and
//! stamps the resulting [`TraceContext`] onto the outgoing frame. The
//! server side re-enters the trace with the received context; every
//! span opened on the same thread underneath inherits the trace and
//! links to its enclosing span by **wire id**, so the whole path —
//! client → accept loop → session queue → worker → detector — can be
//! reassembled per trace id with [`trace_tree`].
//!
//! Trace ids come from [`TraceIdGen`], a SplitMix64 stream over an
//! explicit seed: deterministic under a fixed seed (the workspace seed
//! discipline), unique within a run, never 0 (0 means "untraced" on
//! the wire). Wire span ids are process-local counters; the tree
//! builder therefore only links a child to a parent that exists in the
//! same record set and treats everything else as a local root.

use crate::span::{SpanRecord, SpanStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The trace identity one frame carries on the wire: which trace the
/// request belongs to and which span (on the sender) is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id (never 0 for a live trace).
    pub trace_id: u64,
    /// Wire id of the sender-side parent span (0 = trace root).
    pub parent_span: u32,
}

impl TraceContext {
    /// Context for a new trace rooted at the sender span `parent_span`.
    pub fn new(trace_id: u64, parent_span: u32) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span,
        }
    }
}

/// Deterministic trace-id generator: a SplitMix64 stream over a seed.
///
/// Two generators built from the same seed yield the same id sequence,
/// which keeps traced replays reproducible; ids are never 0.
#[derive(Debug)]
pub struct TraceIdGen {
    state: AtomicU64,
}

impl TraceIdGen {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen {
            state: AtomicU64::new(seed),
        }
    }

    /// Next trace id (SplitMix64; skips 0).
    pub fn next_id(&self) -> u64 {
        loop {
            let x = self
                .state
                .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
            let id = splitmix64(x.wrapping_add(0x9e37_79b9_7f4a_7c15));
            if id != 0 {
                return id;
            }
        }
    }
}

/// SplitMix64 finalizer (the workspace's standard seeding mix).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One span in a reassembled trace tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceNode {
    /// Dotted stage name.
    pub name: String,
    /// This span's wire id.
    pub wire_span: u32,
    /// Wire id of the parent (possibly in another process; 0 = root).
    pub wire_parent: u32,
    /// Start reading of the owning store's time source.
    pub start_ns: u64,
    /// Duration (0 while still open).
    pub dur_ns: u64,
    /// Child spans in start order.
    pub children: Vec<TraceNode>,
}

/// A whole trace as returned by the admin `TraceGet` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTree {
    /// The trace id queried.
    pub trace_id: u64,
    /// Number of spans found for the trace.
    pub spans: u64,
    /// Local roots (spans whose wire parent is 0 or unknown here).
    pub roots: Vec<TraceNode>,
}

/// Reassemble the spans of `trace_id` out of `records` into a tree.
///
/// Records whose `wire_parent` does not resolve to another record of
/// the same trace (it is 0, or it lives in another process) become
/// roots. Records arrive in start order, so children follow parents.
pub fn trace_tree(trace_id: u64, records: &[SpanRecord]) -> TraceTree {
    let in_trace: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| trace_id != 0 && r.trace_id == trace_id)
        .collect();
    let by_wire: HashMap<u32, usize> = in_trace
        .iter()
        .enumerate()
        .map(|(i, r)| (r.wire_span, i))
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); in_trace.len()];
    let mut roots = Vec::new();
    for (i, rec) in in_trace.iter().enumerate() {
        match by_wire.get(&rec.wire_parent) {
            Some(&p) if p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }
    fn assemble(i: usize, recs: &[&SpanRecord], children: &[Vec<usize>]) -> TraceNode {
        TraceNode {
            name: recs[i].name.clone().into_owned(),
            wire_span: recs[i].wire_span,
            wire_parent: recs[i].wire_parent,
            start_ns: recs[i].start_ns,
            dur_ns: recs[i].dur_ns,
            children: children[i]
                .iter()
                .map(|&c| assemble(c, recs, children))
                .collect(),
        }
    }
    TraceTree {
        trace_id,
        spans: in_trace.len() as u64,
        roots: roots
            .into_iter()
            .map(|r| assemble(r, &in_trace, &children))
            .collect(),
    }
}

/// Convenience: the trace tree of `trace_id` from a span store.
pub fn store_trace_tree(store: &SpanStore, trace_id: u64) -> TraceTree {
    trace_tree(trace_id, &store.trace_records(trace_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanStore, TimeSource, VirtualClock};

    #[test]
    fn gen_is_deterministic_and_nonzero() {
        let a = TraceIdGen::new(0x1AC0_FFEE);
        let b = TraceIdGen::new(0x1AC0_FFEE);
        let ids: Vec<u64> = (0..64).map(|_| a.next_id()).collect();
        let ids2: Vec<u64> = (0..64).map(|_| b.next_id()).collect();
        assert_eq!(ids, ids2, "same seed, same stream");
        assert!(ids.iter().all(|&i| i != 0));
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "no repeats in a short stream");
        let c = TraceIdGen::new(7);
        assert_ne!(c.next_id(), ids[0], "different seed, different stream");
    }

    #[test]
    fn tree_links_by_wire_and_roots_unresolved_parents() {
        let clock = VirtualClock::new();
        let store = SpanStore::new(TimeSource::Virtual(clock.clone()));
        let tid = 0xFEED;
        {
            // Parent 99 lives "in another process".
            let _root = store.enter_traced("server.root", tid, 99);
            clock.advance(10);
            {
                let _child = store.enter("server.child");
                clock.advance(5);
            }
        }
        // A second, unrelated trace must not leak in.
        {
            let _other = store.enter_traced("other.root", 0xBEEF, 0);
        }
        let tree = store_trace_tree(&store, tid);
        assert_eq!(tree.trace_id, tid);
        assert_eq!(tree.spans, 2);
        assert_eq!(tree.roots.len(), 1, "unresolved parent 99 makes one root");
        assert_eq!(tree.roots[0].name, "server.root");
        assert_eq!(tree.roots[0].wire_parent, 99);
        assert_eq!(tree.roots[0].children.len(), 1);
        assert_eq!(tree.roots[0].children[0].name, "server.child");
        assert_eq!(tree.roots[0].children[0].dur_ns, 5);
    }

    #[test]
    fn tree_round_trips_through_json() {
        let store = SpanStore::new(TimeSource::Virtual(VirtualClock::new()));
        {
            let _g = store.enter_traced("a.b.c", 3, 0);
        }
        let tree = store_trace_tree(&store, 3);
        let json = serde_json::to_string(&tree).unwrap();
        let back: TraceTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }
}
