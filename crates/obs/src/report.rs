//! The serializable run report: one document capturing everything the
//! observability layer saw — counters, gauges, histograms, and the span
//! tree — for `incprof --metrics <path>` and the bench harness.

use crate::metrics::HistogramSnapshot;
use crate::recorder::EventRecord;
use crate::span::SpanRecord;
use crate::Obs;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Report format version (bump on breaking shape changes).
/// Version 2 added the flight-recorder `events` fields.
pub const REPORT_VERSION: u32 = 2;

/// One span in the reconstructed stage tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Dotted stage name.
    pub name: String,
    /// Start reading of the span store's time source.
    pub start_ns: u64,
    /// Wall (or virtual) duration.
    pub dur_ns: u64,
    /// Child spans in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Sum of the direct children's durations.
    pub fn children_dur_ns(&self) -> u64 {
        self.children.iter().map(|c| c.dur_ns).sum()
    }

    /// Depth-first search for the first node named `name` (self
    /// included).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// A full observability snapshot of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Format version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Root spans with their subtrees, in start order.
    pub spans: Vec<SpanNode>,
    /// Spans lost to the store's capacity bound.
    pub spans_dropped: u64,
    /// Flight-recorder tail: the most recent operational events.
    pub events: Vec<EventRecord>,
    /// Events ever recorded (including ones the ring overwrote).
    pub events_total: u64,
}

impl RunReport {
    /// Snapshot everything `obs` has recorded.
    pub fn capture(obs: &Obs) -> RunReport {
        RunReport {
            version: REPORT_VERSION,
            counters: obs.metrics().counter_values(),
            gauges: obs.metrics().gauge_values(),
            histograms: obs.metrics().histogram_snapshots(),
            spans: build_tree(&obs.spans().records()),
            spans_dropped: obs.spans().dropped(),
            events: obs.recorder().snapshot(),
            events_total: obs.recorder().total(),
        }
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        // lint: allow(P01, RunReport is a closed tree of strings and integers; serialization is infallible)
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<RunReport, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// One JSON object per line: every counter, gauge, and histogram as
    /// its own record, spans flattened depth-first with their depth —
    /// the grep-friendly alternative to [`RunReport::to_json`].
    pub fn to_jsonl(&self) -> String {
        fn quote(s: &str) -> String {
            // Names are dotted identifiers in practice, but escape anyway.
            let mut q = String::with_capacity(s.len() + 2);
            q.push('"');
            for c in s.chars() {
                match c {
                    '"' => q.push_str("\\\""),
                    '\\' => q.push_str("\\\\"),
                    '\n' => q.push_str("\\n"),
                    '\t' => q.push_str("\\t"),
                    '\r' => q.push_str("\\r"),
                    c if (c as u32) < 0x20 => q.push_str(&format!("\\u{:04x}", c as u32)),
                    c => q.push(c),
                }
            }
            q.push('"');
            q
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{value}}}\n",
                quote(name)
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{value}}}\n",
                quote(name)
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}\n",
                quote(name),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
        }
        fn walk(nodes: &[SpanNode], depth: u64, out: &mut String, quote: &dyn Fn(&str) -> String) {
            for n in nodes {
                out.push_str(&format!(
                    "{{\"kind\":\"span\",\"name\":{},\"depth\":{depth},\"start_ns\":{},\"dur_ns\":{}}}\n",
                    quote(&n.name),
                    n.start_ns,
                    n.dur_ns
                ));
                walk(&n.children, depth + 1, out, quote);
            }
        }
        walk(&self.spans, 0, &mut out, &quote);
        for e in &self.events {
            out.push_str(&format!(
                "{{\"kind\":\"event\",\"event\":{},\"seq\":{},\"t_ns\":{},\"a\":{},\"b\":{}}}\n",
                quote(&format!("{:?}", e.kind)),
                e.seq,
                e.t_ns,
                e.a,
                e.b
            ));
        }
        out
    }

    /// Write the JSON document to `path` (`.jsonl` extension selects the
    /// line-oriented format).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = if path.extension().is_some_and(|e| e == "jsonl") {
            self.to_jsonl()
        } else {
            self.to_json()
        };
        std::fs::write(path, text)
    }

    /// Depth-first search across all root spans.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }
}

/// Reconstruct the span forest from flat records (records arrive in
/// enter order; children therefore follow their parents).
fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    // Span ids are allocated densely but the store can drop records
    // (capacity, concurrent clear), so ids are mapped to positions
    // rather than used as indices; a child whose parent record is gone
    // is promoted to a root instead of being lost.
    let pos: std::collections::HashMap<usize, usize> =
        records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    let mut roots = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match rec.parent.and_then(|p| pos.get(&p)) {
            Some(&p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    fn assemble(idx: usize, records: &[SpanRecord], children: &[Vec<usize>]) -> SpanNode {
        SpanNode {
            name: records[idx].name.clone().into_owned(),
            start_ns: records[idx].start_ns,
            dur_ns: records[idx].dur_ns,
            children: children[idx]
                .iter()
                .map(|&c| assemble(c, records, children))
                .collect(),
        }
    }
    roots
        .into_iter()
        .map(|r| assemble(r, records, &children))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanStore, TimeSource, VirtualClock};

    fn virtual_obs() -> (Obs, VirtualClock) {
        let clock = VirtualClock::new();
        let obs = Obs::with_spans(SpanStore::new(TimeSource::Virtual(clock.clone())));
        (obs, clock)
    }

    #[test]
    fn capture_builds_span_tree() {
        let (obs, clock) = virtual_obs();
        obs.metrics().counter("a.b.events").add(3);
        {
            let _outer = obs.span("outer");
            clock.advance(10);
            {
                let _inner = obs.span("inner");
                clock.advance(5);
            }
        }
        let report = RunReport::capture(&obs);
        assert_eq!(report.counters["a.b.events"], 3);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].children[0].name, "inner");
        assert_eq!(report.spans[0].dur_ns, 15);
        assert_eq!(report.spans[0].children_dur_ns(), 5);
        assert_eq!(report.find_span("inner").unwrap().dur_ns, 5);
    }

    #[test]
    fn capture_includes_flight_recorder_events() {
        let (obs, clock) = virtual_obs();
        obs.recorder().record(crate::EventKind::BusyReply, 4, 0);
        clock.advance(9);
        obs.recorder().record(crate::EventKind::DrainStep, 4, 2);
        let report = RunReport::capture(&obs);
        assert_eq!(report.version, REPORT_VERSION);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events_total, 2);
        assert_eq!(report.events[1].kind, crate::EventKind::DrainStep);
        assert_eq!(report.events[1].t_ns, 9);
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"event\""));
        assert!(jsonl.contains("\"event\":\"DrainStep\""));
    }

    #[test]
    fn jsonl_has_one_record_per_line() {
        let (obs, clock) = virtual_obs();
        obs.metrics().counter("c").inc();
        obs.metrics().gauge("g").set(2);
        obs.metrics().histogram("h").record(7);
        {
            let _s = obs.span("root");
            clock.advance(1);
        }
        let jsonl = RunReport::capture(&obs).to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[3].contains("\"kind\":\"span\""));
    }
}
