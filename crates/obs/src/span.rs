//! RAII spans: nested wall- (or virtual-) clock timings of pipeline
//! stages.
//!
//! A [`SpanGuard`] records its duration into the owning [`SpanStore`]
//! when dropped. Nesting is tracked per thread: a span entered while
//! another span from the same store is open on the same thread becomes
//! its child, which is how the run report reconstructs the stage tree.
//!
//! The store is bounded ([`SpanStore::DEFAULT_CAP`]); once full, new
//! spans are counted in `dropped` instead of being recorded, so a
//! runaway loop cannot exhaust memory.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable virtual time source for deterministic span tests: an
/// atomic nanosecond counter advanced explicitly.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// New clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Current reading.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// Where span timestamps come from.
#[derive(Debug, Clone)]
pub enum TimeSource {
    /// Real time since the source was created.
    Wall(Instant),
    /// An explicitly advanced [`VirtualClock`].
    Virtual(VirtualClock),
}

impl TimeSource {
    /// A wall source anchored now.
    pub fn wall() -> TimeSource {
        TimeSource::Wall(Instant::now())
    }

    /// Current reading in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self {
            TimeSource::Wall(base) => base.elapsed().as_nanos() as u64,
            TimeSource::Virtual(c) => c.now_ns(),
        }
    }
}

/// One completed (or still-open) span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Index of this span in the store (stable identifier).
    pub id: usize,
    /// Enclosing span on the entering thread, if any.
    pub parent: Option<usize>,
    /// Dotted stage name, e.g. `core.pipeline.cluster`. Borrowed for
    /// the usual `names::` constants so the hot path never allocates.
    pub name: Cow<'static, str>,
    /// Start reading of the store's time source.
    pub start_ns: u64,
    /// Duration; 0 until the guard drops.
    pub dur_ns: u64,
    /// Whether the guard has dropped.
    pub closed: bool,
    /// Trace this span belongs to (0 = untraced).
    pub trace_id: u64,
    /// Wire span id of this span within its trace (0 = untraced).
    pub wire_span: u32,
    /// Wire span id of the parent span, which may live in another
    /// process (0 = trace root on this side).
    pub wire_parent: u32,
}

/// Globally unique store ids keying the thread-local nesting stacks.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

/// One entry of a thread's open-span stack: the record index plus the
/// trace identity child spans inherit.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    idx: usize,
    trace_id: u64,
    wire_span: u32,
}

/// One thread's private segment of a store's records. Writers only
/// ever lock their own shard, so under concurrent load the span hot
/// path never contends with other threads — the shard mutex exists for
/// the readers ([`SpanStore::records`], [`SpanStore::clear`]), which
/// are rare and walk the shard registry.
#[derive(Debug, Default)]
struct Shard {
    records: Mutex<Vec<SpanRecord>>,
}

/// This thread's view of one store: its open-span nesting stack and
/// its private record shard.
#[derive(Debug)]
struct ThreadSlot {
    stack: Vec<OpenSpan>,
    shard: Arc<Shard>,
}

thread_local! {
    /// Per-thread store slots, keyed by store id. A linear scan over a
    /// tiny Vec: a thread touches one store (the global one) in
    /// practice, and this sits on the span hot path where a HashMap
    /// lookup is measurable.
    static OPEN_SPANS: RefCell<Vec<(u64, ThreadSlot)>> = const { RefCell::new(Vec::new()) };
}

/// This thread's slot for the store, created (and its shard registered
/// with the store) on first use. Callers hold the `RefCell` borrow.
fn slot_for<'a>(
    open: &'a mut Vec<(u64, ThreadSlot)>,
    store: &SpanStoreInner,
) -> &'a mut ThreadSlot {
    match open.iter().position(|(id, _)| *id == store.id) {
        Some(i) => &mut open[i].1,
        None => {
            let shard = Arc::new(Shard::default());
            store.shards.lock().push(Arc::clone(&shard));
            open.push((
                store.id,
                ThreadSlot {
                    stack: Vec::new(),
                    shard,
                },
            ));
            let last = open.len() - 1;
            &mut open[last].1
        }
    }
}

#[derive(Debug)]
struct SpanStoreInner {
    id: u64,
    time: TimeSource,
    /// Every thread's shard, in registration order. Records of dead
    /// threads stay readable through this registry until a clear()
    /// prunes their shards.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Records allocated across all shards; doubles as the next span
    /// id, so ids are dense and in enter order.
    count: AtomicUsize,
    /// Bumped by [`SpanStore::clear`]; guards from an older epoch skip
    /// their exit write instead of touching a recycled index.
    epoch: AtomicU64,
    dropped: AtomicU64,
    /// Wire span ids handed to traced spans; ids are process-local and
    /// never 0 (0 means "untraced" / "no parent" on the wire).
    next_wire: AtomicU32,
    cap: usize,
}

/// Bounded collector of [`SpanRecord`]s. Cheap to clone; clones share
/// state.
#[derive(Debug, Clone)]
pub struct SpanStore {
    inner: Arc<SpanStoreInner>,
}

impl SpanStore {
    /// Default record capacity.
    pub const DEFAULT_CAP: usize = 65_536;

    /// New store over the given time source.
    pub fn new(time: TimeSource) -> SpanStore {
        Self::with_capacity(time, Self::DEFAULT_CAP)
    }

    /// New store with an explicit record capacity.
    pub fn with_capacity(time: TimeSource, cap: usize) -> SpanStore {
        SpanStore {
            inner: Arc::new(SpanStoreInner {
                id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
                time,
                shards: Mutex::new(Vec::new()),
                count: AtomicUsize::new(0),
                epoch: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                next_wire: AtomicU32::new(1),
                cap,
            }),
        }
    }

    /// Open a span; it closes (records its duration) when the returned
    /// guard drops. If the enclosing span on this thread belongs to a
    /// trace, the new span inherits that trace and links to it as its
    /// wire parent.
    pub fn enter(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        self.enter_inner(name.into(), None)
    }

    /// Open a span as the local root of trace `trace_id`, linked under
    /// the (possibly remote) wire span `wire_parent` (0 = the trace
    /// starts here). Spans entered on the same thread while this guard
    /// is open become its trace children automatically.
    pub fn enter_traced(
        &self,
        name: impl Into<Cow<'static, str>>,
        trace_id: u64,
        wire_parent: u32,
    ) -> SpanGuard {
        self.enter_inner(name.into(), Some((trace_id, wire_parent)))
    }

    fn enter_inner(&self, name: Cow<'static, str>, traced: Option<(u64, u32)>) -> SpanGuard {
        let start_ns = self.inner.time.now_ns();
        // This is the span hot path: one TLS borrow covers all the
        // per-thread work, and the only lock taken is this thread's
        // own shard — never contended by other writers.
        OPEN_SPANS.with(|open| {
            let mut open = open.borrow_mut();
            let slot = slot_for(&mut open, &self.inner);
            let top = slot.stack.last().copied();
            let parent = top.map(|o| o.idx);
            let inherited = top.filter(|o| o.trace_id != 0);
            // Explicit trace context wins; otherwise inherit the
            // enclosing traced span (if any). Wire ids are only minted
            // for traced spans, so untraced workloads stay id-free.
            let (trace_id, wire_span, wire_parent) = match (traced, inherited) {
                (Some((tid, wparent)), _) => (
                    tid,
                    self.inner.next_wire.fetch_add(1, Ordering::Relaxed),
                    wparent,
                ),
                (None, Some(top)) => (
                    top.trace_id,
                    self.inner.next_wire.fetch_add(1, Ordering::Relaxed),
                    top.wire_span,
                ),
                (None, None) => (0, 0, 0),
            };
            let id = self.inner.count.fetch_add(1, Ordering::Relaxed);
            if id >= self.inner.cap {
                self.inner.count.fetch_sub(1, Ordering::Relaxed);
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                return SpanGuard {
                    store: self.clone(),
                    shard: None,
                    local: 0,
                    id: None,
                    epoch: 0,
                    wire_span: 0,
                };
            }
            let rec = SpanRecord {
                id,
                parent,
                name,
                start_ns,
                dur_ns: 0,
                closed: false,
                trace_id,
                wire_span,
                wire_parent,
            };
            let (local, epoch) = {
                let mut records = slot.shard.records.lock();
                let epoch = self.inner.epoch.load(Ordering::Relaxed);
                records.push(rec);
                (records.len() - 1, epoch)
            };
            slot.stack.push(OpenSpan {
                idx: id,
                trace_id,
                wire_span,
            });
            SpanGuard {
                store: self.clone(),
                shard: Some(Arc::clone(&slot.shard)),
                local,
                id: Some(id),
                epoch,
                wire_span,
            }
        })
    }

    fn exit(&self, shard: &Shard, local: usize, id: usize, epoch: u64) {
        let end_ns = self.inner.time.now_ns();
        OPEN_SPANS.with(|open| {
            let mut open = open.borrow_mut();
            if let Some((_, slot)) = open.iter_mut().find(|(sid, _)| *sid == self.inner.id) {
                if let Some(pos) = slot.stack.iter().rposition(|s| s.idx == id) {
                    slot.stack.truncate(pos);
                }
            }
        });
        let mut records = shard.records.lock();
        // A clear() between enter and exit threw the record away; the
        // epoch (and, belt-and-braces, the id at our slot) tells us
        // there is nothing left to close.
        if epoch != self.inner.epoch.load(Ordering::Relaxed) {
            return;
        }
        if let Some(rec) = records.get_mut(local) {
            if rec.id == id {
                rec.dur_ns = end_ns.saturating_sub(rec.start_ns);
                rec.closed = true;
            }
        }
    }

    /// Discard every recorded span and reopen the store's capacity.
    ///
    /// Guards still open across the clear close without recording (their
    /// epoch no longer matches), and shards of threads that have exited
    /// are pruned. Spans *entered* concurrently with the clear may be
    /// kept or discarded — this is meant for quiescent points:
    /// measurement windows in benches, or a long-lived daemon
    /// reclaiming the bounded store.
    pub fn clear(&self) {
        let mut shards = self.inner.shards.lock();
        self.inner.epoch.fetch_add(1, Ordering::Relaxed);
        for shard in shards.iter() {
            shard.records.lock().clear();
        }
        self.inner.count.store(0, Ordering::Relaxed);
        // A shard referenced only by this registry belongs to a dead
        // thread (live owners hold it in TLS, open guards hold it too).
        shards.retain(|s| Arc::strong_count(s) > 1);
    }

    /// Copy of all records, in enter order (open spans have
    /// `dur_ns == 0`).
    pub fn records(&self) -> Vec<SpanRecord> {
        let shards = self.inner.shards.lock();
        let mut out = Vec::new();
        for shard in shards.iter() {
            out.extend(shard.records.lock().iter().cloned());
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// All records belonging to trace `trace_id`, in enter order.
    pub fn trace_records(&self, trace_id: u64) -> Vec<SpanRecord> {
        let shards = self.inner.shards.lock();
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in shards.iter() {
            out.extend(
                shard
                    .records
                    .lock()
                    .iter()
                    .filter(|r| trace_id != 0 && r.trace_id == trace_id)
                    .cloned(),
            );
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Spans rejected because the store was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The store's time source.
    pub fn time(&self) -> &TimeSource {
        &self.inner.time
    }
}

/// RAII handle for an open span; records the duration on drop.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    store: SpanStore,
    /// The shard holding this span's record; `None` when the store was
    /// full (nothing to record).
    shard: Option<Arc<Shard>>,
    /// Index of the record within its shard.
    local: usize,
    /// Store-wide span id; `None` when the store was full.
    id: Option<usize>,
    /// Store epoch at enter; a mismatch at exit means the store was
    /// cleared underneath this guard.
    epoch: u64,
    wire_span: u32,
}

impl SpanGuard {
    /// This span's wire id within its trace (0 when untraced or when
    /// the store was full).
    pub fn wire_span(&self) -> u32 {
        self.wire_span
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(id), Some(shard)) = (self.id, self.shard.take()) {
            self.store.exit(&shard, self.local, id, self.epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virt() -> (SpanStore, VirtualClock) {
        let clock = VirtualClock::new();
        (SpanStore::new(TimeSource::Virtual(clock.clone())), clock)
    }

    #[test]
    fn span_records_duration() {
        let (store, clock) = virt();
        {
            let _g = store.enter("stage");
            clock.advance(250);
        }
        let recs = store.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].dur_ns, 250);
        assert!(recs[0].closed);
        assert_eq!(recs[0].parent, None);
    }

    #[test]
    fn clear_discards_records_and_disarms_open_guards() {
        let (store, clock) = virt();
        {
            let _done = store.enter("done");
            clock.advance(5);
        }
        let survivor = store.enter("open.across.clear");
        store.clear();
        assert!(store.records().is_empty());

        // A span entered after the clear owns index 0 of the new epoch;
        // the stale guard closing afterwards must not touch it.
        {
            let _fresh = store.enter("fresh");
            clock.advance(7);
        }
        drop(survivor);
        let recs = store.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "fresh");
        assert_eq!(recs[0].dur_ns, 7);
        assert!(recs[0].closed);
    }

    #[test]
    fn nesting_sets_parents() {
        let (store, clock) = virt();
        {
            let _outer = store.enter("outer");
            clock.advance(10);
            {
                let _inner = store.enter("inner");
                clock.advance(5);
            }
            clock.advance(1);
        }
        let recs = store.records();
        assert_eq!(recs[1].parent, Some(0));
        assert_eq!(recs[0].dur_ns, 16);
        assert_eq!(recs[1].dur_ns, 5);
        // Sibling after the nest attaches to the root again.
        let _g = store.enter("second");
        assert_eq!(store.records()[2].parent, None);
    }

    #[test]
    fn capacity_drops_instead_of_growing() {
        let (store, _clock) = virt();
        let small = SpanStore::with_capacity(store.time().clone(), 2);
        let _a = small.enter("a");
        let _b = small.enter("b");
        let _c = small.enter("c");
        assert_eq!(small.records().len(), 2);
        assert_eq!(small.dropped(), 1);
    }

    #[test]
    fn stores_do_not_share_nesting() {
        let (s1, _c1) = virt();
        let (s2, _c2) = virt();
        let _g1 = s1.enter("a");
        let _g2 = s2.enter("b");
        assert_eq!(s2.records()[0].parent, None, "nesting is per store");
    }

    #[test]
    fn traced_spans_link_by_wire_ids() {
        let (store, clock) = virt();
        let root_wire;
        {
            let root = store.enter_traced("root", 0xABCD, 7);
            root_wire = root.wire_span();
            assert_ne!(root_wire, 0);
            clock.advance(1);
            {
                // Plain enter() inherits the enclosing trace.
                let child = store.enter("child");
                assert_ne!(child.wire_span(), 0);
                assert_ne!(child.wire_span(), root_wire);
            }
        }
        let recs = store.trace_records(0xABCD);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].wire_parent, 7, "root keeps the remote parent id");
        assert_eq!(recs[1].wire_parent, root_wire);
        assert_eq!(recs[1].trace_id, 0xABCD);
    }

    #[test]
    fn untraced_spans_stay_out_of_traces() {
        let (store, _clock) = virt();
        {
            let g = store.enter("plain");
            assert_eq!(g.wire_span(), 0);
        }
        assert_eq!(store.records()[0].trace_id, 0);
        assert!(
            store.trace_records(0).is_empty(),
            "trace id 0 never matches"
        );
        assert!(store.trace_records(42).is_empty());
    }
}
