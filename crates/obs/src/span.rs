//! RAII spans: nested wall- (or virtual-) clock timings of pipeline
//! stages.
//!
//! A [`SpanGuard`] records its duration into the owning [`SpanStore`]
//! when dropped. Nesting is tracked per thread: a span entered while
//! another span from the same store is open on the same thread becomes
//! its child, which is how the run report reconstructs the stage tree.
//!
//! The store is bounded ([`SpanStore::DEFAULT_CAP`]); once full, new
//! spans are counted in `dropped` instead of being recorded, so a
//! runaway loop cannot exhaust memory.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable virtual time source for deterministic span tests: an
/// atomic nanosecond counter advanced explicitly.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// New clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Current reading.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// Where span timestamps come from.
#[derive(Debug, Clone)]
pub enum TimeSource {
    /// Real time since the source was created.
    Wall(Instant),
    /// An explicitly advanced [`VirtualClock`].
    Virtual(VirtualClock),
}

impl TimeSource {
    /// A wall source anchored now.
    pub fn wall() -> TimeSource {
        TimeSource::Wall(Instant::now())
    }

    /// Current reading in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self {
            TimeSource::Wall(base) => base.elapsed().as_nanos() as u64,
            TimeSource::Virtual(c) => c.now_ns(),
        }
    }
}

/// One completed (or still-open) span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Index of this span in the store (stable identifier).
    pub id: usize,
    /// Enclosing span on the entering thread, if any.
    pub parent: Option<usize>,
    /// Dotted stage name, e.g. `core.pipeline.cluster`.
    pub name: String,
    /// Start reading of the store's time source.
    pub start_ns: u64,
    /// Duration; 0 until the guard drops.
    pub dur_ns: u64,
    /// Whether the guard has dropped.
    pub closed: bool,
}

/// Globally unique store ids keying the thread-local nesting stacks.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread open-span stack per store (store id → span id stack).
    static OPEN_SPANS: RefCell<HashMap<u64, Vec<usize>>> = RefCell::new(HashMap::new());
}

#[derive(Debug)]
struct SpanStoreInner {
    id: u64,
    time: TimeSource,
    records: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    cap: usize,
}

/// Bounded collector of [`SpanRecord`]s. Cheap to clone; clones share
/// state.
#[derive(Debug, Clone)]
pub struct SpanStore {
    inner: Arc<SpanStoreInner>,
}

impl SpanStore {
    /// Default record capacity.
    pub const DEFAULT_CAP: usize = 65_536;

    /// New store over the given time source.
    pub fn new(time: TimeSource) -> SpanStore {
        Self::with_capacity(time, Self::DEFAULT_CAP)
    }

    /// New store with an explicit record capacity.
    pub fn with_capacity(time: TimeSource, cap: usize) -> SpanStore {
        SpanStore {
            inner: Arc::new(SpanStoreInner {
                id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
                time,
                records: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                cap,
            }),
        }
    }

    /// Open a span; it closes (records its duration) when the returned
    /// guard drops.
    pub fn enter(&self, name: impl Into<String>) -> SpanGuard {
        let start_ns = self.inner.time.now_ns();
        let mut records = self.inner.records.lock();
        if records.len() >= self.inner.cap {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return SpanGuard {
                store: self.clone(),
                id: None,
            };
        }
        let id = records.len();
        let parent = OPEN_SPANS.with(|open| {
            let mut open = open.borrow_mut();
            let stack = open.entry(self.inner.id).or_default();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        records.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            start_ns,
            dur_ns: 0,
            closed: false,
        });
        SpanGuard {
            store: self.clone(),
            id: Some(id),
        }
    }

    fn exit(&self, id: usize) {
        let end_ns = self.inner.time.now_ns();
        OPEN_SPANS.with(|open| {
            let mut open = open.borrow_mut();
            if let Some(stack) = open.get_mut(&self.inner.id) {
                if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                    stack.truncate(pos);
                }
            }
        });
        let mut records = self.inner.records.lock();
        let rec = &mut records[id];
        rec.dur_ns = end_ns.saturating_sub(rec.start_ns);
        rec.closed = true;
    }

    /// Copy of all records (open spans have `dur_ns == 0`).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.records.lock().clone()
    }

    /// Spans rejected because the store was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The store's time source.
    pub fn time(&self) -> &TimeSource {
        &self.inner.time
    }
}

/// RAII handle for an open span; records the duration on drop.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    store: SpanStore,
    /// `None` when the store was full (nothing to record).
    id: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.store.exit(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virt() -> (SpanStore, VirtualClock) {
        let clock = VirtualClock::new();
        (SpanStore::new(TimeSource::Virtual(clock.clone())), clock)
    }

    #[test]
    fn span_records_duration() {
        let (store, clock) = virt();
        {
            let _g = store.enter("stage");
            clock.advance(250);
        }
        let recs = store.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].dur_ns, 250);
        assert!(recs[0].closed);
        assert_eq!(recs[0].parent, None);
    }

    #[test]
    fn nesting_sets_parents() {
        let (store, clock) = virt();
        {
            let _outer = store.enter("outer");
            clock.advance(10);
            {
                let _inner = store.enter("inner");
                clock.advance(5);
            }
            clock.advance(1);
        }
        let recs = store.records();
        assert_eq!(recs[1].parent, Some(0));
        assert_eq!(recs[0].dur_ns, 16);
        assert_eq!(recs[1].dur_ns, 5);
        // Sibling after the nest attaches to the root again.
        let _g = store.enter("second");
        assert_eq!(store.records()[2].parent, None);
    }

    #[test]
    fn capacity_drops_instead_of_growing() {
        let (store, _clock) = virt();
        let small = SpanStore::with_capacity(store.time().clone(), 2);
        let _a = small.enter("a");
        let _b = small.enter("b");
        let _c = small.enter("c");
        assert_eq!(small.records().len(), 2);
        assert_eq!(small.dropped(), 1);
    }

    #[test]
    fn stores_do_not_share_nesting() {
        let (s1, _c1) = virt();
        let (s2, _c2) = virt();
        let _g1 = s1.enter("a");
        let _g2 = s2.enter("b");
        assert_eq!(s2.records()[0].parent, None, "nesting is per store");
    }
}
