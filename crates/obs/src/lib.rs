//! # incprof-obs — self-observability for the IncProf stack
//!
//! A zero-new-dependency observability layer shared by every IncProf
//! crate:
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   latency [`Histogram`]s in a named [`MetricsRegistry`];
//! * [`mod@span`] — RAII [`SpanGuard`]s recording nested stage durations
//!   against wall or virtual time;
//! * [`mod@trace`] — wire-propagated [`TraceContext`]s linking spans
//!   across process boundaries into one tree per trace id;
//! * [`mod@recorder`] — the [`FlightRecorder`], a lock-free ring of
//!   recent operational events for live postmortems;
//! * [`logger`] — leveled stderr logging gated by `INCPROF_LOG`
//!   (macros [`error!`], [`warn!`], [`info!`], [`debug!`], [`trace!`]);
//! * [`mod@report`] — a serializable [`RunReport`] snapshotting everything
//!   above, for `incprof --metrics <path>` and the bench harness;
//! * [`names`] — the workspace-wide registry of metric/span name
//!   constants. Production call sites must use these constants rather
//!   than string literals (enforced by `incprof-lint` rule O01).
//!
//! Metric names follow `<crate>.<subsystem>.<name>`, e.g.
//! `collect.snapshot.latency_ns` or `cluster.kmeans.iterations.k3`.
//!
//! ## Entry points
//!
//! Library code records into the process-wide instance via the
//! free functions:
//!
//! ```
//! incprof_obs::counter("demo.events.total").inc();
//! incprof_obs::histogram("demo.step.latency_ns").record(1250);
//! {
//!     let _stage = incprof_obs::span("demo.stage.outer");
//!     // ... work ...
//! }
//! let report = incprof_obs::report();
//! assert_eq!(report.counters["demo.events.total"], 1);
//! ```
//!
//! Tests that need isolation or deterministic time construct their own
//! [`Obs`] over a [`VirtualClock`] instead of using the global.

pub mod logger;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod report;
pub mod span;
pub mod trace;

pub use logger::Level;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use recorder::{EventKind, EventRecord, FlightRecorder};
pub use report::{RunReport, SpanNode};
pub use span::{SpanGuard, SpanStore, TimeSource, VirtualClock};
pub use trace::{TraceContext, TraceIdGen, TraceNode, TraceTree};

use std::sync::Arc;
use std::sync::OnceLock;

/// One observability context: a metrics registry plus a span store.
///
/// Cheap to clone; clones share state. Most code uses the process-wide
/// instance through [`global`] / the root free functions, but an `Obs`
/// can be built locally (typically over a [`VirtualClock`]) for
/// deterministic tests.
#[derive(Debug, Clone)]
pub struct Obs {
    metrics: Arc<MetricsRegistry>,
    spans: SpanStore,
    recorder: Arc<FlightRecorder>,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::with_spans(SpanStore::new(TimeSource::wall()))
    }
}

impl Obs {
    /// New context over wall time.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// New context recording spans into `spans` (e.g. a store over a
    /// [`VirtualClock`]). The flight recorder shares the store's time
    /// source, so virtual-time tests get virtual-time events.
    pub fn with_spans(spans: SpanStore) -> Obs {
        let recorder = Arc::new(FlightRecorder::new(spans.time().clone()));
        Obs {
            metrics: Arc::new(MetricsRegistry::new()),
            spans,
            recorder,
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span store.
    pub fn spans(&self) -> &SpanStore {
        &self.spans
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Open a span on this context (closes when the guard drops).
    pub fn span(&self, name: impl Into<std::borrow::Cow<'static, str>>) -> SpanGuard {
        self.spans.enter(name)
    }

    /// Snapshot everything recorded so far into a [`RunReport`].
    pub fn report(&self) -> RunReport {
        RunReport::capture(self)
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide observability context (created on first use, lives
/// for the process lifetime).
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::new)
}

/// The global counter named `name` (see [`MetricsRegistry::counter`]).
pub fn counter(name: &str) -> Arc<Counter> {
    global().metrics().counter(name)
}

/// The global gauge named `name` (see [`MetricsRegistry::gauge`]).
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().metrics().gauge(name)
}

/// The global histogram named `name` (see [`MetricsRegistry::histogram`]).
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().metrics().histogram(name)
}

/// Open a span on the global context.
pub fn span(name: impl Into<std::borrow::Cow<'static, str>>) -> SpanGuard {
    global().span(name)
}

/// The global flight recorder (see [`FlightRecorder`]).
pub fn recorder() -> &'static FlightRecorder {
    global().recorder()
}

/// Snapshot the global context into a [`RunReport`].
pub fn report() -> RunReport {
    global().report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_free_functions_share_one_context() {
        counter("lib.test.events").add(2);
        counter("lib.test.events").inc();
        assert_eq!(global().metrics().counter("lib.test.events").get(), 3);
        let r = report();
        assert_eq!(r.counters["lib.test.events"], 3);
    }

    #[test]
    fn local_obs_is_isolated_from_global() {
        let local = Obs::new();
        local.metrics().counter("lib.test.isolated").add(7);
        assert_eq!(global().metrics().counter("lib.test.isolated").get(), 0);
        assert_eq!(local.metrics().counter("lib.test.isolated").get(), 7);
    }
}
