//! The metric- and span-name registry.
//!
//! Every observability name used anywhere in the workspace is declared
//! here, once, as a constant (or, for names parameterized at runtime —
//! per-`k` sweep spans, per-`k` iteration counters — as a helper
//! function that stamps the parameter into a declared prefix). Call
//! sites refer to these constants instead of repeating string literals,
//! which kills two failure modes the `incprof-lint` O01 rule exists to
//! catch:
//!
//! * **typos** — a misspelled literal silently creates a second metric
//!   and the dashboards read zero on the real one;
//! * **silent forks** — two call sites that *meant* the same metric but
//!   drifted apart during a refactor.
//!
//! Names follow `<crate>.<subsystem>.<name>`; see the crate-level docs.
//! The [`ALL`] table drives the uniqueness/format self-test below and
//! gives auditors one place to read the whole namespace.

// ---------------------------------------------------------------------
// runtime
// ---------------------------------------------------------------------

/// Counter: snapshots taken by the instrumentation runtime.
pub const RUNTIME_SNAPSHOT_COUNT: &str = "runtime.snapshot.count";
/// Gauge (recorded as a running max): call-stack depth high-water mark.
pub const RUNTIME_STACK_DEPTH_HWM: &str = "runtime.stack.depth_hwm";

// ---------------------------------------------------------------------
// collect
// ---------------------------------------------------------------------

/// Counter: total bytes of gmon-encoded snapshot data produced.
pub const COLLECT_GMON_ENCODED_BYTES: &str = "collect.gmon.encoded_bytes";
/// Histogram: latency of taking + encoding one snapshot, nanoseconds.
pub const COLLECT_SNAPSHOT_LATENCY_NS: &str = "collect.snapshot.latency_ns";
/// Counter: snapshots collected.
pub const COLLECT_SNAPSHOT_COUNT: &str = "collect.snapshot.count";
/// Histogram: wall-collector tick lateness vs the absolute deadline.
pub const COLLECT_TICK_JITTER_NS: &str = "collect.collector.tick_jitter_ns";
/// Counter: ticks skipped by the overrun skip-ahead policy.
pub const COLLECT_TICKS_MISSED: &str = "collect.collector.ticks_missed";

// ---------------------------------------------------------------------
// cluster
// ---------------------------------------------------------------------

/// Span: one full k-selection sweep.
pub const CLUSTER_SELECT_K_SWEEP: &str = "cluster.select_k.sweep";
/// Span: the shared pairwise-distance matrix build inside a sweep.
pub const CLUSTER_SELECT_K_PAIRWISE: &str = "cluster.select_k.pairwise";
/// Histogram: final-iteration centroid movement, in picounits (×1e12).
pub const CLUSTER_KMEANS_CONVERGENCE_DELTA_E12: &str = "cluster.kmeans.convergence_delta_e12";
/// Counter: point assignments skipped by the Hamerly-style
/// triangle-inequality bounds inside Lloyd's assignment step (each skip
/// saves `k` distance evaluations and is provably output-identical).
pub const CLUSTER_KMEANS_PRUNED: &str = "cluster.kmeans.pruned";

/// Span name for the `k`-specific leg of a selection sweep.
pub fn cluster_select_k_k(k: usize) -> String {
    format!("cluster.select_k.k{k}")
}

/// Counter name for Lloyd iterations performed by the *winning* restart
/// at a given `k` (what [`cluster_kmeans_iterations_total`] used to be
/// conflated with: the winner's count measures convergence behavior,
/// the total measures compute spent).
pub fn cluster_kmeans_iterations(k: usize) -> String {
    format!("cluster.kmeans.iterations.k{k}")
}

/// Counter name for Lloyd iterations summed across *every* restart (and
/// every warm-started run) at a given `k` — the compute-cost view.
pub fn cluster_kmeans_iterations_total(k: usize) -> String {
    format!("cluster.kmeans.iterations_total.k{k}")
}

// ---------------------------------------------------------------------
// core (pipeline stage spans + counters)
// ---------------------------------------------------------------------

/// Span: one end-to-end phase detection.
pub const CORE_PIPELINE_DETECT: &str = "core.pipeline.detect";
/// Span: feature extraction stage.
pub const CORE_PIPELINE_FEATURES: &str = "core.pipeline.features";
/// Span: clustering stage.
pub const CORE_PIPELINE_CLUSTER: &str = "core.pipeline.cluster";
/// Span: Algorithm 1 site selection stage.
pub const CORE_PIPELINE_ALGORITHM1: &str = "core.pipeline.algorithm1";
/// Counter: completed `detect` runs.
pub const CORE_PIPELINE_DETECT_RUNS: &str = "core.pipeline.detect_runs";
/// Span: a batched `detect_many` call.
pub const CORE_PIPELINE_DETECT_MANY: &str = "core.pipeline.detect_many";
/// Span: detection driven from a cumulative sample series.
pub const CORE_PIPELINE_DETECT_SERIES: &str = "core.pipeline.detect_series";
/// Span: cumulative-series delta (interval differencing) stage.
pub const CORE_PIPELINE_DELTA: &str = "core.pipeline.delta";
/// Span: interval-matrix construction stage.
pub const CORE_PIPELINE_MATRIX: &str = "core.pipeline.matrix";

// ---------------------------------------------------------------------
// core (incremental analysis cache)
// ---------------------------------------------------------------------

/// Span: one `AnalysisCache::analyze` call (hit or miss).
pub const CORE_CACHE_ANALYZE: &str = "core.cache.analyze";
/// Counter: queries answered from the whole-report memo without work.
pub const CORE_CACHE_HITS: &str = "core.cache.memo_hits";
/// Counter: queries that had to (re)run some part of the pipeline.
pub const CORE_CACHE_MISSES: &str = "core.cache.memo_misses";
/// Counter: pairwise matrices grown incrementally instead of rebuilt.
pub const CORE_CACHE_PAIR_EXTENDS: &str = "core.cache.pair_extends";
/// Counter: cached state discarded (config change, series reset, or
/// scaled rows shifted under a column-stat rescale).
pub const CORE_CACHE_INVALIDATIONS: &str = "core.cache.invalidations";
/// Counter: analyses that warm-started the k-means sweep from cached
/// converged centroid chains instead of refolding from scratch.
pub const CORE_CACHE_CENTROID_CONTINUES: &str = "core.cache.centroid_continues";
/// Counter: cached centroid chains discarded (config change, series
/// reset, or a scaled-prefix drift that also rebuilt the pair matrix).
pub const CORE_CACHE_CENTROID_RESETS: &str = "core.cache.centroid_resets";
/// Counter: centroid chains re-aligned to a grown feature space (new
/// functions insert zero columns; bit-preserving, so no refold).
pub const CORE_CACHE_CENTROID_REMAPS: &str = "core.cache.centroid_remaps";

// ---------------------------------------------------------------------
// par
// ---------------------------------------------------------------------

/// Counter: parallel primitive invocations.
pub const PAR_POOL_CALLS: &str = "par.pool.calls";
/// Counter: chunk tasks executed across all calls.
pub const PAR_POOL_TASKS: &str = "par.pool.tasks";
/// Counter: chunks claimed by a worker other than their static owner.
pub const PAR_POOL_STEALS: &str = "par.pool.steals";
/// Counter: workers that arrived after the chunk queue drained.
pub const PAR_POOL_QUEUE_WAITS: &str = "par.pool.queue_waits";
/// Gauge (running max): workers used by a parallel call.
pub const PAR_POOL_WORKERS: &str = "par.pool.workers";

// ---------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------

/// Span: one whole-workspace lint run.
pub const LINT_RUN: &str = "lint.engine.run";
/// Counter: source files scanned by the lint engine.
pub const LINT_FILES_SCANNED: &str = "lint.files.scanned";
/// Counter: diagnostics emitted (post-suppression).
pub const LINT_DIAGNOSTICS_TOTAL: &str = "lint.diagnostics.total";
/// Counter: suppression markers honored.
pub const LINT_SUPPRESSIONS_USED: &str = "lint.suppressions.used";
/// Counter: function items resolved by the static-analysis passes.
pub const SCA_FUNCTIONS: &str = "lint.sca.functions";
/// Counter: call edges with a unique (confident) resolution.
pub const SCA_EDGES_CONFIDENT: &str = "lint.sca.edges_confident";
/// Counter: call edges with multiple candidates (ambiguous).
pub const SCA_EDGES_AMBIGUOUS: &str = "lint.sca.edges_ambiguous";

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

/// Gauge: sessions currently open in the daemon registry.
pub const SERVE_SESSIONS_ACTIVE: &str = "serve.sessions.active";
/// Counter: sessions opened over the daemon's lifetime.
pub const SERVE_SESSIONS_OPENED: &str = "serve.sessions.opened";
/// Counter: sessions closed.
pub const SERVE_SESSIONS_CLOSED: &str = "serve.sessions.closed";
/// Counter: well-formed request frames read off the wire.
pub const SERVE_FRAMES_IN: &str = "serve.frames.received";
/// Counter: reply frames written to the wire.
pub const SERVE_FRAMES_OUT: &str = "serve.frames.sent";
/// Counter: wire bytes received (framed request bytes).
pub const SERVE_BYTES_IN: &str = "serve.bytes.received";
/// Counter: wire bytes sent (framed reply bytes).
pub const SERVE_BYTES_OUT: &str = "serve.bytes.sent";
/// Counter: frames rejected at decode (framing or payload).
pub const SERVE_DECODE_ERRORS: &str = "serve.frames.decode_errors";
/// Counter: BUSY backpressure replies (session queue or accept queue).
pub const SERVE_BUSY_REPLIES: &str = "serve.backpressure.busy_replies";
/// Counter: connections accepted.
pub const SERVE_CONNS_ACCEPTED: &str = "serve.conns.accepted";
/// Histogram: snapshot arrival to online-detector observation, ns.
pub const SERVE_INGEST_DETECT_LATENCY_NS: &str = "serve.ingest.detect_latency_ns";
/// Counter: client-side push retries after a Busy reply.
pub const SERVE_CLIENT_RETRIES: &str = "serve.client.retries";
/// Counter: client-side transparent reconnects after a broken or reset
/// connection (the request is retransmitted on the fresh connection).
pub const SERVE_CLIENT_RECONNECTS: &str = "serve.client.reconnects";
/// Counter: connections accepted on the admin socket.
pub const SERVE_ADMIN_CONNS: &str = "serve.admin.conns_accepted";
/// Counter: admin requests answered (all types).
pub const SERVE_ADMIN_REQUESTS: &str = "serve.admin.requests";
/// Counter: Prometheus-style scrapes served.
pub const SERVE_ADMIN_SCRAPES: &str = "serve.admin.scrapes";

// ---------------------------------------------------------------------
// serve (trace spans: one tree per traced push)
// ---------------------------------------------------------------------

/// Span: client-side root of a traced push (open → ack).
pub const SERVE_CLIENT_PUSH: &str = "serve.client.push";
/// Span: server-side handling of one traced snapshot frame — decode,
/// enqueue, and the worker's drain, which all happen on one thread
/// under one session lock. Kept as a single span on purpose: the
/// traced hot path pays exactly two server-side spans per push (this
/// and [`SERVE_TRACE_OBSERVE`]), which is what holds the workload
/// tracing tax under the `serve_load` gate.
pub const SERVE_TRACE_SNAPSHOT: &str = "serve.trace.snapshot";
/// Span: online-detector / analysis-cache observation of one interval.
pub const SERVE_TRACE_OBSERVE: &str = "serve.trace.observe";
/// Span: server-side dispatch of one traced report query.
pub const SERVE_TRACE_QUERY: &str = "serve.trace.query";

// ---------------------------------------------------------------------
// store (durable session logs, checkpoints, eviction)
// ---------------------------------------------------------------------

/// Counter: snapshot records appended to session logs.
pub const STORE_APPENDS: &str = "store.log.appends";
/// Counter: bytes appended to session logs (encoded record bytes).
pub const STORE_BYTES_APPENDED: &str = "store.log.bytes_appended";
/// Counter: retention-triggered log compactions (rewrites).
pub const STORE_COMPACTIONS: &str = "store.log.compactions";
/// Counter: snapshot records dropped by the retention policy.
pub const STORE_RECORDS_DROPPED: &str = "store.log.records_dropped";
/// Counter: torn log tails truncated during recovery.
pub const STORE_TORN_TAILS: &str = "store.log.torn_tails";
/// Counter: log appends that failed with an I/O error (the session
/// continues in memory only).
pub const STORE_APPEND_ERRORS: &str = "store.log.append_errors";
/// Counter: analysis checkpoints written.
pub const STORE_CHECKPOINTS: &str = "store.checkpoint.writes";
/// Counter: checkpoints discarded at rehydration (stale coverage or a
/// memo that failed the byte-identity round-trip); the session replays
/// from the log instead.
pub const STORE_CHECKPOINTS_REJECTED: &str = "store.checkpoint.rejected";
/// Counter: sessions rehydrated from disk.
pub const STORE_REHYDRATIONS: &str = "store.session.rehydrations";
/// Counter: idle sessions evicted from memory to disk (LRU).
pub const STORE_EVICTIONS: &str = "store.session.evictions";

// ---------------------------------------------------------------------
// shard (the consistent-hash session router fronting a serve cluster)
// ---------------------------------------------------------------------

/// Counter: client connections accepted by the router's data plane.
pub const SHARD_CONNS_ACCEPTED: &str = "shard.conns.accepted";
/// Counter: request frames routed to a backend (replies not counted).
pub const SHARD_FRAMES_ROUTED: &str = "shard.frames.routed";
/// Counter: backends declared dead (broken pipe or timeout) and marked
/// down for the rest of the router's life.
pub const SHARD_BACKEND_DEATHS: &str = "shard.backend.deaths";
/// Counter: in-flight requests re-routed to the ring's next healthy
/// backend after their owner died.
pub const SHARD_FAILOVER_REROUTES: &str = "shard.failover.reroutes";
/// Counter: distinct sessions whose placement moved because of a
/// backend death (each replays from the shared store on first touch).
pub const SHARD_SESSIONS_REPLAYED: &str = "shard.sessions.replayed";
/// Gauge: backends currently considered healthy.
pub const SHARD_BACKENDS_UP: &str = "shard.backends.up";
/// Counter: connections accepted on the router's admin socket.
pub const SHARD_ADMIN_CONNS: &str = "shard.admin.conns_accepted";
/// Counter: cluster scrapes merged and served by the router.
pub const SHARD_ADMIN_SCRAPES: &str = "shard.admin.scrapes";

// ---------------------------------------------------------------------
// registry table
// ---------------------------------------------------------------------

/// Every static name above, for uniqueness and format auditing.
///
/// Dynamic helpers are represented by their prefix with a trailing
/// `k*` placeholder documented here rather than enumerated.
pub const ALL: &[&str] = &[
    RUNTIME_SNAPSHOT_COUNT,
    RUNTIME_STACK_DEPTH_HWM,
    COLLECT_GMON_ENCODED_BYTES,
    COLLECT_SNAPSHOT_LATENCY_NS,
    COLLECT_SNAPSHOT_COUNT,
    COLLECT_TICK_JITTER_NS,
    COLLECT_TICKS_MISSED,
    CLUSTER_SELECT_K_SWEEP,
    CLUSTER_SELECT_K_PAIRWISE,
    CLUSTER_KMEANS_CONVERGENCE_DELTA_E12,
    CLUSTER_KMEANS_PRUNED,
    CORE_PIPELINE_DETECT,
    CORE_PIPELINE_FEATURES,
    CORE_PIPELINE_CLUSTER,
    CORE_PIPELINE_ALGORITHM1,
    CORE_PIPELINE_DETECT_RUNS,
    CORE_PIPELINE_DETECT_MANY,
    CORE_PIPELINE_DETECT_SERIES,
    CORE_PIPELINE_DELTA,
    CORE_PIPELINE_MATRIX,
    CORE_CACHE_ANALYZE,
    CORE_CACHE_HITS,
    CORE_CACHE_MISSES,
    CORE_CACHE_PAIR_EXTENDS,
    CORE_CACHE_INVALIDATIONS,
    CORE_CACHE_CENTROID_CONTINUES,
    CORE_CACHE_CENTROID_RESETS,
    CORE_CACHE_CENTROID_REMAPS,
    PAR_POOL_CALLS,
    PAR_POOL_TASKS,
    PAR_POOL_STEALS,
    PAR_POOL_QUEUE_WAITS,
    PAR_POOL_WORKERS,
    LINT_RUN,
    LINT_FILES_SCANNED,
    LINT_DIAGNOSTICS_TOTAL,
    LINT_SUPPRESSIONS_USED,
    SCA_FUNCTIONS,
    SCA_EDGES_CONFIDENT,
    SCA_EDGES_AMBIGUOUS,
    SERVE_SESSIONS_ACTIVE,
    SERVE_SESSIONS_OPENED,
    SERVE_SESSIONS_CLOSED,
    SERVE_FRAMES_IN,
    SERVE_FRAMES_OUT,
    SERVE_BYTES_IN,
    SERVE_BYTES_OUT,
    SERVE_DECODE_ERRORS,
    SERVE_BUSY_REPLIES,
    SERVE_CONNS_ACCEPTED,
    SERVE_INGEST_DETECT_LATENCY_NS,
    SERVE_CLIENT_RETRIES,
    SERVE_CLIENT_RECONNECTS,
    SERVE_ADMIN_CONNS,
    SERVE_ADMIN_REQUESTS,
    SERVE_ADMIN_SCRAPES,
    SERVE_CLIENT_PUSH,
    SERVE_TRACE_SNAPSHOT,
    SERVE_TRACE_OBSERVE,
    SERVE_TRACE_QUERY,
    STORE_APPENDS,
    STORE_BYTES_APPENDED,
    STORE_COMPACTIONS,
    STORE_RECORDS_DROPPED,
    STORE_TORN_TAILS,
    STORE_APPEND_ERRORS,
    STORE_CHECKPOINTS,
    STORE_CHECKPOINTS_REJECTED,
    STORE_REHYDRATIONS,
    STORE_EVICTIONS,
    SHARD_CONNS_ACCEPTED,
    SHARD_FRAMES_ROUTED,
    SHARD_BACKEND_DEATHS,
    SHARD_FAILOVER_REROUTES,
    SHARD_SESSIONS_REPLAYED,
    SHARD_BACKENDS_UP,
    SHARD_ADMIN_CONNS,
    SHARD_ADMIN_SCRAPES,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate metric name: {name}");
        }
    }

    #[test]
    fn names_follow_crate_subsystem_name_format() {
        for name in ALL {
            let parts: Vec<&str> = name.split('.').collect();
            assert!(
                parts.len() >= 3,
                "{name}: expected <crate>.<subsystem>.<name>"
            );
            for p in &parts {
                assert!(!p.is_empty(), "{name}: empty segment");
                assert!(
                    p.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "{name}: segment {p} not lower_snake"
                );
            }
        }
    }

    #[test]
    fn dynamic_helpers_extend_registered_prefixes() {
        assert!(cluster_select_k_k(3).starts_with("cluster.select_k.k"));
        assert_eq!(cluster_select_k_k(3), "cluster.select_k.k3");
        assert_eq!(cluster_kmeans_iterations(8), "cluster.kmeans.iterations.k8");
        assert_eq!(
            cluster_kmeans_iterations_total(8),
            "cluster.kmeans.iterations_total.k8"
        );
    }
}
