//! Lock-free metric instruments and the registry that names them.
//!
//! Three instrument kinds cover the stack's needs:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, bytes);
//! * [`Gauge`] — last-value or high-water-mark `u64` (stack depth);
//! * [`Histogram`] — fixed power-of-two buckets with count/sum/min/max,
//!   built for nanosecond latencies but usable for any `u64` quantity.
//!
//! All updates are single atomic operations, so instruments can sit on
//! warm paths without locks. Names follow the `<crate>.<subsystem>.<name>`
//! scheme (see the repository README's Observability section).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (high-water-mark semantics).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`; bucket 0 holds zero. 65 buckets cover all of
/// `u64`.
pub const N_BUCKETS: usize = 65;

/// Bucket index for a value (shared by recording and snapshotting).
#[inline]
fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        n => (u64::BITS - n.leading_zeros()) as usize,
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        n => (1u64 << n) - 1,
    }
}

/// A fixed-bucket latency histogram (power-of-two bucket boundaries).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time view (consistency is best-effort under
    /// concurrent writers, exact once writers have quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
                .map(|(i, b)| BucketCount {
                    le: bucket_upper(i),
                    count: b.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket: `count` observations ≤ `le` (and above
/// the previous bucket's bound).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations that fell in this bucket.
    pub count: u64,
}

/// Serializable view of a [`Histogram`]: only non-empty buckets are kept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty buckets in ascending bound order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`, clamped), estimated as the
    /// upper bound of the bucket holding the `⌈q·count⌉`-th observation,
    /// clamped to the observed `[min, max]`. Returns 0 when empty.
    /// `q = 0.0` is exact: it returns the observed minimum, not the
    /// minimum's bucket bound. A single-observation histogram returns
    /// that observation at every `q` (its bucket bound clamps to
    /// `min == max`).
    ///
    /// Power-of-two buckets make this a ≤2× overestimate in the worst
    /// case — the right trade for tail-latency reporting, where "which
    /// order of magnitude" is the question being asked.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            // The 0-quantile is the smallest observation itself — the
            // bucket bound would overestimate it by up to 2×.
            return self.min;
        }
        // Rank of the target observation, 1-based: ⌈q·count⌉, at least 1
        // (guards tiny q whose product rounds to 0).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.le.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Convenience: (p50, p95, p99) in one call.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

/// Named instrument registry. Instruments are created on first use and
/// live for the registry's lifetime; lookups take a read lock, updates to
/// the returned instrument are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: parking_lot::RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: parking_lot::RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: parking_lot::RwLock<BTreeMap<String, Arc<Histogram>>>,
}

macro_rules! get_or_create {
    ($self:ident . $field:ident, $name:ident) => {{
        if let Some(m) = $self.$field.read().get($name) {
            return Arc::clone(m);
        }
        let mut map = $self.$field.write();
        Arc::clone(map.entry($name.to_string()).or_default())
    }};
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self.gauges, name)
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self.histograms, name)
    }

    /// Name → value for every counter.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Name → value for every gauge.
    pub fn gauge_values(&self) -> BTreeMap<String, u64> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Name → snapshot for every histogram.
    pub fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b.c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b.c").get(), 5, "same name, same counter");
    }

    #[test]
    fn gauge_max_semantics() {
        let g = Gauge::new();
        g.record_max(3);
        g.record_max(1);
        assert_eq!(g.get(), 3);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucket_bounds() {
        // Bucket layout: {0}, {1}, {2,3}, {4..7}, {8..15}, ...
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 25);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 8);
        let got: Vec<(u64, u64)> = s.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(got, vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1)]);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn top_bucket_holds_u64_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(
            s.buckets,
            vec![BucketCount {
                le: u64::MAX,
                count: 1
            }]
        );
    }

    #[test]
    fn quantile_empty_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.percentiles(), (0, 0, 0));
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let h = Histogram::new();
        // 90 observations in [4,7], 9 in [64,127], 1 in [1024,2047].
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(1500);
        let s = h.snapshot();
        // p50 and p90 land in the first bucket (le=7).
        assert_eq!(s.quantile(0.50), 7);
        assert_eq!(s.quantile(0.90), 7);
        // p95 lands in the middle bucket (le=127).
        assert_eq!(s.quantile(0.95), 127);
        // p99 reaches the middle bucket (rank 99 of 100); p100 the tail,
        // clamped to the observed max rather than the bucket bound 2047.
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(s.quantile(1.0), 1500);
    }

    #[test]
    fn quantile_is_clamped_to_observed_range() {
        let h = Histogram::new();
        h.record(5); // bucket le=7
        let s = h.snapshot();
        // q out of range is clamped; a single observation answers
        // every quantile, clamped to max=5 rather than bucket bound 7.
        assert_eq!(s.quantile(-1.0), 5);
        assert_eq!(s.quantile(0.0), 5);
        assert_eq!(s.quantile(2.0), 5);
    }

    #[test]
    fn quantile_single_zero_observation() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn quantile_zero_is_observed_min_not_bucket_bound() {
        let h = Histogram::new();
        h.record(5); // bucket le=7
        h.record(1000);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.min, 5);
        // q=0 must be the min itself, not the min's bucket bound (7).
        assert_eq!(s.quantile(0.0), 5);
        assert_eq!(s.quantile(-0.5), 5);
        // Barely above zero lands in the min's bucket: bound applies.
        assert_eq!(s.quantile(0.01), 7);
    }

    #[test]
    fn quantile_single_observation_answers_every_q() {
        let h = Histogram::new();
        h.record(100); // bucket le=127
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 100, "q={q}");
        }
    }

    #[test]
    fn quantile_mid_bucket_respects_documented_clamp() {
        let h = Histogram::new();
        // Both land in bucket [64,127] but max=100: the bound must clamp
        // down to the observed max, and min must clamp the low side.
        h.record(70);
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 100);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.0), 70);
    }
}
