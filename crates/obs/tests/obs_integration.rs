//! Integration tests for the observability layer: concurrency, virtual
//! time, and report round-trips.

use incprof_obs::span::{SpanStore, TimeSource};
use incprof_obs::{Obs, RunReport, VirtualClock};

fn virtual_obs() -> (Obs, VirtualClock) {
    let clock = VirtualClock::new();
    let obs = Obs::with_spans(SpanStore::new(TimeSource::Virtual(clock.clone())));
    (obs, clock)
}

#[test]
fn concurrent_counter_sums_are_exact() {
    let obs = Obs::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let obs = obs.clone();
            s.spawn(move || {
                let c = obs.metrics().counter("test.concurrent.events");
                let h = obs.metrics().histogram("test.concurrent.latency");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(
        obs.metrics().counter("test.concurrent.events").get(),
        expected
    );
    let snap = obs
        .metrics()
        .histogram("test.concurrent.latency")
        .snapshot();
    assert_eq!(snap.count, expected);
    // Sum of 0..80000 = n(n-1)/2; single atomics make this exact, not
    // approximate, once the writers have joined.
    assert_eq!(snap.sum, expected * (expected - 1) / 2);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, expected - 1);
    assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), expected);
}

#[test]
fn nested_span_durations_are_monotonic_under_virtual_clock() {
    let (obs, clock) = virtual_obs();
    {
        let _root = obs.span("root");
        {
            let _a = obs.span("a");
            clock.advance(100);
            {
                let _a1 = obs.span("a1");
                clock.advance(40);
            }
        }
        {
            let _b = obs.span("b");
            clock.advance(60);
        }
        clock.advance(10);
    }
    let report = obs.report();
    let root = &report.spans[0];
    assert_eq!(root.name, "root");
    assert_eq!(root.dur_ns, 210);
    // Parent duration covers the sum of its children.
    assert!(root.dur_ns >= root.children_dur_ns());
    assert_eq!(root.children_dur_ns(), 140 + 60);
    let a = root.find("a").unwrap();
    assert_eq!(a.dur_ns, 140);
    assert!(a.dur_ns >= a.children_dur_ns());
    assert_eq!(a.find("a1").unwrap().dur_ns, 40);
    assert_eq!(root.find("b").unwrap().dur_ns, 60);
    // Start times are monotonic in tree (DFS) order.
    let mut starts = Vec::new();
    fn collect_starts(n: &incprof_obs::SpanNode, out: &mut Vec<u64>) {
        out.push(n.start_ns);
        for c in &n.children {
            collect_starts(c, out);
        }
    }
    collect_starts(root, &mut starts);
    assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{starts:?}");
}

#[test]
fn run_report_round_trips_through_json() {
    let (obs, clock) = virtual_obs();
    obs.metrics().counter("roundtrip.counter").add(17);
    obs.metrics().gauge("roundtrip.gauge").set(99);
    let h = obs.metrics().histogram("roundtrip.hist");
    for v in [0, 1, 5, 1_000_000, u64::MAX] {
        h.record(v);
    }
    {
        let _outer = obs.span("outer");
        clock.advance(1000);
        {
            let _inner = obs.span("inner");
            clock.advance(500);
        }
    }
    let report = obs.report();
    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.counters["roundtrip.counter"], 17);
    assert_eq!(parsed.gauges["roundtrip.gauge"], 99);
    assert_eq!(parsed.histograms["roundtrip.hist"].max, u64::MAX);
    assert_eq!(parsed.find_span("inner").unwrap().dur_ns, 500);
}

#[test]
fn spans_on_multiple_threads_get_independent_roots() {
    let obs = Obs::new();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let obs = obs.clone();
            s.spawn(move || {
                let _root = obs.span("thread.root");
                let _child = obs.span("thread.child");
            });
        }
    });
    let report = obs.report();
    // Nesting is per thread: each thread contributes one root with one
    // child, never a chain across threads.
    assert_eq!(report.spans.len(), 4);
    for root in &report.spans {
        assert_eq!(root.name, "thread.root");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "thread.child");
    }
}
