//! A `gmon.out`-style binary snapshot format.
//!
//! Real gprof data files start with a `gmon` magic and carry tagged records
//! (histogram, call-graph arcs, basic-block counts). IncProf's collector
//! thread repeatedly invokes glibc's hidden write function to emit one such
//! file per interval, renaming each to a unique sample name (paper §IV,
//! Fig. 1).
//!
//! We keep the same outer structure — magic, version, tagged records — but
//! define our own record payloads, since our runtime records function-keyed
//! counters rather than PC histograms:
//!
//! | tag | record |
//! |-----|--------|
//! | 0x01 | header: sample index (u64), timestamp ns (u64) |
//! | 0x02 | function table: count, then per function id/address/name/file?/line? |
//! | 0x03 | flat records: count, then per function id/self_ns/calls/child_ns |
//! | 0x04 | arc records: count, then per arc from/to/count/child_ns |
//! | 0xFF | end of stream |
//!
//! All integers are little-endian. Strings are u32 length + UTF-8 bytes.

use crate::callgraph::{ArcStats, CallGraphProfile};
use crate::error::ProfileError;
use crate::flat::{FlatProfile, FunctionStats};
use crate::function::{FunctionId, FunctionInfo, FunctionTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes at the start of every gmon stream (same as real gprof).
pub const MAGIC: &[u8; 4] = b"gmon";
/// Format version this crate writes and understands.
pub const VERSION: u32 = 1;

const TAG_HEADER: u8 = 0x01;
const TAG_FUNCTIONS: u8 = 0x02;
const TAG_FLAT: u8 = 0x03;
const TAG_ARCS: u8 = 0x04;
const TAG_END: u8 = 0xFF;

/// One decoded (or to-be-encoded) gmon snapshot: the cumulative profile
/// state of a process at a single collection instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GmonData {
    /// Monotone sample index assigned by the collector (0, 1, 2, ...).
    pub sample_index: u64,
    /// Timestamp of the snapshot in nanoseconds (wall or virtual clock).
    pub timestamp_ns: u64,
    /// Function table as known at snapshot time.
    pub functions: FunctionTable,
    /// Cumulative flat profile.
    pub flat: FlatProfile,
    /// Cumulative call-graph profile.
    pub callgraph: CallGraphProfile,
}

impl GmonData {
    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            64 + self.functions.len() * 48 + self.flat.len() * 28 + self.callgraph.len() * 24,
        );
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);

        buf.put_u8(TAG_HEADER);
        buf.put_u64_le(self.sample_index);
        buf.put_u64_le(self.timestamp_ns);

        buf.put_u8(TAG_FUNCTIONS);
        buf.put_u32_le(self.functions.len() as u32);
        for (id, info) in self.functions.iter() {
            buf.put_u32_le(id.0);
            buf.put_u64_le(info.address);
            put_string(&mut buf, &info.name);
            match (&info.source_file, info.line) {
                (Some(file), line) => {
                    buf.put_u8(1);
                    put_string(&mut buf, file);
                    buf.put_u32_le(line.unwrap_or(0));
                }
                (None, _) => buf.put_u8(0),
            }
        }

        buf.put_u8(TAG_FLAT);
        buf.put_u32_le(self.flat.len() as u32);
        for (id, s) in self.flat.iter() {
            buf.put_u32_le(id.0);
            buf.put_u64_le(s.self_time);
            buf.put_u64_le(s.calls);
            buf.put_u64_le(s.child_time);
        }

        buf.put_u8(TAG_ARCS);
        buf.put_u32_le(self.callgraph.len() as u32);
        for ((from, to), s) in self.callgraph.iter() {
            buf.put_u32_le(from.0);
            buf.put_u32_le(to.0);
            buf.put_u64_le(s.count);
            buf.put_u64_le(s.child_time);
        }

        buf.put_u8(TAG_END);
        buf.freeze()
    }

    /// Deserialize from bytes.
    pub fn decode(mut data: &[u8]) -> Result<GmonData, ProfileError> {
        if data.remaining() < 4 {
            return Err(ProfileError::Truncated { context: "magic" });
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(ProfileError::BadMagic { found: magic });
        }
        if data.remaining() < 4 {
            return Err(ProfileError::Truncated { context: "version" });
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(ProfileError::UnsupportedVersion { found: version });
        }

        let mut out = GmonData::default();
        loop {
            if data.remaining() < 1 {
                return Err(ProfileError::Truncated {
                    context: "record tag",
                });
            }
            match data.get_u8() {
                TAG_END => break,
                TAG_HEADER => {
                    if data.remaining() < 16 {
                        return Err(ProfileError::Truncated {
                            context: "header record",
                        });
                    }
                    out.sample_index = data.get_u64_le();
                    out.timestamp_ns = data.get_u64_le();
                }
                TAG_FUNCTIONS => {
                    if data.remaining() < 4 {
                        return Err(ProfileError::Truncated {
                            context: "function count",
                        });
                    }
                    let n = data.get_u32_le();
                    for _ in 0..n {
                        if data.remaining() < 12 {
                            return Err(ProfileError::Truncated {
                                context: "function record",
                            });
                        }
                        let _id = data.get_u32_le(); // ids are dense & in order
                        let address = data.get_u64_le();
                        let name = get_string(&mut data, "function name")?;
                        if data.remaining() < 1 {
                            return Err(ProfileError::Truncated {
                                context: "location flag",
                            });
                        }
                        let mut info = FunctionInfo::named(name);
                        info.address = address;
                        if data.get_u8() == 1 {
                            let file = get_string(&mut data, "source file")?;
                            if data.remaining() < 4 {
                                return Err(ProfileError::Truncated {
                                    context: "line number",
                                });
                            }
                            let line = data.get_u32_le();
                            info.source_file = Some(file);
                            info.line = if line > 0 { Some(line) } else { None };
                        }
                        out.functions.register_info(info);
                    }
                }
                TAG_FLAT => {
                    if data.remaining() < 4 {
                        return Err(ProfileError::Truncated {
                            context: "flat count",
                        });
                    }
                    let n = data.get_u32_le();
                    for _ in 0..n {
                        if data.remaining() < 28 {
                            return Err(ProfileError::Truncated {
                                context: "flat record",
                            });
                        }
                        let id = FunctionId(data.get_u32_le());
                        let stats = FunctionStats {
                            self_time: data.get_u64_le(),
                            calls: data.get_u64_le(),
                            child_time: data.get_u64_le(),
                        };
                        if id.index() >= out.functions.len() {
                            return Err(ProfileError::UnknownFunction { id: id.0 });
                        }
                        out.flat.set(id, stats);
                    }
                }
                TAG_ARCS => {
                    if data.remaining() < 4 {
                        return Err(ProfileError::Truncated {
                            context: "arc count",
                        });
                    }
                    let n = data.get_u32_le();
                    for _ in 0..n {
                        if data.remaining() < 24 {
                            return Err(ProfileError::Truncated {
                                context: "arc record",
                            });
                        }
                        let from = FunctionId(data.get_u32_le());
                        let to = FunctionId(data.get_u32_le());
                        let stats = ArcStats {
                            count: data.get_u64_le(),
                            child_time: data.get_u64_le(),
                        };
                        if from.index() >= out.functions.len() || to.index() >= out.functions.len()
                        {
                            return Err(ProfileError::UnknownFunction {
                                id: from.0.max(to.0),
                            });
                        }
                        out.callgraph.set(from, to, stats);
                    }
                }
                tag => return Err(ProfileError::UnknownTag { tag }),
            }
        }
        Ok(out)
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(data: &mut &[u8], context: &'static str) -> Result<String, ProfileError> {
    if data.remaining() < 4 {
        return Err(ProfileError::Truncated { context });
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(ProfileError::Truncated { context });
    }
    let bytes = data[..len].to_vec();
    data.advance(len);
    String::from_utf8(bytes).map_err(|_| ProfileError::InvalidUtf8 { context })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gmon() -> GmonData {
        let mut g = GmonData {
            sample_index: 7,
            timestamp_ns: 123_456_789,
            ..Default::default()
        };
        let a = g
            .functions
            .register_info(FunctionInfo::with_location("cg_solve", "cg.cpp", 42));
        let b = g.functions.register("impose_dirichlet");
        g.flat.set(
            a,
            FunctionStats {
                self_time: 1000,
                calls: 3,
                child_time: 200,
            },
        );
        g.flat.set(
            b,
            FunctionStats {
                self_time: 50,
                calls: 100,
                child_time: 0,
            },
        );
        g.callgraph.set(
            a,
            b,
            ArcStats {
                count: 100,
                child_time: 50,
            },
        );
        g
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_gmon();
        let bytes = g.encode();
        let mut back = GmonData::decode(&bytes).unwrap();
        back.functions.rebuild_index();
        assert_eq!(back.sample_index, 7);
        assert_eq!(back.timestamp_ns, 123_456_789);
        assert_eq!(back.functions.len(), 2);
        let a = back.functions.id_of("cg_solve").unwrap();
        assert_eq!(
            back.functions.info(a).unwrap().source_file.as_deref(),
            Some("cg.cpp")
        );
        assert_eq!(back.functions.info(a).unwrap().line, Some(42));
        assert_eq!(back.flat.get(a).self_time, 1000);
        let b = back.functions.id_of("impose_dirichlet").unwrap();
        assert_eq!(back.callgraph.get(a, b).count, 100);
    }

    #[test]
    fn stream_starts_with_gprof_magic() {
        let bytes = sample_gmon().encode();
        assert_eq!(&bytes[..4], b"gmon");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_gmon().encode().to_vec();
        bytes[0] = b'x';
        assert!(matches!(
            GmonData::decode(&bytes),
            Err(ProfileError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_gmon().encode().to_vec();
        bytes[4] = 9; // version LE low byte
        assert!(matches!(
            GmonData::decode(&bytes),
            Err(ProfileError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample_gmon().encode();
        // Chop the stream at every prefix length; must never panic, and
        // must error for every length except the full stream.
        for len in 0..bytes.len() {
            let res = GmonData::decode(&bytes[..len]);
            assert!(res.is_err(), "prefix of {len} bytes should fail to decode");
        }
        assert!(GmonData::decode(&bytes).is_ok());
    }

    #[test]
    fn unknown_tag_is_reported() {
        let g = GmonData::default();
        let mut bytes = g.encode().to_vec();
        // Replace the end tag with garbage and append padding.
        let pos = bytes.len() - 1;
        bytes[pos] = 0x77;
        bytes.push(TAG_END);
        assert!(matches!(
            GmonData::decode(&bytes),
            Err(ProfileError::UnknownTag { tag: 0x77 })
        ));
    }

    #[test]
    fn flat_record_with_unregistered_function_is_rejected() {
        let mut g = GmonData::default();
        g.flat.set(
            FunctionId(5),
            FunctionStats {
                self_time: 1,
                calls: 1,
                child_time: 0,
            },
        );
        let bytes = g.encode();
        assert!(matches!(
            GmonData::decode(&bytes),
            Err(ProfileError::UnknownFunction { id: 5 })
        ));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let g = GmonData::default();
        let back = GmonData::decode(&g.encode()).unwrap();
        assert_eq!(back, g);
    }
}
