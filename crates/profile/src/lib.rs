//! # incprof-profile
//!
//! A gprof-compatible profile data model.
//!
//! The IncProf paper (Aaziz et al., CLUSTER 2022) builds its incremental
//! profiling tool on top of GNU *gprof*: the application is compiled with
//! `-pg`, the glibc runtime accumulates a cumulative profile, and IncProf's
//! collector thread periodically forces that cumulative profile out to disk
//! in the `gmon.out` binary format, converting each dump to a *textual*
//! gprof report which the analysis pipeline then parses.
//!
//! This crate reproduces that entire data contract in safe Rust:
//!
//! * [`FunctionTable`] / [`FunctionId`] — the symbol table mapping function
//!   names (and optional source locations) to dense numeric ids.
//! * [`FlatProfile`] — the gprof *flat profile*: per-function self time and
//!   call counts. Supports the cumulative→interval **delta** operation that
//!   is the first step of the IncProf analysis (paper §V-A).
//! * [`CallGraphProfile`] — caller→callee arcs with call counts and child
//!   time, mirroring gprof's call-graph section (used by the paper's
//!   "future work" call-graph-aware site selection, which we implement in
//!   `incprof-core`).
//! * [`GmonData`] — a binary snapshot format in the spirit of `gmon.out`
//!   (tagged records, little-endian), with a writer and reader.
//! * [`report`] — a gprof-style **text report** writer and a parser for the
//!   flat-profile table, so the analysis pipeline can consume exactly the
//!   kind of artifact the paper's tooling consumed.
//! * [`ProfileSnapshot`] — one timestamped cumulative sample as produced by
//!   the IncProf collector once per interval.
//!
//! All container iteration orders are deterministic (BTree-based), which the
//! downstream clustering pipeline relies on for reproducible experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod cgparse;
pub mod cycles;
pub mod error;
pub mod flat;
pub mod function;
pub mod gmon;
pub mod report;
pub mod snapshot;

pub use callgraph::{ArcStats, CallGraphProfile};
pub use cycles::{cycle_membership, find_cycles, Cycle};
pub use error::ProfileError;
pub use flat::{FlatProfile, FlatRow, FunctionStats};
pub use function::{FunctionId, FunctionInfo, FunctionTable};
pub use gmon::GmonData;
pub use snapshot::ProfileSnapshot;

/// Nanoseconds, the time unit used throughout the profile data model.
///
/// gprof's own unit is "samples" scaled by the profiling clock rate; we keep
/// everything in integer nanoseconds so both the wall clock and the virtual
/// clock used by deterministic experiments share one representation.
pub type Nanos = u64;

/// Convert nanoseconds to (floating) seconds for report rendering.
#[inline]
pub fn ns_to_secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

/// Convert nanoseconds to (floating) milliseconds for report rendering.
#[inline]
pub fn ns_to_millis(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}
