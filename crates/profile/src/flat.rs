//! The gprof *flat profile*: per-function self time and call counts.
//!
//! This is the data the IncProf paper actually analyzes (§IV: "The analysis
//! presented here only uses the flat profile"). Each profile is *cumulative
//! since program start*, exactly like a `gmon.out` dump; the analysis first
//! subtracts consecutive dumps ([`FlatProfile::delta`]) to obtain
//! per-interval profiles.

use crate::error::ProfileError;
use crate::function::FunctionId;
use crate::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one function within a [`FlatProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionStats {
    /// Time spent in the function itself, excluding callees (gprof "self").
    pub self_time: Nanos,
    /// Number of completed calls to the function.
    pub calls: u64,
    /// Time spent in callees on behalf of this function (gprof "children").
    pub child_time: Nanos,
}

impl FunctionStats {
    /// Saturating element-wise subtraction with monotonicity checking.
    fn checked_sub(
        &self,
        earlier: &FunctionStats,
        id: FunctionId,
    ) -> Result<FunctionStats, ProfileError> {
        let sub = |a: u64, b: u64, counter: &'static str| {
            a.checked_sub(b)
                .ok_or(ProfileError::NonMonotonicDelta { id: id.0, counter })
        };
        Ok(FunctionStats {
            self_time: sub(self.self_time, earlier.self_time, "self_time")?,
            calls: sub(self.calls, earlier.calls, "calls")?,
            child_time: sub(self.child_time, earlier.child_time, "child_time")?,
        })
    }

    /// True if every counter is zero (such entries are dropped from deltas).
    pub fn is_zero(&self) -> bool {
        self.self_time == 0 && self.calls == 0 && self.child_time == 0
    }
}

/// One rendered row of a flat profile, in gprof report order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatRow {
    /// Percent of total self time ("% time" column).
    pub percent_time: f64,
    /// Running sum of self seconds ("cumulative seconds").
    pub cumulative_secs: f64,
    /// Self seconds for this function.
    pub self_secs: f64,
    /// Call count ("calls").
    pub calls: u64,
    /// Self milliseconds per call ("self ms/call"); 0 when calls == 0.
    pub self_ms_per_call: f64,
    /// Total (self+children) milliseconds per call ("total ms/call").
    pub total_ms_per_call: f64,
    /// Function id.
    pub id: FunctionId,
    /// Function name as rendered.
    pub name: String,
}

/// A flat profile: map from function to its counters.
///
/// May represent either a *cumulative* profile (monotonically growing over
/// the run) or an *interval* profile (the delta between two cumulative
/// samples). The two are distinguished only by how they were produced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatProfile {
    stats: BTreeMap<FunctionId, FunctionStats>,
}

impl FlatProfile {
    /// Create an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` additional completed calls to `id`.
    pub fn record_calls(&mut self, id: FunctionId, n: u64) {
        self.stats.entry(id).or_default().calls += n;
    }

    /// Attribute `ns` of additional self time to `id`.
    pub fn record_self_time(&mut self, id: FunctionId, ns: Nanos) {
        self.stats.entry(id).or_default().self_time += ns;
    }

    /// Attribute `ns` of additional child (callee) time to `id`.
    pub fn record_child_time(&mut self, id: FunctionId, ns: Nanos) {
        self.stats.entry(id).or_default().child_time += ns;
    }

    /// Overwrite the stats entry for `id` (used by decoders).
    pub fn set(&mut self, id: FunctionId, stats: FunctionStats) {
        self.stats.insert(id, stats);
    }

    /// Stats for `id`, zero if absent.
    pub fn get(&self, id: FunctionId) -> FunctionStats {
        self.stats.get(&id).copied().unwrap_or_default()
    }

    /// Whether any counter has been recorded for `id`.
    pub fn contains(&self, id: FunctionId) -> bool {
        self.stats.contains_key(&id)
    }

    /// Number of functions with at least one recorded counter.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True if no counters have been recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterate `(FunctionId, &FunctionStats)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionStats)> {
        self.stats.iter().map(|(&id, s)| (id, s))
    }

    /// Total self time across all functions.
    pub fn total_self_time(&self) -> Nanos {
        self.stats.values().map(|s| s.self_time).sum()
    }

    /// Total completed calls across all functions.
    pub fn total_calls(&self) -> u64 {
        self.stats.values().map(|s| s.calls).sum()
    }

    /// Merge `other` into `self` by element-wise addition.
    ///
    /// Used to aggregate per-thread profiles into a process profile, and
    /// per-rank profiles into job-level descriptive statistics (paper §VI).
    pub fn merge(&mut self, other: &FlatProfile) {
        for (&id, s) in &other.stats {
            let e = self.stats.entry(id).or_default();
            e.self_time += s.self_time;
            e.calls += s.calls;
            e.child_time += s.child_time;
        }
    }

    /// Compute the interval profile `self - earlier`.
    ///
    /// This is the first analysis step of the paper (§V-A): "the first step
    /// is to subtract the previous interval from each interval to create
    /// interval profile data". Functions whose counters are entirely zero in
    /// the delta are omitted. Errors if any counter regressed, which would
    /// mean the inputs were not successive cumulative samples of one run.
    pub fn delta(&self, earlier: &FlatProfile) -> Result<FlatProfile, ProfileError> {
        let mut out = FlatProfile::new();
        for (&id, s) in &self.stats {
            let prev = earlier.get(id);
            let d = s.checked_sub(&prev, id)?;
            if !d.is_zero() {
                out.stats.insert(id, d);
            }
        }
        // A function present earlier must still be present now (cumulative
        // profiles never lose entries).
        for (&id, s) in &earlier.stats {
            if !self.stats.contains_key(&id) && !s.is_zero() {
                return Err(ProfileError::NonMonotonicDelta {
                    id: id.0,
                    counter: "presence",
                });
            }
        }
        Ok(out)
    }

    /// Render rows in gprof flat-profile order: self time descending, then
    /// call count descending, then id ascending (gprof orders by self time
    /// then alphabetically; id order keeps us deterministic without names).
    pub fn rows<'a>(&self, names: impl Fn(FunctionId) -> &'a str) -> Vec<FlatRow> {
        let total = self.total_self_time();
        let mut entries: Vec<(FunctionId, FunctionStats)> =
            self.stats.iter().map(|(&id, &s)| (id, s)).collect();
        entries.sort_by(|a, b| {
            b.1.self_time
                .cmp(&a.1.self_time)
                .then(b.1.calls.cmp(&a.1.calls))
                .then(a.0.cmp(&b.0))
        });
        let mut cumulative = 0.0;
        entries
            .into_iter()
            .map(|(id, s)| {
                let self_secs = crate::ns_to_secs(s.self_time);
                cumulative += self_secs;
                let (self_ms_per_call, total_ms_per_call) = if s.calls > 0 {
                    (
                        crate::ns_to_millis(s.self_time) / s.calls as f64,
                        crate::ns_to_millis(s.self_time + s.child_time) / s.calls as f64,
                    )
                } else {
                    (0.0, 0.0)
                };
                FlatRow {
                    percent_time: if total > 0 {
                        100.0 * s.self_time as f64 / total as f64
                    } else {
                        0.0
                    },
                    cumulative_secs: cumulative,
                    self_secs,
                    calls: s.calls,
                    self_ms_per_call,
                    total_ms_per_call,
                    id,
                    name: names(id).to_string(),
                }
            })
            .collect()
    }
}

impl FromIterator<(FunctionId, FunctionStats)> for FlatProfile {
    fn from_iter<T: IntoIterator<Item = (FunctionId, FunctionStats)>>(iter: T) -> Self {
        FlatProfile {
            stats: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u32) -> FunctionId {
        FunctionId(n)
    }

    #[test]
    fn recording_accumulates() {
        let mut p = FlatProfile::new();
        p.record_calls(fid(0), 2);
        p.record_calls(fid(0), 3);
        p.record_self_time(fid(0), 100);
        p.record_self_time(fid(0), 50);
        p.record_child_time(fid(0), 7);
        let s = p.get(fid(0));
        assert_eq!(s.calls, 5);
        assert_eq!(s.self_time, 150);
        assert_eq!(s.child_time, 7);
    }

    #[test]
    fn totals() {
        let mut p = FlatProfile::new();
        p.record_self_time(fid(0), 100);
        p.record_self_time(fid(1), 250);
        p.record_calls(fid(0), 4);
        p.record_calls(fid(1), 6);
        assert_eq!(p.total_self_time(), 350);
        assert_eq!(p.total_calls(), 10);
    }

    #[test]
    fn delta_subtracts_and_drops_zero_entries() {
        let mut a = FlatProfile::new();
        a.record_self_time(fid(0), 100);
        a.record_calls(fid(0), 2);
        a.record_self_time(fid(1), 40);

        let mut b = a.clone();
        b.record_self_time(fid(0), 60); // now 160
        b.record_calls(fid(0), 1); // now 3
        b.record_self_time(fid(2), 5); // new function appears

        let d = b.delta(&a).unwrap();
        assert_eq!(
            d.get(fid(0)),
            FunctionStats {
                self_time: 60,
                calls: 1,
                child_time: 0
            }
        );
        assert!(
            !d.contains(fid(1)),
            "unchanged function must be dropped from delta"
        );
        assert_eq!(d.get(fid(2)).self_time, 5);
    }

    #[test]
    fn delta_of_profile_with_itself_is_empty() {
        let mut a = FlatProfile::new();
        a.record_self_time(fid(0), 9);
        a.record_calls(fid(1), 3);
        assert!(a.delta(&a).unwrap().is_empty());
    }

    #[test]
    fn delta_detects_regression() {
        let mut a = FlatProfile::new();
        a.record_self_time(fid(0), 100);
        let mut b = FlatProfile::new();
        b.record_self_time(fid(0), 50);
        let err = b.delta(&a).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::NonMonotonicDelta {
                id: 0,
                counter: "self_time"
            }
        ));
    }

    #[test]
    fn delta_detects_vanished_function() {
        let mut a = FlatProfile::new();
        a.record_self_time(fid(7), 10);
        let b = FlatProfile::new();
        let err = b.delta(&a).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::NonMonotonicDelta {
                id: 7,
                counter: "presence"
            }
        ));
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = FlatProfile::new();
        a.record_self_time(fid(0), 10);
        a.record_calls(fid(0), 1);
        let mut b = FlatProfile::new();
        b.record_self_time(fid(0), 5);
        b.record_self_time(fid(1), 3);
        a.merge(&b);
        assert_eq!(a.get(fid(0)).self_time, 15);
        assert_eq!(a.get(fid(0)).calls, 1);
        assert_eq!(a.get(fid(1)).self_time, 3);
    }

    #[test]
    fn rows_are_ordered_by_self_time_desc() {
        let mut p = FlatProfile::new();
        p.record_self_time(fid(0), 100);
        p.record_self_time(fid(1), 300);
        p.record_self_time(fid(2), 200);
        let rows = p.rows(|id| match id.0 {
            0 => "a",
            1 => "b",
            _ => "c",
        });
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
        // cumulative seconds are a running sum
        assert!(rows[0].cumulative_secs <= rows[1].cumulative_secs);
        assert!(rows[1].cumulative_secs <= rows[2].cumulative_secs);
        // percentages sum to 100
        let pct: f64 = rows.iter().map(|r| r.percent_time).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rows_per_call_columns() {
        let mut p = FlatProfile::new();
        p.record_self_time(fid(0), 2_000_000); // 2ms over 4 calls = 0.5 ms/call
        p.record_calls(fid(0), 4);
        p.record_child_time(fid(0), 2_000_000); // total 4ms over 4 calls = 1 ms/call
        p.record_self_time(fid(1), 1_000_000); // zero calls -> 0 ms/call
        let rows = p.rows(|_| "f");
        let r0 = rows.iter().find(|r| r.id == fid(0)).unwrap();
        assert!((r0.self_ms_per_call - 0.5).abs() < 1e-12);
        assert!((r0.total_ms_per_call - 1.0).abs() < 1e-12);
        let r1 = rows.iter().find(|r| r.id == fid(1)).unwrap();
        assert_eq!(r1.self_ms_per_call, 0.0);
        assert_eq!(r1.calls, 0);
    }

    #[test]
    fn empty_profile_rows_and_totals() {
        let p = FlatProfile::new();
        assert_eq!(p.total_self_time(), 0);
        assert!(p.rows(|_| "x").is_empty());
    }
}
