//! gprof-style textual reports: writer and flat-profile parser.
//!
//! The paper's pipeline does not decode `gmon.out` binaries directly:
//! "we found it easier to just invoke the gprof command line tool to convert
//! the data into standard gprof textual reports, and then process those"
//! (§IV). We therefore provide a faithful flat-profile report writer *and*
//! the parser the analysis uses to read such reports back, so the IncProf
//! data path mirrors the paper's exactly: binary snapshot → text report →
//! parsed per-interval rows.

use crate::error::ProfileError;
use crate::flat::{FlatProfile, FlatRow, FunctionStats};
use crate::function::FunctionTable;
use crate::gmon::GmonData;
use std::fmt::Write as _;

/// Header lines reproduced from real gprof output.
const FLAT_HEADER: &str = "Flat profile:\n\n\
Each sample counts as 0.01 seconds.\n\
  %   cumulative   self              self     total           \n\
 time   seconds   seconds    calls  ms/call  ms/call  name    \n";

/// Render the flat-profile section of a gprof report.
///
/// Output is column-compatible with GNU gprof's flat profile table
/// (numeric columns are fixed-width; the name column is last and may
/// contain spaces in C++-style names, which the parser handles).
pub fn write_flat_profile(flat: &FlatProfile, table: &FunctionTable) -> String {
    let rows = flat.rows(|id| table.name(id));
    let mut out = String::with_capacity(FLAT_HEADER.len() + rows.len() * 80);
    out.push_str(FLAT_HEADER);
    for r in &rows {
        // gprof prints an empty calls column for functions never observed
        // entering (sampling-only hits). We print 0 calls the same way.
        if r.calls > 0 {
            let _ = writeln!(
                out,
                "{:6.2} {:10.2} {:8.2} {:8} {:8.2} {:8.2}  {}",
                r.percent_time,
                r.cumulative_secs,
                r.self_secs,
                r.calls,
                r.self_ms_per_call,
                r.total_ms_per_call,
                r.name
            );
        } else {
            let _ = writeln!(
                out,
                "{:6.2} {:10.2} {:8.2} {:>8} {:>8} {:>8}  {}",
                r.percent_time, r.cumulative_secs, r.self_secs, "", "", "", r.name
            );
        }
    }
    out
}

/// Render the call-graph section (gprof's second table), in a simplified
/// but recognizable layout: one primary line per function with its callers
/// indented above and callees indented below.
pub fn write_call_graph(gmon: &GmonData) -> String {
    let mut out = String::new();
    out.push_str("\t\t     Call graph\n\n");
    out.push_str("index  self  children    called     name\n");
    let rows = gmon.flat.rows(|id| gmon.functions.name(id));
    for (idx, r) in rows.iter().enumerate() {
        // Caller lines.
        for caller in gmon.callgraph.callers_of(r.id) {
            let arc = gmon.callgraph.get(caller, r.id);
            let _ = writeln!(
                out,
                "            {:>10.2} {:>10}/{:<10}    {}",
                crate::ns_to_secs(arc.child_time),
                arc.count,
                gmon.flat.get(r.id).calls,
                gmon.functions.name(caller)
            );
        }
        // Primary line.
        let stats = gmon.flat.get(r.id);
        let _ = writeln!(
            out,
            "[{:<4}] {:>6.2} {:>9.2} {:>10}        {} [{}]",
            idx + 1,
            r.self_secs,
            crate::ns_to_secs(stats.child_time),
            stats.calls,
            r.name,
            idx + 1
        );
        // Callee lines.
        for callee in gmon.callgraph.callees_of(r.id) {
            let arc = gmon.callgraph.get(r.id, callee);
            let _ = writeln!(
                out,
                "            {:>10.2} {:>10}/{:<10}        {}",
                crate::ns_to_secs(arc.child_time),
                arc.count,
                gmon.flat.get(callee).calls,
                gmon.functions.name(callee)
            );
        }
        out.push_str("-----------------------------------------------\n");
    }
    out
}

/// Render a complete report (flat profile + call graph), as `gprof` would.
pub fn write_report(gmon: &GmonData) -> String {
    let mut out = write_flat_profile(&gmon.flat, &gmon.functions);
    out.push('\n');
    out.push_str(&write_call_graph(gmon));
    out
}

/// One parsed flat-profile row: the subset of columns the IncProf analysis
/// consumes (name, self seconds, calls), plus the rest for completeness.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFlatRow {
    /// "% time" column.
    pub percent_time: f64,
    /// "cumulative seconds" column.
    pub cumulative_secs: f64,
    /// "self seconds" column — the feature the paper clusters on.
    pub self_secs: f64,
    /// "calls" column; `None` when gprof printed it blank.
    pub calls: Option<u64>,
    /// Function name (may contain spaces / template brackets).
    pub name: String,
}

/// Parse the flat-profile section of a gprof text report.
///
/// Accepts both our writer's output and the general shape of GNU gprof
/// output: skips everything up to the `% time ... name` header, then reads
/// rows until a blank line or end of input.
pub fn parse_flat_profile(text: &str) -> Result<Vec<ParsedFlatRow>, ProfileError> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if !in_table {
            let t = line.trim_start();
            if t.starts_with("time") && t.contains("seconds") && t.contains("name") {
                in_table = true;
            }
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break; // end of flat table
        }
        rows.push(parse_flat_row(trimmed, lineno)?);
    }
    Ok(rows)
}

fn parse_flat_row(line: &str, lineno: usize) -> Result<ParsedFlatRow, ProfileError> {
    let err = |message: String| ProfileError::ReportParse {
        line: lineno,
        message,
    };
    let mut fields = line.split_whitespace();
    let percent_time: f64 = fields
        .next()
        .ok_or_else(|| err("missing % time".into()))?
        .parse()
        .map_err(|e| err(format!("bad % time: {e}")))?;
    let cumulative_secs: f64 = fields
        .next()
        .ok_or_else(|| err("missing cumulative seconds".into()))?
        .parse()
        .map_err(|e| err(format!("bad cumulative seconds: {e}")))?;
    let self_secs: f64 = fields
        .next()
        .ok_or_else(|| err("missing self seconds".into()))?
        .parse()
        .map_err(|e| err(format!("bad self seconds: {e}")))?;
    // Remaining fields: either "calls self_ms total_ms name..." or just
    // "name..." when the numeric columns were blank.
    let rest: Vec<&str> = fields.collect();
    if rest.is_empty() {
        return Err(err("missing function name".into()));
    }
    // If the next three tokens are all numeric, they are the calls and
    // per-call columns. gprof guarantees numeric columns never contain
    // non-numeric tokens, and function names never *start* with a bare
    // number in C/C++/Fortran identifiers.
    let numeric = |s: &str| s.parse::<f64>().is_ok();
    if rest.len() >= 4 && numeric(rest[0]) && numeric(rest[1]) && numeric(rest[2]) {
        let calls: u64 = rest[0]
            .parse()
            .map_err(|e| err(format!("bad calls column: {e}")))?;
        let name = rest[3..].join(" ");
        Ok(ParsedFlatRow {
            percent_time,
            cumulative_secs,
            self_secs,
            calls: Some(calls),
            name,
        })
    } else {
        Ok(ParsedFlatRow {
            percent_time,
            cumulative_secs,
            self_secs,
            calls: None,
            name: rest.join(" "),
        })
    }
}

/// Rebuild a [`FlatProfile`] from parsed report rows, registering function
/// names in `table` as needed.
///
/// Report rendering rounds times to 10 ms resolution (gprof's own
/// granularity), so the reconstruction is lossy in exactly the way the
/// paper's pipeline was.
pub fn profile_from_rows(rows: &[ParsedFlatRow], table: &mut FunctionTable) -> FlatProfile {
    let mut flat = FlatProfile::new();
    for r in rows {
        let id = table.register(r.name.clone());
        flat.set(
            id,
            FunctionStats {
                self_time: (r.self_secs * 1e9).round() as u64,
                calls: r.calls.unwrap_or(0),
                child_time: 0,
            },
        );
    }
    flat
}

/// Convenience: format rows (already computed by [`FlatProfile::rows`]) as a
/// compact aligned table for logs and experiment output.
pub fn format_rows_compact(rows: &[FlatRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>10}  name",
        "%time", "self(s)", "calls"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>7.2} {:>10.4} {:>10}  {}",
            r.percent_time, r.self_secs, r.calls, r.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionId;

    fn build_profile() -> (FlatProfile, FunctionTable) {
        let mut table = FunctionTable::new();
        let a = table.register("run_bfs");
        let b = table.register("validate_bfs_result");
        let c = table.register("PairLJCut::compute(int, int)");
        let mut flat = FlatProfile::new();
        flat.set(
            a,
            FunctionStats {
                self_time: 2_000_000_000,
                calls: 64,
                child_time: 0,
            },
        );
        flat.set(
            b,
            FunctionStats {
                self_time: 5_500_000_000,
                calls: 0,
                child_time: 0,
            },
        );
        flat.set(
            c,
            FunctionStats {
                self_time: 1_250_000_000,
                calls: 1000,
                child_time: 500_000_000,
            },
        );
        (flat, table)
    }

    #[test]
    fn report_contains_gprof_header() {
        let (flat, table) = build_profile();
        let text = write_flat_profile(&flat, &table);
        assert!(text.starts_with("Flat profile:"));
        assert!(text.contains("Each sample counts as 0.01 seconds."));
        assert!(text.contains("cumulative"));
        assert!(text.contains("ms/call"));
    }

    #[test]
    fn report_rows_roundtrip_through_parser() {
        let (flat, table) = build_profile();
        let text = write_flat_profile(&flat, &table);
        let rows = parse_flat_profile(&text).unwrap();
        assert_eq!(rows.len(), 3);
        // Sorted by self time: validate (5.5s), run_bfs (2s), PairLJ (1.25s)
        assert_eq!(rows[0].name, "validate_bfs_result");
        assert!((rows[0].self_secs - 5.5).abs() < 0.01);
        assert_eq!(
            rows[0].calls, None,
            "zero-call row renders blank calls column"
        );
        assert_eq!(rows[1].name, "run_bfs");
        assert_eq!(rows[1].calls, Some(64));
        assert_eq!(rows[2].name, "PairLJCut::compute(int, int)");
        assert_eq!(rows[2].calls, Some(1000));
    }

    #[test]
    fn names_with_spaces_survive() {
        let (flat, table) = build_profile();
        let text = write_flat_profile(&flat, &table);
        let rows = parse_flat_profile(&text).unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name == "PairLJCut::compute(int, int)"));
    }

    #[test]
    fn profile_from_rows_reconstructs_within_rounding() {
        let (flat, table) = build_profile();
        let text = write_flat_profile(&flat, &table);
        let rows = parse_flat_profile(&text).unwrap();
        let mut table2 = FunctionTable::new();
        let back = profile_from_rows(&rows, &mut table2);
        let id = table2.id_of("run_bfs").unwrap();
        let orig = flat.get(table.id_of("run_bfs").unwrap());
        let diff = back.get(id).self_time.abs_diff(orig.self_time);
        assert!(diff < 10_000_000, "within 10ms rounding, got diff {diff}");
        assert_eq!(back.get(id).calls, 64);
    }

    #[test]
    fn parse_real_gprof_sample() {
        // Taken (abbreviated) from the gprof manual's example output.
        let text = "\
Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
 33.34      0.02     0.02     7208     0.00     0.00  open
 16.67      0.03     0.01      244     0.04     0.12  offtime
 16.67      0.04     0.01        8     1.25     1.25  memccpy
  0.00      0.06     0.00      236     0.00     0.00  tzset
";
        let rows = parse_flat_profile(text).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "open");
        assert_eq!(rows[0].calls, Some(7208));
        assert!((rows[1].self_secs - 0.01).abs() < 1e-9);
        assert_eq!(rows[3].name, "tzset");
    }

    #[test]
    fn parse_rejects_garbage_rows() {
        let text = "\
 time   seconds   seconds    calls  ms/call  ms/call  name
 not_a_number 0.02 0.02 1 0.0 0.0 f
";
        assert!(parse_flat_profile(text).is_err());
    }

    #[test]
    fn parse_empty_table() {
        let text = " time   seconds   seconds    calls  ms/call  ms/call  name\n\n";
        assert!(parse_flat_profile(text).unwrap().is_empty());
        assert!(parse_flat_profile("no header at all").unwrap().is_empty());
    }

    #[test]
    fn call_graph_section_renders() {
        let (flat, table) = build_profile();
        let mut gmon = GmonData {
            flat,
            functions: table,
            ..Default::default()
        };
        let a = gmon.functions.id_of("run_bfs").unwrap();
        let b = gmon.functions.id_of("validate_bfs_result").unwrap();
        gmon.callgraph.record_arcs(a, b, 12);
        let text = write_call_graph(&gmon);
        assert!(text.contains("Call graph"));
        assert!(text.contains("run_bfs"));
        assert!(text.contains("12/"));
    }

    #[test]
    fn full_report_has_both_sections() {
        let (flat, table) = build_profile();
        let gmon = GmonData {
            flat,
            functions: table,
            ..Default::default()
        };
        let text = write_report(&gmon);
        assert!(text.contains("Flat profile:"));
        assert!(text.contains("Call graph"));
    }

    #[test]
    fn compact_format_includes_all_rows() {
        let (flat, table) = build_profile();
        let rows = flat.rows(|id| table.name(id));
        let text = format_rows_compact(&rows);
        assert_eq!(text.lines().count(), 4); // header + 3 rows
    }

    #[test]
    fn zero_time_profile_renders_zero_percent() {
        let mut table = FunctionTable::new();
        let a = table.register("noop");
        let mut flat = FlatProfile::new();
        flat.set(
            a,
            FunctionStats {
                self_time: 0,
                calls: 5,
                child_time: 0,
            },
        );
        let text = write_flat_profile(&flat, &table);
        let rows = parse_flat_profile(&text).unwrap();
        assert_eq!(rows[0].percent_time, 0.0);
        assert_eq!(rows[0].calls, Some(5));
        let _ = FunctionId(0); // silence unused import in some cfgs
    }
}
