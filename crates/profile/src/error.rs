//! Error types for the profile data model.

use std::fmt;

/// Errors produced while encoding, decoding, or transforming profile data.
#[derive(Debug)]
pub enum ProfileError {
    /// The gmon byte stream did not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found at the start of the stream.
        found: [u8; 4],
    },
    /// The gmon byte stream declared an unsupported format version.
    UnsupportedVersion {
        /// The version number found in the stream header.
        found: u32,
    },
    /// The byte stream ended in the middle of a record.
    Truncated {
        /// Human-readable description of what was being decoded.
        context: &'static str,
    },
    /// An unknown record tag was encountered while decoding.
    UnknownTag {
        /// The tag byte found.
        tag: u8,
    },
    /// A record referenced a [`crate::FunctionId`] that is not present in
    /// the embedded function table.
    UnknownFunction {
        /// The raw id that failed to resolve.
        id: u32,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8 {
        /// Human-readable description of the offending field.
        context: &'static str,
    },
    /// A delta was requested between profiles where the supposedly-earlier
    /// cumulative profile exceeds the later one (cumulative profiles must be
    /// monotonically non-decreasing).
    NonMonotonicDelta {
        /// The function whose counters regressed.
        id: u32,
        /// The offending counter ("self_time" / "calls" / "child_time").
        counter: &'static str,
    },
    /// A text report could not be parsed.
    ReportParse {
        /// 1-based line number within the report.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Underlying I/O failure while reading or writing profile artifacts.
    Io(std::io::Error),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::BadMagic { found } => {
                write!(f, "bad gmon magic: expected \"gmon\", found {found:?}")
            }
            ProfileError::UnsupportedVersion { found } => {
                write!(f, "unsupported gmon format version {found}")
            }
            ProfileError::Truncated { context } => {
                write!(f, "gmon stream truncated while decoding {context}")
            }
            ProfileError::UnknownTag { tag } => write!(f, "unknown gmon record tag {tag:#x}"),
            ProfileError::UnknownFunction { id } => {
                write!(f, "record references unknown function id {id}")
            }
            ProfileError::InvalidUtf8 { context } => {
                write!(f, "invalid UTF-8 in {context}")
            }
            ProfileError::NonMonotonicDelta { id, counter } => write!(
                f,
                "non-monotonic cumulative profile: function id {id} counter {counter} decreased"
            ),
            ProfileError::ReportParse { line, message } => {
                write!(f, "report parse error at line {line}: {message}")
            }
            ProfileError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> Self {
        ProfileError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(ProfileError, &str)> = vec![
            (ProfileError::BadMagic { found: *b"abcd" }, "bad gmon magic"),
            (ProfileError::UnsupportedVersion { found: 99 }, "version 99"),
            (
                ProfileError::Truncated {
                    context: "arc record",
                },
                "arc record",
            ),
            (ProfileError::UnknownTag { tag: 0xAB }, "0xab"),
            (ProfileError::UnknownFunction { id: 7 }, "id 7"),
            (
                ProfileError::NonMonotonicDelta {
                    id: 3,
                    counter: "calls",
                },
                "calls",
            ),
            (
                ProfileError::ReportParse {
                    line: 12,
                    message: "oops".into(),
                },
                "line 12",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::other("disk on fire");
        let err: ProfileError = io.into();
        assert!(err.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
