//! The gprof *call graph* profile: caller→callee arcs.
//!
//! gprof's second table relates function performance to calling contexts.
//! The IncProf paper's published analysis only consumes the flat profile,
//! but notes "ongoing experiments with using the call-graph profile data to
//! improve the results" (§IV) and suggests call-graph-aware site selection
//! as future work (§VI-B). We record the arcs so `incprof-core` can
//! implement that extension.

use crate::error::ProfileError;
use crate::function::FunctionId;
use crate::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Counters for one caller→callee arc.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArcStats {
    /// Number of calls along this arc.
    pub count: u64,
    /// Time spent in the callee (and its children) on behalf of the caller.
    pub child_time: Nanos,
}

impl ArcStats {
    fn is_zero(&self) -> bool {
        self.count == 0 && self.child_time == 0
    }
}

/// Call-graph profile: map from `(caller, callee)` to arc counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallGraphProfile {
    // Serialized as a sequence of (caller, callee, stats) triples because
    // JSON map keys must be strings.
    #[serde(with = "arc_serde")]
    arcs: BTreeMap<(FunctionId, FunctionId), ArcStats>,
}

mod arc_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(FunctionId, FunctionId), ArcStats>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        s.collect_seq(map.iter().map(|(&(from, to), &st)| (from, to, st)))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<BTreeMap<(FunctionId, FunctionId), ArcStats>, D::Error> {
        let triples: Vec<(FunctionId, FunctionId, ArcStats)> = serde::Deserialize::deserialize(d)?;
        Ok(triples
            .into_iter()
            .map(|(from, to, st)| ((from, to), st))
            .collect())
    }
}

impl CallGraphProfile {
    /// Create an empty call graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call along `caller -> callee`.
    pub fn record_arc(&mut self, caller: FunctionId, callee: FunctionId) {
        self.arcs.entry((caller, callee)).or_default().count += 1;
    }

    /// Record `n` calls along `caller -> callee`.
    pub fn record_arcs(&mut self, caller: FunctionId, callee: FunctionId, n: u64) {
        self.arcs.entry((caller, callee)).or_default().count += n;
    }

    /// Attribute `ns` of callee time to the arc `caller -> callee`.
    pub fn record_arc_time(&mut self, caller: FunctionId, callee: FunctionId, ns: Nanos) {
        self.arcs.entry((caller, callee)).or_default().child_time += ns;
    }

    /// Overwrite one arc (used by decoders).
    pub fn set(&mut self, caller: FunctionId, callee: FunctionId, stats: ArcStats) {
        self.arcs.insert((caller, callee), stats);
    }

    /// Stats for one arc, zero if absent.
    pub fn get(&self, caller: FunctionId, callee: FunctionId) -> ArcStats {
        self.arcs
            .get(&(caller, callee))
            .copied()
            .unwrap_or_default()
    }

    /// Number of distinct arcs recorded.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True if no arcs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Iterate `((caller, callee), &ArcStats)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = ((FunctionId, FunctionId), &ArcStats)> {
        self.arcs.iter().map(|(&k, v)| (k, v))
    }

    /// All direct callers of `callee`, in id order.
    pub fn callers_of(&self, callee: FunctionId) -> Vec<FunctionId> {
        self.arcs
            .keys()
            .filter(|&&(_, to)| to == callee)
            .map(|&(from, _)| from)
            .collect()
    }

    /// All direct callees of `caller`, in id order.
    pub fn callees_of(&self, caller: FunctionId) -> Vec<FunctionId> {
        self.arcs
            .range((caller, FunctionId(0))..=(caller, FunctionId(u32::MAX)))
            .map(|(&(_, to), _)| to)
            .collect()
    }

    /// Merge `other` into `self` by element-wise addition.
    pub fn merge(&mut self, other: &CallGraphProfile) {
        for (&k, s) in &other.arcs {
            let e = self.arcs.entry(k).or_default();
            e.count += s.count;
            e.child_time += s.child_time;
        }
    }

    /// Interval call graph: `self - earlier` (cumulative semantics, like
    /// [`crate::FlatProfile::delta`]).
    pub fn delta(&self, earlier: &CallGraphProfile) -> Result<CallGraphProfile, ProfileError> {
        let mut out = CallGraphProfile::new();
        for (&k, s) in &self.arcs {
            let prev = earlier.arcs.get(&k).copied().unwrap_or_default();
            let count = s
                .count
                .checked_sub(prev.count)
                .ok_or(ProfileError::NonMonotonicDelta {
                    id: k.0 .0,
                    counter: "arc count",
                })?;
            let child_time = s.child_time.checked_sub(prev.child_time).ok_or(
                ProfileError::NonMonotonicDelta {
                    id: k.0 .0,
                    counter: "arc child_time",
                },
            )?;
            let d = ArcStats { count, child_time };
            if !d.is_zero() {
                out.arcs.insert(k, d);
            }
        }
        for (&k, s) in &earlier.arcs {
            if !self.arcs.contains_key(&k) && !s.is_zero() {
                return Err(ProfileError::NonMonotonicDelta {
                    id: k.0 .0,
                    counter: "arc presence",
                });
            }
        }
        Ok(out)
    }

    /// Transitive ancestors of `f` (every function from which `f` is
    /// reachable along call arcs), excluding `f` itself unless it sits on a
    /// cycle through itself.
    pub fn ancestors_of(&self, f: FunctionId) -> BTreeSet<FunctionId> {
        // Reverse-reachability BFS over the arc set.
        let mut seen = BTreeSet::new();
        let mut frontier = vec![f];
        while let Some(cur) = frontier.pop() {
            for caller in self.callers_of(cur) {
                if seen.insert(caller) {
                    frontier.push(caller);
                }
            }
        }
        seen
    }

    /// Depth of `f` from any root (function with no recorded caller):
    /// the minimum number of arcs from a root to `f`. Roots have depth 0.
    /// Returns `None` when `f` is unreachable from any root (e.g. only on a
    /// cycle) or entirely absent from the graph.
    pub fn depth_from_roots(&self, f: FunctionId) -> Option<usize> {
        use std::collections::VecDeque;
        let mut nodes: BTreeSet<FunctionId> = BTreeSet::new();
        for &(from, to) in self.arcs.keys() {
            nodes.insert(from);
            nodes.insert(to);
        }
        if !nodes.contains(&f) {
            return None;
        }
        let roots: Vec<FunctionId> = nodes
            .iter()
            .copied()
            .filter(|&n| self.callers_of(n).is_empty())
            .collect();
        let mut depth: BTreeMap<FunctionId, usize> = BTreeMap::new();
        let mut q: VecDeque<FunctionId> = VecDeque::new();
        for r in roots {
            depth.insert(r, 0);
            q.push_back(r);
        }
        while let Some(cur) = q.pop_front() {
            let d = depth[&cur];
            for callee in self.callees_of(cur) {
                if let std::collections::btree_map::Entry::Vacant(e) = depth.entry(callee) {
                    e.insert(d + 1);
                    q.push_back(callee);
                }
            }
        }
        depth.get(&f).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u32) -> FunctionId {
        FunctionId(n)
    }

    #[test]
    fn arcs_accumulate() {
        let mut g = CallGraphProfile::new();
        g.record_arc(fid(0), fid(1));
        g.record_arcs(fid(0), fid(1), 4);
        g.record_arc_time(fid(0), fid(1), 99);
        assert_eq!(
            g.get(fid(0), fid(1)),
            ArcStats {
                count: 5,
                child_time: 99
            }
        );
        assert_eq!(g.get(fid(1), fid(0)), ArcStats::default());
    }

    #[test]
    fn callers_and_callees() {
        let mut g = CallGraphProfile::new();
        g.record_arc(fid(0), fid(2));
        g.record_arc(fid(1), fid(2));
        g.record_arc(fid(2), fid(3));
        g.record_arc(fid(2), fid(4));
        assert_eq!(g.callers_of(fid(2)), vec![fid(0), fid(1)]);
        assert_eq!(g.callees_of(fid(2)), vec![fid(3), fid(4)]);
        assert!(g.callers_of(fid(0)).is_empty());
        assert!(g.callees_of(fid(4)).is_empty());
    }

    #[test]
    fn delta_semantics_match_flat_profile() {
        let mut a = CallGraphProfile::new();
        a.record_arcs(fid(0), fid(1), 3);
        let mut b = a.clone();
        b.record_arcs(fid(0), fid(1), 2);
        b.record_arc(fid(1), fid(2));
        let d = b.delta(&a).unwrap();
        assert_eq!(d.get(fid(0), fid(1)).count, 2);
        assert_eq!(d.get(fid(1), fid(2)).count, 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn delta_detects_regression() {
        let mut a = CallGraphProfile::new();
        a.record_arcs(fid(0), fid(1), 5);
        let mut b = CallGraphProfile::new();
        b.record_arcs(fid(0), fid(1), 2);
        assert!(b.delta(&a).is_err());
    }

    #[test]
    fn merge_adds() {
        let mut a = CallGraphProfile::new();
        a.record_arcs(fid(0), fid(1), 1);
        let mut b = CallGraphProfile::new();
        b.record_arcs(fid(0), fid(1), 2);
        b.record_arcs(fid(2), fid(3), 7);
        a.merge(&b);
        assert_eq!(a.get(fid(0), fid(1)).count, 3);
        assert_eq!(a.get(fid(2), fid(3)).count, 7);
    }

    #[test]
    fn ancestors_walk_transitively() {
        let mut g = CallGraphProfile::new();
        // main -> a -> b -> c ; helper -> b
        g.record_arc(fid(0), fid(1));
        g.record_arc(fid(1), fid(2));
        g.record_arc(fid(2), fid(3));
        g.record_arc(fid(9), fid(2));
        let anc = g.ancestors_of(fid(3));
        assert!(anc.contains(&fid(2)));
        assert!(anc.contains(&fid(1)));
        assert!(anc.contains(&fid(0)));
        assert!(anc.contains(&fid(9)));
        assert!(!anc.contains(&fid(3)));
    }

    #[test]
    fn ancestors_handle_cycles() {
        let mut g = CallGraphProfile::new();
        g.record_arc(fid(0), fid(1));
        g.record_arc(fid(1), fid(0)); // mutual recursion
        let anc = g.ancestors_of(fid(0));
        assert!(anc.contains(&fid(1)));
        assert!(anc.contains(&fid(0))); // reachable through the cycle
    }

    #[test]
    fn depth_from_roots() {
        let mut g = CallGraphProfile::new();
        g.record_arc(fid(0), fid(1)); // root=0
        g.record_arc(fid(1), fid(2));
        g.record_arc(fid(0), fid(2)); // shortcut makes depth(2)=1
        assert_eq!(g.depth_from_roots(fid(0)), Some(0));
        assert_eq!(g.depth_from_roots(fid(1)), Some(1));
        assert_eq!(g.depth_from_roots(fid(2)), Some(1));
        assert_eq!(g.depth_from_roots(fid(77)), None);
    }
}
