//! Timestamped cumulative profile snapshots.
//!
//! The IncProf collector produces one [`ProfileSnapshot`] per interval —
//! the in-memory analogue of each renamed `gmon.out.N` file in the paper's
//! Fig. 1 data-collection loop.

use crate::callgraph::CallGraphProfile;
use crate::flat::FlatProfile;
use crate::function::FunctionTable;
use crate::gmon::GmonData;
use serde::{Deserialize, Serialize};

/// One cumulative profile snapshot, tagged with its sample index and the
/// time at which it was taken.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Monotone index assigned by the collector: 0, 1, 2, ...
    pub sample_index: u64,
    /// Clock reading (ns) when the snapshot was taken.
    pub timestamp_ns: u64,
    /// Cumulative flat profile at that instant.
    pub flat: FlatProfile,
    /// Cumulative call-graph profile at that instant.
    pub callgraph: CallGraphProfile,
}

impl ProfileSnapshot {
    /// Package this snapshot with a function table into an encodable
    /// [`GmonData`] record.
    pub fn to_gmon(&self, functions: &FunctionTable) -> GmonData {
        GmonData {
            sample_index: self.sample_index,
            timestamp_ns: self.timestamp_ns,
            functions: functions.clone(),
            flat: self.flat.clone(),
            callgraph: self.callgraph.clone(),
        }
    }

    /// Extract the snapshot part of a decoded [`GmonData`].
    pub fn from_gmon(gmon: &GmonData) -> ProfileSnapshot {
        ProfileSnapshot {
            sample_index: gmon.sample_index,
            timestamp_ns: gmon.timestamp_ns,
            flat: gmon.flat.clone(),
            callgraph: gmon.callgraph.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FunctionStats;
    use crate::function::FunctionId;

    #[test]
    fn gmon_roundtrip_via_snapshot() {
        let mut table = FunctionTable::new();
        let a = table.register("f");
        let mut snap = ProfileSnapshot {
            sample_index: 3,
            timestamp_ns: 42,
            ..Default::default()
        };
        snap.flat.set(
            a,
            FunctionStats {
                self_time: 10,
                calls: 1,
                child_time: 0,
            },
        );
        snap.callgraph.record_arc(a, a);

        let gmon = snap.to_gmon(&table);
        let decoded = GmonData::decode(&gmon.encode()).unwrap();
        let back = ProfileSnapshot::from_gmon(&decoded);
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let mut snap = ProfileSnapshot::default();
        snap.flat.set(
            FunctionId(0),
            FunctionStats {
                self_time: 5,
                calls: 2,
                child_time: 1,
            },
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProfileSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
