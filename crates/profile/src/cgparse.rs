//! Parser for the call-graph section of a gprof-style text report.
//!
//! Completes the report round trip: [`crate::report::write_call_graph`]'s
//! output (and the same general shape of GNU gprof's second table) parses
//! back into per-function entries with caller and callee arcs, from which
//! a [`CallGraphProfile`] can be rebuilt. The published IncProf analysis
//! only consumes the flat profile, but the paper reports "ongoing
//! experiments with using the call-graph profile data" (§IV) — this
//! parser is what lets those experiments run from the same textual
//! artifacts as everything else.

use crate::callgraph::CallGraphProfile;
use crate::error::ProfileError;
use crate::function::FunctionTable;

/// One arc line (caller or callee) in a call-graph entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArc {
    /// The other function's name.
    pub name: String,
    /// Seconds attributed along the arc.
    pub child_secs: f64,
    /// Calls along the arc.
    pub count: u64,
    /// The callee's total call count (the denominator of `count/total`).
    pub total_calls: u64,
}

/// One primary entry of the call-graph table.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCgEntry {
    /// gprof index (1-based).
    pub index: usize,
    /// Function name.
    pub name: String,
    /// Self seconds.
    pub self_secs: f64,
    /// Children seconds.
    pub child_secs: f64,
    /// Total calls.
    pub calls: u64,
    /// Arcs from callers (lines above the primary line).
    pub callers: Vec<ParsedArc>,
    /// Arcs to callees (lines below the primary line).
    pub callees: Vec<ParsedArc>,
}

/// Parse the call-graph section of a report.
///
/// Sections are delimited by dashed separator lines; within a section the
/// primary line starts with `[index]`, caller arcs precede it and callee
/// arcs follow it.
pub fn parse_call_graph(text: &str) -> Result<Vec<ParsedCgEntry>, ProfileError> {
    // Skip ahead to the call-graph header.
    let mut lines = text.lines().enumerate().peekable();
    let mut in_section = false;
    for (_, line) in lines.by_ref() {
        if line.contains("Call graph") {
            in_section = true;
            break;
        }
    }
    if !in_section {
        return Ok(Vec::new());
    }

    let mut entries = Vec::new();
    let mut block: Vec<(usize, &str)> = Vec::new();
    for (lineno, line) in lines {
        let trimmed = line.trim();
        if trimmed.starts_with("---") {
            if !block.is_empty() {
                entries.push(parse_block(&block)?);
                block.clear();
            }
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("index") {
            continue;
        }
        block.push((lineno + 1, line));
    }
    if !block.is_empty() {
        entries.push(parse_block(&block)?);
    }
    Ok(entries)
}

fn parse_block(block: &[(usize, &str)]) -> Result<ParsedCgEntry, ProfileError> {
    let primary_pos = block
        .iter()
        .position(|(_, l)| l.trim_start().starts_with('['))
        .ok_or_else(|| ProfileError::ReportParse {
            line: block.first().map(|(n, _)| *n).unwrap_or(0),
            message: "call-graph block without a primary [index] line".into(),
        })?;
    let (lineno, primary) = block[primary_pos];
    let entry = parse_primary(primary, lineno)?;
    let mut callers = Vec::new();
    for &(n, l) in &block[..primary_pos] {
        callers.push(parse_arc(l, n)?);
    }
    let mut callees = Vec::new();
    for &(n, l) in &block[primary_pos + 1..] {
        callees.push(parse_arc(l, n)?);
    }
    Ok(ParsedCgEntry {
        callers,
        callees,
        ..entry
    })
}

/// Primary line: `[idx ] self children called        name [idx]`.
fn parse_primary(line: &str, lineno: usize) -> Result<ParsedCgEntry, ProfileError> {
    let err = |message: String| ProfileError::ReportParse {
        line: lineno,
        message,
    };
    let rest = line.trim_start();
    let close = rest
        .find(']')
        .ok_or_else(|| err("missing ] in primary line".into()))?;
    let index: usize = rest[1..close]
        .trim()
        .parse()
        .map_err(|e| err(format!("bad index: {e}")))?;
    let mut fields = rest[close + 1..].split_whitespace();
    let self_secs: f64 = fields
        .next()
        .ok_or_else(|| err("missing self seconds".into()))?
        .parse()
        .map_err(|e| err(format!("bad self seconds: {e}")))?;
    let child_secs: f64 = fields
        .next()
        .ok_or_else(|| err("missing children seconds".into()))?
        .parse()
        .map_err(|e| err(format!("bad children seconds: {e}")))?;
    let calls: u64 = fields
        .next()
        .ok_or_else(|| err("missing called column".into()))?
        .parse()
        .map_err(|e| err(format!("bad called column: {e}")))?;
    // Name is everything up to the trailing `[idx]` echo.
    let tail: Vec<&str> = fields.collect();
    if tail.is_empty() {
        return Err(err("missing function name".into()));
    }
    let name = if tail.last().is_some_and(|t| t.starts_with('[')) {
        tail[..tail.len() - 1].join(" ")
    } else {
        tail.join(" ")
    };
    Ok(ParsedCgEntry {
        index,
        name,
        self_secs,
        child_secs,
        calls,
        callers: Vec::new(),
        callees: Vec::new(),
    })
}

/// Arc line: `            child_secs count/total    name`.
fn parse_arc(line: &str, lineno: usize) -> Result<ParsedArc, ProfileError> {
    let err = |message: String| ProfileError::ReportParse {
        line: lineno,
        message,
    };
    let mut fields = line.split_whitespace();
    let child_secs: f64 = fields
        .next()
        .ok_or_else(|| err("missing arc seconds".into()))?
        .parse()
        .map_err(|e| err(format!("bad arc seconds: {e}")))?;
    let ratio = fields
        .next()
        .ok_or_else(|| err("missing count/total".into()))?;
    let (count_s, total_s) = ratio
        .split_once('/')
        .ok_or_else(|| err(format!("bad count/total field {ratio:?}")))?;
    let count: u64 = count_s
        .parse()
        .map_err(|e| err(format!("bad arc count: {e}")))?;
    let total_calls: u64 = total_s
        .parse()
        .map_err(|e| err(format!("bad arc total: {e}")))?;
    let name: Vec<&str> = fields.collect();
    if name.is_empty() {
        return Err(err("missing arc function name".into()));
    }
    Ok(ParsedArc {
        name: name.join(" "),
        child_secs,
        count,
        total_calls,
    })
}

/// Rebuild a [`CallGraphProfile`] from parsed entries, registering names
/// into `table`. Caller arcs are authoritative (each arc appears both as
/// a caller line and a callee line; using one side avoids double
/// counting).
pub fn callgraph_from_entries(
    entries: &[ParsedCgEntry],
    table: &mut FunctionTable,
) -> CallGraphProfile {
    let mut cg = CallGraphProfile::new();
    for e in entries {
        let callee = table.register(e.name.clone());
        for arc in &e.callers {
            let caller = table.register(arc.name.clone());
            cg.record_arcs(caller, callee, arc.count);
            cg.record_arc_time(caller, callee, (arc.child_secs * 1e9).round() as u64);
        }
    }
    cg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FunctionStats;
    use crate::function::FunctionId;
    use crate::gmon::GmonData;
    use crate::report::{write_call_graph, write_report};

    fn sample_gmon() -> GmonData {
        let mut g = GmonData::default();
        let main = g.functions.register("main");
        let solve = g.functions.register("cg_solve");
        let dot = g.functions.register("dot(const Vec&, const Vec&)");
        g.flat.set(
            main,
            FunctionStats {
                self_time: 100_000_000,
                calls: 1,
                child_time: 5_000_000_000,
            },
        );
        g.flat.set(
            solve,
            FunctionStats {
                self_time: 4_000_000_000,
                calls: 3,
                child_time: 900_000_000,
            },
        );
        g.flat.set(
            dot,
            FunctionStats {
                self_time: 900_000_000,
                calls: 600,
                child_time: 0,
            },
        );
        g.callgraph.record_arcs(main, solve, 3);
        g.callgraph.record_arc_time(main, solve, 4_900_000_000);
        g.callgraph.record_arcs(solve, dot, 600);
        g.callgraph.record_arc_time(solve, dot, 900_000_000);
        g
    }

    #[test]
    fn roundtrip_writer_output() {
        let g = sample_gmon();
        let text = write_call_graph(&g);
        let entries = parse_call_graph(&text).unwrap();
        assert_eq!(entries.len(), 3);
        // Entries come in flat-profile order (self time desc): cg_solve,
        // dot, main.
        assert_eq!(entries[0].name, "cg_solve");
        assert_eq!(entries[0].calls, 3);
        assert_eq!(entries[0].callers.len(), 1);
        assert_eq!(entries[0].callers[0].name, "main");
        assert_eq!(entries[0].callers[0].count, 3);
        assert_eq!(entries[0].callees.len(), 1);
        assert_eq!(entries[0].callees[0].name, "dot(const Vec&, const Vec&)");
        assert_eq!(entries[0].callees[0].count, 600);
        assert!((entries[0].self_secs - 4.0).abs() < 0.01);
    }

    #[test]
    fn rebuilt_callgraph_matches_original_arcs() {
        let g = sample_gmon();
        let text = write_call_graph(&g);
        let entries = parse_call_graph(&text).unwrap();
        let mut table = FunctionTable::new();
        let cg = callgraph_from_entries(&entries, &mut table);
        let main = table.id_of("main").unwrap();
        let solve = table.id_of("cg_solve").unwrap();
        let dot = table.id_of("dot(const Vec&, const Vec&)").unwrap();
        assert_eq!(cg.get(main, solve).count, 3);
        assert_eq!(cg.get(solve, dot).count, 600);
        // Times survive within report rounding (10 ms).
        let t = cg.get(main, solve).child_time;
        assert!(t.abs_diff(4_900_000_000) <= 10_000_000, "{t}");
        assert_eq!(cg.len(), 2);
    }

    #[test]
    fn full_report_parses_both_sections() {
        let g = sample_gmon();
        let text = write_report(&g);
        let flat = crate::report::parse_flat_profile(&text).unwrap();
        assert_eq!(flat.len(), 3);
        let entries = parse_call_graph(&text).unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn missing_section_yields_empty() {
        assert!(parse_call_graph("no call graph here").unwrap().is_empty());
    }

    #[test]
    fn garbage_block_is_an_error() {
        let text = "\t\t     Call graph\n\nnot a primary line\n-----\n";
        assert!(parse_call_graph(text).is_err());
    }

    #[test]
    fn recursive_arc_roundtrips() {
        let mut g = GmonData::default();
        let fib = g.functions.register("fib");
        g.flat.set(
            fib,
            FunctionStats {
                self_time: 1_000_000_000,
                calls: 10,
                child_time: 0,
            },
        );
        g.callgraph.record_arcs(fib, fib, 9);
        let text = write_call_graph(&g);
        let entries = parse_call_graph(&text).unwrap();
        assert_eq!(entries[0].callers[0].name, "fib");
        assert_eq!(entries[0].callees[0].count, 9);
        let mut table = FunctionTable::new();
        let cg = callgraph_from_entries(&entries, &mut table);
        let id = table.id_of("fib").unwrap();
        assert_eq!(cg.get(id, id).count, 9);
        let _: FunctionId = id;
    }
}
