//! Function identities and the symbol table.
//!
//! gprof works in terms of program-counter addresses resolved to symbol
//! names; our instrumentation runtime registers functions explicitly instead
//! (the moral equivalent of the `-pg` compiler pass emitting an `mcount`
//! call per function). [`FunctionTable`] owns the mapping from names and
//! optional source locations to dense [`FunctionId`]s used everywhere else.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Dense numeric identifier for a registered function.
///
/// Ids are assigned in registration order starting from zero, so they can be
/// used directly as indices into per-function vectors (the interval matrix
/// in `incprof-collect` does exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl FunctionId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Metadata about one registered function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionInfo {
    /// Fully qualified (possibly demangled) function name, e.g.
    /// `PairLJCut::compute` or `validate_bfs_result`.
    pub name: String,
    /// Source file, when known (gprof's line-level legacy mode; optional).
    pub source_file: Option<String>,
    /// 1-based line number of the function definition, when known.
    pub line: Option<u32>,
    /// Synthetic "address" for the function. Real gprof keys everything on
    /// text-segment addresses; we synthesize stable fake addresses so the
    /// gmon format has the same shape. Defaults to `0x1000 + 16 * id`.
    pub address: u64,
}

impl FunctionInfo {
    /// Create metadata with just a name; address is filled in at
    /// registration time.
    pub fn named(name: impl Into<String>) -> Self {
        FunctionInfo {
            name: name.into(),
            source_file: None,
            line: None,
            address: 0,
        }
    }

    /// Create metadata with a source location.
    pub fn with_location(name: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        FunctionInfo {
            name: name.into(),
            source_file: Some(file.into()),
            line: Some(line),
            address: 0,
        }
    }
}

/// The symbol table: bidirectional mapping between function names and ids.
///
/// Registration is idempotent per name: registering the same name twice
/// returns the same [`FunctionId`]. Iteration order is id order, i.e.
/// registration order, and is fully deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionTable {
    infos: Vec<FunctionInfo>,
    // BTreeMap rather than HashMap so no hash-ordered iteration can ever
    // leak into serialized output (incprof-lint rule D02); the index is
    // lookup-only today, but the ordering guarantee is load-bearing for
    // anything that later walks it.
    #[serde(skip)]
    by_name: BTreeMap<String, FunctionId>,
}

impl FunctionTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function by name, returning its id. Idempotent.
    pub fn register(&mut self, name: impl Into<String>) -> FunctionId {
        self.register_info(FunctionInfo::named(name))
    }

    /// Register a function with full metadata, returning its id.
    ///
    /// If a function with the same name is already registered, the existing
    /// id is returned and any *new* source location fills previously-unknown
    /// fields (first writer wins for fields already set).
    pub fn register_info(&mut self, mut info: FunctionInfo) -> FunctionId {
        if let Some(&id) = self.by_name.get(&info.name) {
            let existing = &mut self.infos[id.index()];
            if existing.source_file.is_none() {
                existing.source_file = info.source_file.take();
            }
            if existing.line.is_none() {
                existing.line = info.line;
            }
            return id;
        }
        let id = FunctionId(self.infos.len() as u32);
        if info.address == 0 {
            // Synthetic, stable, strictly increasing fake text addresses.
            info.address = 0x1000 + 16 * id.0 as u64;
        }
        self.by_name.insert(info.name.clone(), id);
        self.infos.push(info);
        id
    }

    /// Look up a function id by exact name.
    pub fn id_of(&self, name: &str) -> Option<FunctionId> {
        self.by_name.get(name).copied()
    }

    /// Metadata for `id`, or `None` if out of range.
    pub fn info(&self, id: FunctionId) -> Option<&FunctionInfo> {
        self.infos.get(id.index())
    }

    /// The name for `id`; `"<unknown>"` if the id is not registered
    /// (useful when rendering reports against a mismatched table).
    pub fn name(&self, id: FunctionId) -> &str {
        self.infos
            .get(id.index())
            .map(|i| i.name.as_str())
            .unwrap_or("<unknown>")
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterate `(FunctionId, &FunctionInfo)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (FunctionId(i as u32), info))
    }

    /// Rebuild the name index after deserialization (serde skips the map).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .infos
            .iter()
            .enumerate()
            .map(|(i, info)| (info.name.clone(), FunctionId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_dense_ids() {
        let mut t = FunctionTable::new();
        let a = t.register("alpha");
        let b = t.register("beta");
        let c = t.register("gamma");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut t = FunctionTable::new();
        let a1 = t.register("alpha");
        let a2 = t.register("alpha");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut t = FunctionTable::new();
        let id = t.register("cg_solve");
        assert_eq!(t.id_of("cg_solve"), Some(id));
        assert_eq!(t.id_of("missing"), None);
        assert_eq!(t.name(id), "cg_solve");
        assert_eq!(t.name(FunctionId(42)), "<unknown>");
    }

    #[test]
    fn synthetic_addresses_are_distinct_and_increasing() {
        let mut t = FunctionTable::new();
        let a = t.register("a");
        let b = t.register("b");
        let addr_a = t.info(a).unwrap().address;
        let addr_b = t.info(b).unwrap().address;
        assert!(addr_a != 0 && addr_b != 0);
        assert!(addr_b > addr_a);
    }

    #[test]
    fn reregistration_fills_missing_location() {
        let mut t = FunctionTable::new();
        let id = t.register("run_bfs");
        assert!(t.info(id).unwrap().source_file.is_none());
        let id2 = t.register_info(FunctionInfo::with_location("run_bfs", "bfs.c", 120));
        assert_eq!(id, id2);
        let info = t.info(id).unwrap();
        assert_eq!(info.source_file.as_deref(), Some("bfs.c"));
        assert_eq!(info.line, Some(120));
    }

    #[test]
    fn first_location_wins() {
        let mut t = FunctionTable::new();
        t.register_info(FunctionInfo::with_location("f", "a.c", 1));
        t.register_info(FunctionInfo::with_location("f", "b.c", 2));
        let id = t.id_of("f").unwrap();
        assert_eq!(t.info(id).unwrap().source_file.as_deref(), Some("a.c"));
        assert_eq!(t.info(id).unwrap().line, Some(1));
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut t = FunctionTable::new();
        t.register("z");
        t.register("a");
        t.register("m");
        let names: Vec<&str> = t.iter().map(|(_, i)| i.name.as_str()).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
    }

    /// D02 regression: serialization must be a pure function of the
    /// registration sequence — byte-identical across repeated dumps and
    /// across a serialize/deserialize/rebuild round trip, never
    /// dependent on container iteration order.
    #[test]
    fn serialization_is_stable() {
        let build = || {
            let mut t = FunctionTable::new();
            for name in ["zeta", "alpha", "mid", "omega", "beta"] {
                t.register_info(FunctionInfo::with_location(name, "app.c", 7));
            }
            t
        };
        let a = serde_json::to_string(&build()).unwrap();
        let b = serde_json::to_string(&build()).unwrap();
        assert_eq!(a, b, "same registrations must serialize identically");

        let mut back: FunctionTable = serde_json::from_str(&a).unwrap();
        back.rebuild_index();
        let c = serde_json::to_string(&back).unwrap();
        assert_eq!(a, c, "round trip + rebuild must not reorder output");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = FunctionTable::new();
        t.register("one");
        t.register("two");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: FunctionTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id_of("one"), None); // index skipped by serde
        back.rebuild_index();
        assert_eq!(back.id_of("one"), Some(FunctionId(0)));
        assert_eq!(back.id_of("two"), Some(FunctionId(1)));
    }
}
