//! Call-graph cycle detection (gprof's cycle analysis).
//!
//! gprof folds mutually recursive functions into named cycles before
//! propagating times, because child-time attribution inside a strongly
//! connected component is ill-defined. This module implements the same
//! structural analysis — Tarjan's strongly-connected-components algorithm
//! over the recorded arcs — so consumers (e.g. the call-graph-aware site
//! lifting in `incprof-core`) can recognize and treat recursion groups as
//! single units, exactly as gprof's reports do with their `<cycle N>`
//! entries.

use crate::callgraph::CallGraphProfile;
use crate::function::FunctionId;
use std::collections::{BTreeMap, BTreeSet};

/// One cycle (strongly connected component with ≥ 2 members, or a
/// self-recursive singleton).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Members, ascending by id.
    pub members: Vec<FunctionId>,
}

impl Cycle {
    /// Whether `f` belongs to this cycle.
    pub fn contains(&self, f: FunctionId) -> bool {
        self.members.binary_search(&f).is_ok()
    }
}

/// Find all cycles in the call graph: SCCs of size ≥ 2, plus singletons
/// with a self arc. Cycles are returned sorted by their smallest member.
pub fn find_cycles(cg: &CallGraphProfile) -> Vec<Cycle> {
    // Collect node set.
    let mut nodes: BTreeSet<FunctionId> = BTreeSet::new();
    for ((from, to), _) in cg.iter() {
        nodes.insert(from);
        nodes.insert(to);
    }
    let index_of: BTreeMap<FunctionId, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let node_list: Vec<FunctionId> = nodes.iter().copied().collect();
    let n = node_list.len();

    // Tarjan SCC, iterative to avoid recursion-depth limits on deep
    // call chains.
    #[derive(Clone, Copy)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    let successors: Vec<Vec<usize>> = node_list
        .iter()
        .map(|&f| cg.callees_of(f).into_iter().map(|t| index_of[&t]).collect())
        .collect();

    for start in 0..n {
        if state[start].index.is_some() {
            continue;
        }
        // Explicit DFS frames: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = Some(next_index);
        state[start].lowlink = next_index;
        state[start].on_stack = true;
        stack.push(start);
        next_index += 1;

        while let Some(&mut (v, ref mut succ_pos)) = frames.last_mut() {
            if *succ_pos < successors[v].len() {
                let w = successors[v][*succ_pos];
                *succ_pos += 1;
                match state[w].index {
                    None => {
                        state[w].index = Some(next_index);
                        state[w].lowlink = next_index;
                        state[w].on_stack = true;
                        stack.push(w);
                        next_index += 1;
                        frames.push((w, 0));
                    }
                    Some(w_index) => {
                        if state[w].on_stack {
                            state[v].lowlink = state[v].lowlink.min(w_index);
                        }
                    }
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let v_low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(v_low);
                }
                // lint: allow(P01, Tarjan invariant: a node on the DFS path always has its index assigned)
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut scc = Vec::new();
                    loop {
                        // lint: allow(P01, the SCC root is on the Tarjan stack by construction; underflow means the algorithm is broken and must abort)
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }

    let mut cycles: Vec<Cycle> = sccs
        .into_iter()
        .filter(|scc| {
            scc.len() >= 2 || {
                let f = node_list[scc[0]];
                cg.get(f, f).count > 0
            }
        })
        .map(|scc| {
            let mut members: Vec<FunctionId> = scc.into_iter().map(|i| node_list[i]).collect();
            members.sort_unstable();
            Cycle { members }
        })
        .collect();
    cycles.sort_by_key(|c| c.members[0]);
    cycles
}

/// Map each function that belongs to a cycle to its cycle index in the
/// output of [`find_cycles`].
pub fn cycle_membership(cycles: &[Cycle]) -> BTreeMap<FunctionId, usize> {
    let mut out = BTreeMap::new();
    for (i, c) in cycles.iter().enumerate() {
        for &m in &c.members {
            out.insert(m, i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u32) -> FunctionId {
        FunctionId(n)
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut cg = CallGraphProfile::new();
        cg.record_arc(fid(0), fid(1));
        cg.record_arc(fid(1), fid(2));
        cg.record_arc(fid(0), fid(2));
        assert!(find_cycles(&cg).is_empty());
    }

    #[test]
    fn self_recursion_is_a_singleton_cycle() {
        let mut cg = CallGraphProfile::new();
        cg.record_arc(fid(0), fid(1));
        cg.record_arcs(fid(1), fid(1), 5);
        let cycles = find_cycles(&cg);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members, vec![fid(1)]);
    }

    #[test]
    fn mutual_recursion_found() {
        let mut cg = CallGraphProfile::new();
        cg.record_arc(fid(0), fid(1)); // main -> a
        cg.record_arc(fid(1), fid(2)); // a -> b
        cg.record_arc(fid(2), fid(1)); // b -> a
        let cycles = find_cycles(&cg);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members, vec![fid(1), fid(2)]);
        assert!(cycles[0].contains(fid(1)));
        assert!(!cycles[0].contains(fid(0)));
    }

    #[test]
    fn three_way_cycle_plus_separate_pair() {
        let mut cg = CallGraphProfile::new();
        // Cycle A: 1 -> 2 -> 3 -> 1.
        cg.record_arc(fid(1), fid(2));
        cg.record_arc(fid(2), fid(3));
        cg.record_arc(fid(3), fid(1));
        // Cycle B: 5 <-> 6, fed from the first cycle.
        cg.record_arc(fid(3), fid(5));
        cg.record_arc(fid(5), fid(6));
        cg.record_arc(fid(6), fid(5));
        let cycles = find_cycles(&cg);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].members, vec![fid(1), fid(2), fid(3)]);
        assert_eq!(cycles[1].members, vec![fid(5), fid(6)]);
        let membership = cycle_membership(&cycles);
        assert_eq!(membership[&fid(2)], 0);
        assert_eq!(membership[&fid(6)], 1);
        assert!(!membership.contains_key(&fid(0)));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10k-deep chain exercises the iterative Tarjan.
        let mut cg = CallGraphProfile::new();
        for i in 0..10_000u32 {
            cg.record_arc(fid(i), fid(i + 1));
        }
        // Close one long cycle at the tail.
        cg.record_arc(fid(10_000), fid(9_000));
        let cycles = find_cycles(&cg);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members.len(), 1_001);
    }

    #[test]
    fn empty_graph() {
        assert!(find_cycles(&CallGraphProfile::new()).is_empty());
    }
}
