//! Decoder robustness: `GmonData::decode` and the report parsers must
//! never panic, whatever bytes arrive — the collector's files can be
//! truncated by crashes or corrupted in transit.

use incprof_profile::cgparse::parse_call_graph;
use incprof_profile::gmon::GmonData;
use incprof_profile::report::parse_flat_profile;
use incprof_profile::{FlatProfile, FunctionId, FunctionStats, FunctionTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine except a panic.
        let _ = GmonData::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_mutated_valid_streams(
        flip_at in 0usize..256,
        new_byte in any::<u8>(),
        truncate_to in 0usize..400,
    ) {
        let mut table = FunctionTable::new();
        let a = table.register("alpha");
        let b = table.register("beta(int, const char*)");
        let mut flat = FlatProfile::new();
        flat.set(a, FunctionStats { self_time: 123, calls: 4, child_time: 5 });
        flat.set(b, FunctionStats { self_time: 999, calls: 0, child_time: 0 });
        let gmon = GmonData {
            sample_index: 1,
            timestamp_ns: 2,
            functions: table,
            flat,
            callgraph: Default::default(),
        };
        let mut bytes = gmon.encode().to_vec();
        if !bytes.is_empty() {
            let i = flip_at % bytes.len();
            bytes[i] = new_byte;
        }
        let _ = GmonData::decode(&bytes);
        bytes.truncate(truncate_to.min(bytes.len()));
        let _ = GmonData::decode(&bytes);
    }

    #[test]
    fn report_parsers_never_panic_on_text(text in "\\PC{0,400}") {
        let _ = parse_flat_profile(&text);
        let _ = parse_call_graph(&text);
    }

    #[test]
    fn report_parsers_never_panic_on_table_shaped_noise(
        rows in proptest::collection::vec("[ -~]{0,60}", 0..12),
    ) {
        let mut text = String::from(
            " time   seconds   seconds    calls  ms/call  ms/call  name\n",
        );
        for r in &rows {
            text.push_str(r);
            text.push('\n');
        }
        let _ = parse_flat_profile(&text);
        let mut cg = String::from("\t\t     Call graph\n\n");
        for r in &rows {
            cg.push_str(r);
            cg.push('\n');
        }
        let _ = parse_call_graph(&cg);
        let _ = FunctionId(0);
    }
}
