//! Table regeneration: Table I (overheads & phase counts) and the
//! per-application site tables (Tables II–VI).

use crate::apps::{App, Size};
use crate::overhead::{measure_overheads, OverheadResult};
use crate::paper::{format_paper_sites, paper_phase_count, PAPER_TABLE1};
use hpc_apps::plan::HeartbeatPlan;
use incprof_core::report::render_sites_table;
use incprof_core::{PhaseAnalysis, PhaseDetector};
use incprof_profile::FunctionTable;
use std::fmt::Write as _;

/// One measured row of our Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Ranks used for the wall-clock overhead runs.
    pub procs: usize,
    /// Measured uninstrumented runtime (seconds, wall).
    pub uninstr_runtime_s: f64,
    /// Measured IncProf overhead (%).
    pub incprof_ovhd_pct: f64,
    /// Measured heartbeat overhead (%).
    pub heartbeat_ovhd_pct: f64,
    /// Phases discovered on the paper-size virtual run.
    pub phases: usize,
}

/// Run the virtual-mode phase detection for `app` and return the
/// analysis plus the function table it is keyed against.
pub fn detect_phases(app: App, size: Size) -> (PhaseAnalysis, FunctionTable) {
    let out = app.run_virtual(size, &HeartbeatPlan::none());
    let analysis = PhaseDetector::new()
        .detect_series(&out.rank0.series)
        .expect("phase detection");
    (analysis, out.rank0.table)
}

/// Regenerate Table I: per app, measured baseline runtime, IncProf and
/// heartbeat overheads (wall clock), and discovered phase count
/// (virtual run at `size`).
pub fn table1(size: Size, procs: usize, repeats: usize) -> Vec<Table1Row> {
    crate::apps::ALL_APPS
        .iter()
        .map(|&app| {
            let OverheadResult {
                baseline_s,
                incprof_pct,
                heartbeat_pct,
            } = measure_overheads(app, procs, repeats);
            let (analysis, _) = detect_phases(app, size);
            Table1Row {
                app: app.name(),
                procs,
                uninstr_runtime_s: baseline_s,
                incprof_ovhd_pct: incprof_pct,
                heartbeat_ovhd_pct: heartbeat_pct,
                phases: analysis.k,
            }
        })
        .collect()
}

/// Render our Table I next to the paper's.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I — EXPERIMENTAL OVERVIEW: SETUP & OVERHEAD (measured)"
    );
    let _ = writeln!(
        out,
        "| {:<9} | {:>5} | {:>12} | {:>12} | {:>13} | {:>8} |",
        "App", "Procs", "Uninstr (s)", "IncProf (%)", "Heartbeat (%)", "# Phases"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {:<9} | {:>5} | {:>12.2} | {:>12.1} | {:>13.1} | {:>8} |",
            r.app, r.procs, r.uninstr_runtime_s, r.incprof_ovhd_pct, r.heartbeat_ovhd_pct, r.phases
        );
    }
    let _ = writeln!(out, "\nPaper-reported Table I:");
    let _ = writeln!(
        out,
        "| {:<9} | {:>11} | {:>12} | {:>12} | {:>13} | {:>8} |",
        "App", "Procs/Nodes", "Uninstr (s)", "IncProf (%)", "Heartbeat (%)", "# Phases"
    );
    for r in &PAPER_TABLE1 {
        let _ = writeln!(
            out,
            "| {:<9} | {:>11} | {:>12.0} | {:>12.1} | {:>13.1} | {:>8} |",
            r.app,
            r.procs_nodes,
            r.uninstr_runtime_s,
            r.incprof_ovhd_pct,
            r.heartbeat_ovhd_pct,
            r.phases
        );
    }
    out
}

/// Regenerate one of Tables II–VI: run the app (virtual, `size`), detect
/// phases, and print discovered sites alongside the manual sites and the
/// paper's reported table.
pub fn site_table(app: App, size: Size) -> String {
    let (analysis, table) = detect_phases(app, size);
    let title = match app {
        App::Graph500 => "TABLE II — GRAPH500 INSTRUMENTED FUNCTIONS (measured)",
        App::MiniFe => "TABLE III — MINIFE INSTRUMENTED FUNCTIONS (measured)",
        App::MiniAmr => "TABLE IV — MINIAMR INSTRUMENTED FUNCTIONS (measured)",
        App::Lammps => "TABLE V — LAMMPS INSTRUMENTED FUNCTIONS (measured)",
        App::Gadget2 => "TABLE VI — GADGET2 INSTRUMENTED FUNCTIONS (measured)",
    };
    let mut out = render_sites_table(title, &analysis, |id| table.name(id), &app.manual_sites());
    let _ = writeln!(
        out,
        "\nmeasured phases: {} (paper: {})",
        analysis.k,
        paper_phase_count(app)
    );
    out.push('\n');
    out.push_str(&format_paper_sites(app));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_table_prints_measured_and_paper_sections() {
        let text = site_table(App::MiniAmr, Size::Tiny);
        assert!(text.contains("TABLE IV"));
        assert!(text.contains("Manual Instrumentation Sites"));
        assert!(text.contains("Paper-reported sites"));
        assert!(text.contains("check_sum"));
    }

    #[test]
    fn detect_phases_tiny_works_for_all_apps() {
        for app in crate::apps::ALL_APPS {
            let (analysis, table) = detect_phases(app, Size::Tiny);
            assert!(analysis.k >= 1, "{}", app.name());
            assert!(table.len() >= 3, "{}", app.name());
        }
    }

    #[test]
    fn format_table1_renders_both_sections() {
        let rows = vec![Table1Row {
            app: "Graph500",
            procs: 2,
            uninstr_runtime_s: 1.23,
            incprof_ovhd_pct: 5.0,
            heartbeat_ovhd_pct: 0.5,
            phases: 4,
        }];
        let text = format_table1(&rows);
        assert!(text.contains("TABLE I"));
        assert!(text.contains("Paper-reported"));
        assert!(text.contains("Graph500"));
    }
}
