//! Wall-clock overhead measurement (Table I's middle columns).
//!
//! Three configurations per application, as in the paper:
//!
//! * **baseline** — profiler disabled, no heartbeats (the
//!   "uninstrumented" run; our disabled guards cost one atomic load,
//!   the analogue of compiling without `-pg`);
//! * **IncProf** — profiler enabled + collector thread sampling;
//! * **heartbeat** — profiler disabled, AppEKG instrumenting the paper's
//!   manual sites (the paper's heartbeat overhead column measures the
//!   manual "best" instrumentation).
//!
//! Overhead % = (t_config − t_baseline) / t_baseline × 100. Note the
//! paper itself reports a *negative* MiniFE overhead — noise of this
//! scale is inherent to the methodology, and small configurations
//! amplify it; run with `--release` and more repeats for stabler values.

use crate::apps::App;
use hpc_apps::plan::HeartbeatPlan;

/// Measured overheads for one application.
#[derive(Debug, Clone, Copy)]
pub struct OverheadResult {
    /// Baseline (uninstrumented) runtime in seconds — minimum of repeats.
    pub baseline_s: f64,
    /// IncProf (profiler + collector) overhead percent.
    pub incprof_pct: f64,
    /// Heartbeat (manual AppEKG sites) overhead percent.
    pub heartbeat_pct: f64,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..repeats.max(1))
        .map(|_| f())
        .fold(f64::INFINITY, f64::min)
}

/// Measure the three configurations for `app` with `procs` ranks,
/// taking the minimum over `repeats` runs of each.
pub fn measure_overheads(app: App, procs: usize, repeats: usize) -> OverheadResult {
    let none = HeartbeatPlan::none();
    let manual = HeartbeatPlan::from_manual(&app.manual_sites());

    let baseline = best_of(repeats, || {
        let out = app.run_wall(false, &none, procs);
        out.rank0.elapsed_wall_ns as f64 / 1e9
    });
    let incprof = best_of(repeats, || {
        let out = app.run_wall(true, &none, procs);
        out.rank0.elapsed_wall_ns as f64 / 1e9
    });
    let heartbeat = best_of(repeats, || {
        let out = app.run_wall(false, &manual, procs);
        out.rank0.elapsed_wall_ns as f64 / 1e9
    });

    OverheadResult {
        baseline_s: baseline,
        incprof_pct: 100.0 * (incprof - baseline) / baseline,
        heartbeat_pct: 100.0 * (heartbeat - baseline) / baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_finite_and_baseline_positive() {
        // One rank, one repeat: a smoke check, not a benchmark.
        let r = measure_overheads(App::MiniAmr, 1, 1);
        assert!(r.baseline_s > 0.0);
        assert!(r.incprof_pct.is_finite());
        assert!(r.heartbeat_pct.is_finite());
    }
}
