//! Uniform driver over the five evaluation applications.

use hpc_apps::harness::{AppOutput, RunMode};
use hpc_apps::plan::HeartbeatPlan;
use hpc_apps::{gadget2, graph500, lammps, miniamr, minife};
use incprof_core::report::ManualSite;

/// Workload size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Seconds-long virtual runs spanning the paper's interval counts
    /// (the default for table/figure regeneration).
    Paper,
    /// A few dozen intervals (quick checks).
    Medium,
    /// A handful of intervals (smoke tests).
    Tiny,
}

impl Size {
    /// Parse from the `INCPROF_SCALE` environment variable
    /// (`paper`/`medium`/`tiny`), defaulting to `Paper`.
    pub fn from_env() -> Size {
        match std::env::var("INCPROF_SCALE").unwrap_or_default().as_str() {
            "tiny" => Size::Tiny,
            "medium" => Size::Medium,
            _ => Size::Paper,
        }
    }
}

/// One of the five evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Graph500 BFS benchmark (Table II / Fig. 2).
    Graph500,
    /// MiniFE finite-element mini-app (Table III / Fig. 3).
    MiniFe,
    /// MiniAMR adaptive-mesh proxy (Table IV / Fig. 4).
    MiniAmr,
    /// LAMMPS LJ molecular dynamics (Table V / Fig. 5).
    Lammps,
    /// Gadget2 N-body cosmology (Table VI / Fig. 6).
    Gadget2,
}

/// All five apps in paper order.
pub const ALL_APPS: [App; 5] = [
    App::Graph500,
    App::MiniFe,
    App::MiniAmr,
    App::Lammps,
    App::Gadget2,
];

impl App {
    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            App::Graph500 => "Graph500",
            App::MiniFe => "MiniFE",
            App::MiniAmr => "MiniAMR",
            App::Lammps => "LAMMPS",
            App::Gadget2 => "Gadget",
        }
    }

    /// The paper's manual instrumentation sites for this app.
    pub fn manual_sites(&self) -> Vec<ManualSite> {
        match self {
            App::Graph500 => graph500::manual_sites(),
            App::MiniFe => minife::manual_sites(),
            App::MiniAmr => miniamr::manual_sites(),
            App::Lammps => lammps::manual_sites(),
            App::Gadget2 => gadget2::manual_sites(),
        }
    }

    /// Run in deterministic virtual mode at the given size.
    pub fn run_virtual(&self, size: Size, plan: &HeartbeatPlan) -> AppOutput {
        let mode = RunMode::virtual_1s();
        match self {
            App::Graph500 => {
                let cfg = match size {
                    Size::Paper => graph500::Graph500Config::default(),
                    Size::Medium => graph500::Graph500Config {
                        scale: 12,
                        edge_factor: 16,
                        num_roots: 20,
                        ..graph500::Graph500Config::default()
                    },
                    Size::Tiny => graph500::Graph500Config::tiny(),
                };
                graph500::run(&cfg, mode, plan)
            }
            App::MiniFe => {
                let cfg = match size {
                    Size::Paper => minife::MiniFeConfig::default(),
                    Size::Medium => minife::MiniFeConfig {
                        n: 14,
                        cg_iters: 60,
                        procs: 1,
                    },
                    Size::Tiny => minife::MiniFeConfig::tiny(),
                };
                minife::run(&cfg, mode, plan)
            }
            App::MiniAmr => {
                let cfg = match size {
                    Size::Paper => miniamr::MiniAmrConfig::default(),
                    Size::Medium => miniamr::MiniAmrConfig {
                        blocks_per_side: 3,
                        steps: 150,
                        comm_burst_every: 25,
                        adapt_at_step: 75,
                        procs: 1,
                    },
                    Size::Tiny => miniamr::MiniAmrConfig::tiny(),
                };
                miniamr::run(&cfg, mode, plan)
            }
            App::Lammps => {
                let cfg = match size {
                    Size::Paper => lammps::LammpsConfig::default(),
                    Size::Medium => lammps::LammpsConfig {
                        atoms_per_side: 9,
                        steps: 60,
                        rebuild_every: 8,
                        ..lammps::LammpsConfig::default()
                    },
                    Size::Tiny => lammps::LammpsConfig::tiny(),
                };
                lammps::run(&cfg, mode, plan)
            }
            App::Gadget2 => {
                let cfg = match size {
                    Size::Paper => gadget2::Gadget2Config::default(),
                    Size::Medium => gadget2::Gadget2Config {
                        particles: 700,
                        steps: 40,
                        pm_grid: 24,
                        ..gadget2::Gadget2Config::default()
                    },
                    Size::Tiny => gadget2::Gadget2Config::tiny(),
                };
                gadget2::run(&cfg, mode, plan)
            }
        }
    }

    /// Run in wall-clock mode for overhead measurements. `procs` ranks;
    /// real compute sized to take on the order of a second.
    pub fn run_wall(&self, profile: bool, plan: &HeartbeatPlan, procs: usize) -> AppOutput {
        let mode = RunMode::Wall {
            interval_ns: 100_000_000,
            profile,
        };
        match self {
            App::Graph500 => graph500::run(
                &graph500::Graph500Config {
                    scale: 15,
                    edge_factor: 16,
                    num_roots: 24,
                    procs,
                    ..graph500::Graph500Config::default()
                },
                mode,
                plan,
            ),
            App::MiniFe => minife::run(
                &minife::MiniFeConfig {
                    n: 32,
                    cg_iters: 500,
                    procs,
                },
                mode,
                plan,
            ),
            App::MiniAmr => miniamr::run(
                &miniamr::MiniAmrConfig {
                    blocks_per_side: 4,
                    steps: 420,
                    comm_burst_every: 36,
                    adapt_at_step: 210,
                    procs,
                },
                mode,
                plan,
            ),
            App::Lammps => lammps::run(
                &lammps::LammpsConfig {
                    atoms_per_side: 14,
                    steps: 200,
                    rebuild_every: 8,
                    procs,
                    ..lammps::LammpsConfig::default()
                },
                mode,
                plan,
            ),
            App::Gadget2 => gadget2::run(
                &gadget2::Gadget2Config {
                    particles: 2048,
                    steps: 80,
                    pm_grid: 32,
                    procs,
                    ..gadget2::Gadget2Config::default()
                },
                mode,
                plan,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_order() {
        let names: Vec<&str> = ALL_APPS.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["Graph500", "MiniFE", "MiniAMR", "LAMMPS", "Gadget"]
        );
    }

    #[test]
    fn every_app_has_manual_sites() {
        for app in ALL_APPS {
            assert!(
                !app.manual_sites().is_empty(),
                "{} missing manual sites",
                app.name()
            );
        }
    }

    #[test]
    fn tiny_virtual_runs_complete() {
        for app in ALL_APPS {
            let out = app.run_virtual(Size::Tiny, &HeartbeatPlan::none());
            assert!(
                !out.rank0.series.is_empty(),
                "{} collected nothing",
                app.name()
            );
            assert!(out.result_check.is_finite());
        }
    }

    #[test]
    fn size_from_env_defaults_to_paper() {
        // (Cannot mutate the environment safely in tests; just check the
        // default path when the variable is unset or unknown.)
        assert!(matches!(
            Size::from_env(),
            Size::Paper | Size::Medium | Size::Tiny
        ));
    }
}
