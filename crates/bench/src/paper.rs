//! The paper's reported numbers, embedded for side-by-side comparison.
//!
//! Absolute values cannot transfer (the paper ran real MPI jobs on an
//! EPYC cluster; we run a calibrated simulation), but the *shape* —
//! which functions are discovered, which site dominates, how many phases
//! — is directly comparable, and the experiment binaries print both.

use crate::apps::App;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable1Row {
    /// Application name.
    pub app: &'static str,
    /// "Procs / Nodes" as reported.
    pub procs_nodes: &'static str,
    /// Uninstrumented runtime in seconds.
    pub uninstr_runtime_s: f64,
    /// IncProf overhead percent.
    pub incprof_ovhd_pct: f64,
    /// Heartbeat overhead percent.
    pub heartbeat_ovhd_pct: f64,
    /// Phases discovered.
    pub phases: usize,
}

/// The paper's Table I.
pub const PAPER_TABLE1: [PaperTable1Row; 5] = [
    PaperTable1Row {
        app: "Graph500",
        procs_nodes: "1 / 1",
        uninstr_runtime_s: 188.0,
        incprof_ovhd_pct: 10.1,
        heartbeat_ovhd_pct: 1.6,
        phases: 4,
    },
    PaperTable1Row {
        app: "MiniFE",
        procs_nodes: "16 / 2",
        uninstr_runtime_s: 617.0,
        incprof_ovhd_pct: -6.2,
        heartbeat_ovhd_pct: 1.1,
        phases: 5,
    },
    PaperTable1Row {
        app: "MiniAMR",
        procs_nodes: "16 / 2",
        uninstr_runtime_s: 459.0,
        incprof_ovhd_pct: 1.5,
        heartbeat_ovhd_pct: 0.2,
        phases: 2,
    },
    PaperTable1Row {
        app: "LAMMPS",
        procs_nodes: "16 / 2",
        uninstr_runtime_s: 307.0,
        incprof_ovhd_pct: 7.5,
        heartbeat_ovhd_pct: 8.1,
        phases: 4,
    },
    PaperTable1Row {
        app: "Gadget",
        procs_nodes: "16 / 2",
        uninstr_runtime_s: 421.0,
        incprof_ovhd_pct: 6.4,
        heartbeat_ovhd_pct: 1.0,
        phases: 3,
    },
];

/// One discovered-site row as reported in the paper's Tables II–VI.
#[derive(Debug, Clone, Copy)]
pub struct PaperSiteRow {
    /// Phase id.
    pub phase: usize,
    /// Heartbeat id.
    pub hb_id: usize,
    /// Function name.
    pub function: &'static str,
    /// Phase % column.
    pub phase_pct: f64,
    /// App % column.
    pub app_pct: f64,
    /// "body" or "loop".
    pub inst_type: &'static str,
}

/// The paper's discovered sites for `app` (Tables II–VI).
pub fn paper_sites(app: App) -> &'static [PaperSiteRow] {
    match app {
        App::Graph500 => &[
            PaperSiteRow {
                phase: 0,
                hb_id: 1,
                function: "validate_bfs_result",
                phase_pct: 98.1,
                app_pct: 62.2,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 2,
                function: "run_bfs",
                phase_pct: 100.0,
                app_pct: 13.2,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 2,
                hb_id: 3,
                function: "run_bfs",
                phase_pct: 100.0,
                app_pct: 12.3,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 3,
                hb_id: 4,
                function: "make_one_edge",
                phase_pct: 97.2,
                app_pct: 10.8,
                inst_type: "body",
            },
        ],
        App::MiniFe => &[
            PaperSiteRow {
                phase: 0,
                hb_id: 1,
                function: "sum_in_symm_elem_matrix",
                phase_pct: 100.0,
                app_pct: 19.5,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 2,
                function: "cg_solve",
                phase_pct: 100.0,
                app_pct: 43.7,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 2,
                hb_id: 3,
                function: "init_matrix",
                phase_pct: 93.2,
                app_pct: 10.1,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 2,
                hb_id: 4,
                function: "generate_matrix_structure",
                phase_pct: 6.8,
                app_pct: 0.7,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 3,
                hb_id: 5,
                function: "impose_dirichlet",
                phase_pct: 100.0,
                app_pct: 4.4,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 4,
                hb_id: 2,
                function: "cg_solve",
                phase_pct: 94.7,
                app_pct: 20.5,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 4,
                hb_id: 6,
                function: "make_local_matrix",
                phase_pct: 2.7,
                app_pct: 0.6,
                inst_type: "loop",
            },
        ],
        App::MiniAmr => &[
            PaperSiteRow {
                phase: 0,
                hb_id: 1,
                function: "check_sum",
                phase_pct: 100.0,
                app_pct: 89.1,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 2,
                function: "allocate",
                phase_pct: 33.8,
                app_pct: 3.7,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 3,
                function: "pack_block",
                phase_pct: 32.4,
                app_pct: 3.5,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 4,
                function: "unpack_block",
                phase_pct: 26.5,
                app_pct: 2.9,
                inst_type: "body",
            },
        ],
        App::Lammps => &[
            PaperSiteRow {
                phase: 0,
                hb_id: 1,
                function: "PairLJCut::compute",
                phase_pct: 100.0,
                app_pct: 55.7,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 2,
                function: "NPairHalf::build",
                phase_pct: 100.0,
                app_pct: 7.7,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 2,
                hb_id: 1,
                function: "PairLJCut::compute",
                phase_pct: 100.0,
                app_pct: 34.1,
                inst_type: "loop",
            },
            PaperSiteRow {
                phase: 3,
                hb_id: 2,
                function: "NPairHalf::build",
                phase_pct: 50.0,
                app_pct: 1.3,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 3,
                hb_id: 4,
                function: "Velocity::create",
                phase_pct: 42.9,
                app_pct: 1.1,
                inst_type: "loop",
            },
        ],
        App::Gadget2 => &[
            PaperSiteRow {
                phase: 0,
                hb_id: 1,
                function: "force_treeevaluate_shortrange",
                phase_pct: 100.0,
                app_pct: 44.9,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 2,
                function: "pm_setup_nonperiodic_kernel",
                phase_pct: 93.8,
                app_pct: 28.6,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 1,
                hb_id: 3,
                function: "force_update_node_recursive",
                phase_pct: 5.9,
                app_pct: 1.8,
                inst_type: "body",
            },
            PaperSiteRow {
                phase: 2,
                hb_id: 1,
                function: "force_treeevaluate_shortrange",
                phase_pct: 100.0,
                app_pct: 24.7,
                inst_type: "body",
            },
        ],
    }
}

/// The paper's phase count per app (Table I rightmost column).
pub fn paper_phase_count(app: App) -> usize {
    match app {
        App::Graph500 => 4,
        App::MiniFe => 5,
        App::MiniAmr => 2,
        App::Lammps => 4,
        App::Gadget2 => 3,
    }
}

/// Format the paper's sites table for printing next to ours.
pub fn format_paper_sites(app: App) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Paper-reported sites ({}):", app.name());
    for r in paper_sites(app) {
        let _ = writeln!(
            out,
            "  phase {} hb {} {:<34} {:>6.1} {:>6.1} {}",
            r.phase, r.hb_id, r.function, r.phase_pct, r.app_pct, r.inst_type
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::ALL_APPS;

    #[test]
    fn every_app_has_paper_sites_and_phase_counts() {
        for app in ALL_APPS {
            let sites = paper_sites(app);
            assert!(!sites.is_empty());
            let phases: std::collections::BTreeSet<usize> = sites.iter().map(|s| s.phase).collect();
            assert_eq!(phases.len(), paper_phase_count(app), "{}", app.name());
        }
    }

    #[test]
    fn table1_matches_phase_counts() {
        for (row, app) in PAPER_TABLE1.iter().zip(ALL_APPS) {
            assert_eq!(row.app, app.name());
            assert_eq!(row.phases, paper_phase_count(app));
        }
    }

    #[test]
    fn app_pct_sums_are_plausible() {
        // Within each paper table, App% must sum to ≤ 100.
        for app in ALL_APPS {
            let total: f64 = paper_sites(app).iter().map(|s| s.app_pct).sum();
            assert!(total <= 100.5, "{}: {total}", app.name());
        }
    }
}
