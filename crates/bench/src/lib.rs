//! # incprof-bench
//!
//! The experiment harness regenerating every table and figure of the
//! IncProf paper (CLUSTER 2022):
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table I (setup & overhead) | `table1` |
//! | Table II (Graph500 sites) / Fig. 2 | `table2_graph500` / `fig2_graph500` |
//! | Table III (MiniFE) / Fig. 3 | `table3_minife` / `fig3_minife` |
//! | Table IV (MiniAMR) / Fig. 4 | `table4_miniamr` / `fig4_miniamr` |
//! | Table V (LAMMPS) / Fig. 5 | `table5_lammps` / `fig5_lammps` |
//! | Table VI (Gadget2) / Fig. 6 | `table6_gadget2` / `fig6_gadget2` |
//! | everything + artifacts | `all_experiments` |
//! | ablations (clustering / features / threshold / interval) | `ablation_*` |
//! | parallel select-k speedup + determinism gate | `speedup` |
//!
//! Criterion micro-benchmarks live under `benches/` and back the Table I
//! overhead story (heartbeat cost, profiler guard cost, snapshot cost)
//! plus algorithmic scaling (k-means, pipeline, report round trip).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod figures;
pub mod overhead;
pub mod paper;
pub mod tables;

pub use apps::{App, ALL_APPS};
