//! Parallel speedup of the select-k sweep — the `incprof-par` gate.
//!
//! Runs the paper's k = 1..8 k-means sweep (elbow configuration) over a
//! synthetic interval matrix at several worker counts, verifies that the
//! chosen k and the cluster assignments are identical at every count
//! (the pool's determinism contract), and reports the speedup of each
//! count over the 1-thread baseline. The measurements are recorded as
//! `par.speedup.*` gauges and written, together with the pool's
//! scheduling counters, to an `incprof-obs` run report
//! (`experiments_out/speedup_report.json`, or the `INCPROF_METRICS`
//! path).
//!
//! On hardware with ≥ 4 cores the 4-thread sweep must reach ≥ 2×, and
//! the binary exits nonzero if it does not; on narrower machines (CI
//! containers) the gate is reported but not enforced — parallel speedup
//! cannot exist without parallel hardware.
//!
//! ```text
//! cargo run --release -p incprof-bench --bin speedup
//! ```

use incprof_cluster::{select_k, Dataset, KMeansConfig, KSelection, KSelectionMethod};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Synthetic interval matrix: `n` intervals over `d` functions in 4
/// planted phases (the shape of a long profiled run).
fn dataset(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let phase = (i * 4) / n;
            (0..d)
                .map(|j| {
                    if j % 4 == phase {
                        1.0 + rng.gen::<f64>() * 0.05
                    } else {
                        rng.gen::<f64>() * 0.01
                    }
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(rows)
}

/// Best-of-`reps` sweep time at the given worker count, plus the last
/// selection for the determinism check.
fn measure(data: &Dataset, workers: usize, reps: usize) -> (f64, KSelection) {
    incprof_par::set_threads(workers);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let sel = black_box(select_k(
            data,
            8,
            KSelectionMethod::Elbow,
            &KMeansConfig::new(0),
        ));
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(sel);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let data = dataset(360, 48);
    let reps = 5;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("select-k speedup bench: n=360 d=48 k=1..8, best of {reps}, {hw} hw cores\n");

    let (t1, base) = measure(&data, 1, reps);
    println!(
        "  threads=1  {:>9.1} ms  (baseline, k={})",
        t1 * 1e3,
        base.k
    );
    incprof_obs::gauge("par.speedup.baseline_us").set((t1 * 1e6) as u64);

    let mut gate_speedup = None;
    for workers in [2usize, 4, 8] {
        let (t, sel) = measure(&data, workers, reps);
        assert_eq!(sel.k, base.k, "chosen k changed at {workers} threads");
        assert_eq!(
            sel.result.assignments, base.result.assignments,
            "cluster assignments changed at {workers} threads"
        );
        let speedup = t1 / t;
        println!(
            "  threads={workers}  {:>9.1} ms  {speedup:>5.2}x  (identical assignments)",
            t * 1e3
        );
        incprof_obs::gauge(&format!("par.speedup.t{workers}_us")).set((t * 1e6) as u64);
        incprof_obs::gauge(&format!("par.speedup.x1000.t{workers}")).set((speedup * 1e3) as u64);
        if workers == 4 {
            gate_speedup = Some(speedup);
        }
    }
    incprof_par::set_threads(0);

    let out = std::env::var("INCPROF_METRICS")
        .unwrap_or_else(|_| "experiments_out/speedup_report.json".into());
    let path = std::path::PathBuf::from(out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    incprof_obs::report()
        .write(&path)
        .expect("write speedup run report");
    println!(
        "\nrun report (speedup gauges + par.pool.* counters): {}",
        path.display()
    );

    let speedup4 = gate_speedup.expect("4-thread measurement ran");
    if hw >= 4 {
        assert!(
            speedup4 >= 2.0,
            "select-k sweep reached only {speedup4:.2}x at 4 threads (gate: >= 2x)"
        );
        println!("gate: {speedup4:.2}x >= 2x at 4 threads — PASS");
    } else {
        println!(
            "gate: {speedup4:.2}x at 4 threads not enforced ({hw} hw cores < 4; \
             parallel speedup needs parallel hardware)"
        );
    }
}
