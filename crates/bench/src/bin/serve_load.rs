//! Load generator for the `incprof-serve` daemon.
//!
//! Starts an in-process daemon, then replays the five paper apps'
//! rank-0 snapshot series from M concurrent clients (apps cycle when
//! M > 5), each in its own session over real TCP. Reports ingest
//! throughput (frames/sec over the wall-clock replay window) and the
//! daemon's own p50/p95/p99 snapshot-ingest latency, read from the
//! `serve.ingest.detect_latency_ns` histogram via
//! `HistogramSnapshot::percentiles` — the shared obs registry sees the
//! server threads because daemon and clients share the process.
//!
//! After the throughput phase it measures the *tracing tax* twice:
//! per-request (single client, per-push round-trip medians, untraced vs
//! traced v2 frames with a wire trace context — recorded in the report)
//! and per-workload (the full multi-client replay in back-to-back
//! pairs, median per-pair difference in *process CPU time* summed over
//! `/proc/self/task/*/schedstat`, falling back to wall clock where
//! schedstat is unavailable — CPU time is immune to other processes
//! stealing the box, which wall time on a loaded one-core host is
//! not). The workload overhead is gated at <2% — every push traced
//! must not slow the load generator measurably — and the process
//! exits non-zero on a breach.
//!
//! Output goes to `$INCPROF_METRICS` or `experiments_out/serve_report.json`.
//!
//! `--cluster N` switches to the scaling mode: the same multi-client
//! replay runs against an `incprof-shard` router fronting 1, 2, …, N
//! in-process backends, reporting per-shard and aggregate frames/sec
//! plus the ingest latency percentiles. The 2-shard aggregate must
//! reach ≥1.6× the 1-shard throughput — enforced only on ≥4-core
//! hardware (scaling across backends needs cores to scale onto; the
//! mode still runs and emits the report everywhere, mirroring the
//! `speedup.rs` gate).
//!
//! Usage: `serve_load [clients] [workers] [--cluster N]`
//! (defaults: 8 clients, 4 workers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_collect::SampleSeries;
use incprof_obs::{names, TraceIdGen};
use incprof_profile::FunctionTable;
use incprof_serve::{Client, ServeConfig, Server};

/// Max tolerated traced-vs-untraced slowdown, percent.
const TRACE_OVERHEAD_GATE_PCT: f64 = 2.0;

/// Rounds per arm for the per-push probe. Each round replays a full
/// series, so both arms see hundreds of pushes; the median per-push
/// round trip is then immune to scheduler outliers.
const OVERHEAD_ROUNDS: usize = 10;

/// Maximum measurement windows for the workload-level gate. Within a
/// window, each pair runs one untraced and one traced round
/// back-to-back (order alternating pair to pair so drift has no
/// preferred direction) and the window's estimate is the median
/// per-pair difference in process CPU time. Windows run until one
/// passes the gate, up to this cap: interference (preemption by
/// whatever else the box runs leaves our threads cache-cold, and the
/// refills are charged to our CPU time — traced rounds, with their
/// larger working set, pay more) inflates a window's estimate far more
/// readily than it deflates it, so the cleanest window is the most
/// accurate one — the min-of-runs logic classic benchmarking uses. A
/// quiet box finishes after one window; a real regression fails all of
/// them.
const GATE_WINDOWS: usize = 6;

/// Measured pairs per window; each window also starts with one
/// throwaway warmup pair.
const GATE_PAIRS: usize = 9;

/// Replay cycles per workload round: each client runs the series this
/// many times (fresh session each cycle), stretching a round enough
/// that scheduler jitter is small relative to its wall time.
const GATE_CYCLES: usize = 6;

fn app_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut v = Vec::new();
    let r = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    v.push(("Graph500", r.series, r.table));
    let r = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    v.push(("MiniFE", r.series, r.table));
    let r = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    v.push(("MiniAMR", r.series, r.table));
    let r = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    v.push(("LAMMPS", r.series, r.table));
    let r = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    v.push(("Gadget2", r.series, r.table));
    v
}

/// Replay one app's series into its own session; returns frames pushed.
/// With a generator, every push carries its own wire trace context.
fn replay(
    addr: &str,
    series: &SampleSeries,
    table: &FunctionTable,
    trace: Option<&TraceIdGen>,
) -> u64 {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.open().expect("open session");
    let mut frames = 0u64;
    for snap in series.snapshots() {
        let gmon = snap.to_gmon(table);
        match trace {
            Some(ids) => {
                client
                    .push_traced(session, &gmon, ids.next_id())
                    .expect("traced push");
            }
            None => {
                client.push_retry(session, &gmon, 200).expect("push");
            }
        }
        frames += 1;
    }
    // The analysis query forces a final drain before we stop the clock.
    let _ = client.query_analysis(session).expect("query");
    client.close(session).expect("close");
    frames
}

/// Sum of `sum_exec_runtime` over every live thread of this process,
/// read from `/proc/self/task/*/schedstat` (nanoseconds). `None` when
/// the kernel doesn't expose schedstat (non-Linux boxes fall back to
/// wall time). A dead thread's runtime vanishes from this sum, so the
/// gate keeps its client threads parked on a barrier — never joined —
/// while it samples.
fn process_cpu_ns() -> Option<u64> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut total = 0u64;
    for task in tasks.flatten() {
        let Ok(stat) = std::fs::read_to_string(task.path().join("schedstat")) else {
            // The task exited between readdir and read.
            continue;
        };
        total += stat
            .split_whitespace()
            .next()
            .and_then(|f| f.parse::<u64>().ok())?;
    }
    Some(total)
}

/// One gate round as seen by the driver thread: everything between the
/// two barrier crossings, measured in process CPU time (preferred —
/// immune to other processes stealing the box) and wall time.
struct RoundCost {
    cpu_ns: Option<u64>,
    wall: Duration,
}

/// One overhead-probe round: replay the series into a fresh session,
/// traced or not, appending each push's round-trip time to `samples`.
fn probe_round(
    addr: &str,
    series: &SampleSeries,
    table: &FunctionTable,
    trace: Option<&TraceIdGen>,
    samples: &mut Vec<u64>,
) {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.open().expect("open session");
    for snap in series.snapshots() {
        let gmon = snap.to_gmon(table);
        let started = Instant::now();
        match trace {
            Some(ids) => {
                client
                    .push_traced(session, &gmon, ids.next_id())
                    .expect("traced push");
            }
            None => {
                client.push_retry(session, &gmon, 200).expect("push");
            }
        }
        samples.push(started.elapsed().as_nanos() as u64);
    }
    let _ = client.query_analysis(session).expect("query");
    client.close(session).expect("close");
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median per-push round-trip, traced vs untraced, and overhead percent.
fn trace_overhead(addr: &str, series: &SampleSeries, table: &FunctionTable) -> (u64, u64, f64) {
    let ids = TraceIdGen::new(0xBE9C);
    let mut base = Vec::new();
    let mut traced = Vec::new();
    // Interleave the arms so drift (turbo, cache warmth) hits both.
    for _ in 0..OVERHEAD_ROUNDS {
        probe_round(addr, series, table, None, &mut base);
        probe_round(addr, series, table, Some(&ids), &mut traced);
    }
    let base_ns = median_ns(&mut base);
    let traced_ns = median_ns(&mut traced);
    let overhead_pct = (traced_ns as f64 / base_ns as f64 - 1.0) * 100.0;
    (base_ns, traced_ns, overhead_pct)
}

/// Aggregate scaling gate: the 2-shard cluster must reach this multiple
/// of the 1-shard throughput (enforced only on >=4-core hardware).
const CLUSTER_SCALING_GATE: f64 = 1.6;

/// One cluster throughput round: `n` in-process backends fronted by an
/// `incprof-shard` router in address mode, hammered by `clients`
/// concurrent replay clients. Returns (aggregate fps, per-shard frames,
/// elapsed seconds, total frames).
fn cluster_round(
    n: usize,
    clients: usize,
    workers: usize,
    runs: &[(&'static str, SampleSeries, FunctionTable)],
) -> (f64, Vec<u64>, f64, u64) {
    use incprof_shard::{BackendSpec, Router, RouterConfig};

    let mut backends = Vec::with_capacity(n);
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        let handle = Server::bind(ServeConfig {
            workers,
            max_sessions: clients.max(8) * 2,
            read_timeout: Duration::from_millis(25),
            ..ServeConfig::default()
        })
        .expect("bind backend")
        .start()
        .expect("start backend");
        specs.push(BackendSpec {
            data: handle.addr().to_string(),
            admin: None,
        });
        backends.push(handle);
    }
    let router = Router::bind(RouterConfig {
        backends: specs,
        max_conns: clients + 8,
        ..RouterConfig::default()
    })
    .expect("bind router")
    .start()
    .expect("start router");
    let addr = router.addr().to_string();

    let started = Instant::now();
    let frames: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let (_, series, table) = &runs[i % runs.len()];
                let addr = addr.as_str();
                scope.spawn(move || replay(addr, series, table, None))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let per_shard = router.routed_per_backend();
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
    (frames as f64 / elapsed, per_shard, elapsed, frames)
}

/// The `--cluster N` scaling mode: measure aggregate throughput at 1,
/// 2, …, N shards, record per-shard and aggregate rates plus ingest
/// latency percentiles in the serve report, and gate 2-shard scaling on
/// capable hardware.
fn cluster_main(shards: usize, clients: usize, workers: usize) {
    println!("== serve_load --cluster: {clients} clients -> up to {shards} shard(s), {workers} worker(s) each ==");
    println!("profiling the 5 paper apps (tiny configs, virtual 1s runs)...");
    let runs = app_runs();
    let total_snaps: usize = runs.iter().map(|(_, s, _)| s.snapshots().len()).sum();
    println!(
        "  {} apps, {total_snaps} snapshots per full cycle",
        runs.len()
    );

    let expected_frames: usize = (0..clients)
        .map(|i| runs[i % runs.len()].1.snapshots().len())
        .sum();

    let mut counts = vec![1usize];
    if shards >= 2 {
        counts.push(2);
    }
    if shards > 2 {
        counts.push(shards);
    }
    let mut fps_at: Vec<(usize, f64)> = Vec::new();
    for &n in &counts {
        let (fps, per_shard, elapsed, frames) = cluster_round(n, clients, workers, &runs);
        println!("\n{n} shard(s): {frames} frames in {elapsed:.2}s  ->  {fps:.0} frames/sec");
        for (b, f) in per_shard.iter().enumerate() {
            let shard_fps = *f as f64 / elapsed;
            println!("  shard {b}: {f} frames  ->  {shard_fps:.0} frames/sec");
            incprof_obs::gauge(&format!("serve.load.cluster.n{n}.shard{b}_fps"))
                .set(shard_fps as u64);
        }
        incprof_obs::gauge(&format!("serve.load.cluster.n{n}.fps")).set(fps as u64);
        assert!(
            frames as usize >= expected_frames,
            "every client must finish at {n} shard(s)"
        );
        fps_at.push((n, fps));
    }

    // The ingest histogram is process-global (every in-process backend
    // shares the obs registry), so the percentiles aggregate the whole
    // sweep — the cluster-wide tail, which is what capacity planning
    // reads.
    let ingest = incprof_obs::histogram(names::SERVE_INGEST_DETECT_LATENCY_NS).snapshot();
    let (p50, p95, p99) = ingest.percentiles();
    let p999 = ingest.quantile(0.999);
    println!(
        "\ningest detect latency across the sweep (n={}): p50={p50}ns  p95={p95}ns  \
         p99={p99}ns  p999={p999}ns",
        ingest.count
    );

    let fps1 = fps_at
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, f)| *f)
        .expect("1-shard round ran");
    let scaling2 = fps_at.iter().find(|(n, _)| *n == 2).map(|(_, f)| f / fps1);

    incprof_obs::gauge("serve.load.cluster.shards").set(shards as u64);
    incprof_obs::gauge("serve.load.cluster.clients").set(clients as u64);
    incprof_obs::gauge("serve.load.cluster.workers").set(workers as u64);
    incprof_obs::gauge("serve.load.cluster.ingest_p50_ns").set(p50);
    incprof_obs::gauge("serve.load.cluster.ingest_p95_ns").set(p95);
    incprof_obs::gauge("serve.load.cluster.ingest_p99_ns").set(p99);
    incprof_obs::gauge("serve.load.cluster.ingest_p999_ns").set(p999);
    if let Some(s) = scaling2 {
        incprof_obs::gauge("serve.load.cluster.scaling2_x100").set((s * 100.0) as u64);
    }

    incprof_obs::global().spans().clear();
    incprof_obs::recorder().clear();
    let out = std::env::var("INCPROF_METRICS")
        .unwrap_or_else(|_| "experiments_out/serve_report.json".into());
    let path = std::path::PathBuf::from(out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    incprof_obs::report()
        .write(&path)
        .expect("write serve load report");
    println!(
        "\nrun report (serve.load.cluster.* gauges + shard.* counters): {}",
        path.display()
    );

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    match scaling2 {
        Some(s) if hw >= 4 => {
            assert!(
                s >= CLUSTER_SCALING_GATE,
                "2-shard cluster reached only {s:.2}x of 1-shard throughput \
                 (gate: >= {CLUSTER_SCALING_GATE}x)"
            );
            println!("scaling gate: {s:.2}x >= {CLUSTER_SCALING_GATE}x at 2 shards — PASS");
        }
        Some(s) => println!(
            "scaling gate: {s:.2}x at 2 shards not enforced ({hw} hw core(s) < 4; \
             scaling across backends needs cores to scale onto)"
        ),
        None => println!("scaling gate: skipped (single-shard run)"),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut cluster: Option<usize> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--cluster" {
            i += 1;
            cluster = Some(
                raw.get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--cluster needs a shard count of at least 1"),
            );
        } else {
            positional.push(raw[i].clone());
        }
        i += 1;
    }
    let clients: usize = positional
        .first()
        .map(|s| s.parse().expect("clients: not a number"))
        .unwrap_or(8);
    let workers: usize = positional
        .get(1)
        .map(|s| s.parse().expect("workers: not a number"))
        .unwrap_or(4);

    if let Some(shards) = cluster {
        return cluster_main(shards, clients, workers);
    }

    println!("== serve_load: {clients} clients -> {workers} worker daemon ==");
    println!("profiling the 5 paper apps (tiny configs, virtual 1s runs)...");
    let runs = app_runs();
    let total_snaps: usize = runs.iter().map(|(_, s, _)| s.snapshots().len()).sum();
    println!(
        "  {} apps, {total_snaps} snapshots per full cycle",
        runs.len()
    );

    let handle = Server::bind(ServeConfig {
        workers,
        max_sessions: clients.max(8) * 2,
        read_timeout: Duration::from_millis(25),
        ..ServeConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start");
    let addr = handle.addr().to_string();
    println!("daemon listening on {addr}");

    let started = Instant::now();
    let frames: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let (_, series, table) = &runs[i % runs.len()];
                let addr = addr.as_str();
                scope.spawn(move || replay(addr, series, table, None))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let fps = frames as f64 / elapsed;

    assert_eq!(handle.active_sessions(), 0, "sessions must not leak");

    // Per-request tracing tax against the same (still-running) daemon:
    // one client, interleaved untraced/traced rounds, per-push medians.
    // Recorded in the report for trend-watching; not the gate — a bare
    // loopback round trip is far below any real request cost, so a
    // fixed span budget reads as a huge percentage of it.
    println!("\nmeasuring per-push trace overhead ({OVERHEAD_ROUNDS} rounds per arm)...");
    let (_, probe_series, probe_table) = &runs[0];
    let (base_ns, traced_ns, push_overhead_pct) = trace_overhead(&addr, probe_series, probe_table);
    println!(
        "  per-push median: untraced {base_ns}ns, traced {traced_ns}ns  ->  \
         {push_overhead_pct:+.2}% of a bare loopback push"
    );

    // The gate: replay the full multi-client workload with every push
    // traced vs untraced in back-to-back pairs; each window's estimate
    // is the median per-pair difference in *process CPU time* over the
    // median untraced round, and the gate judges the best window (see
    // the GATE_WINDOWS doc for why minimum is the honest estimator).
    // CPU time is what the tracing tax actually costs, and unlike wall
    // time it is immune to other processes stealing the box outright.
    // The client threads persist across all rounds (a joined thread's
    // runtime would vanish from the schedstat sum) and the span store
    // is cleared between rounds so no arm ever runs against a full
    // store (dropped spans would make tracing look free).
    println!(
        "\nmeasuring workload trace overhead \
         (up to {GATE_WINDOWS} windows x {GATE_PAIRS} paired rounds)..."
    );
    let ids = TraceIdGen::new(0xBE9C);
    // Each window's pair 0 is a throwaway that warms every connection
    // path and the allocator; GATE_PAIRS measured pairs follow.
    let rounds_per_window = 2 * (GATE_PAIRS + 1);
    let total_rounds = GATE_WINDOWS * rounds_per_window;
    // Round r is pair r/2; even pairs run [untraced, traced], odd pairs
    // the reverse, so drift has no preferred direction.
    let round_is_traced =
        |round: usize| -> bool { (round % 2 == 1) == (round / 2).is_multiple_of(2) };
    let barrier = std::sync::Barrier::new(clients + 1);
    // Set once a window has passed the gate: the remaining scheduled
    // rounds become no-ops, so the early stop never upsets the barrier
    // arithmetic the clients are counting on.
    let stop = AtomicBool::new(false);
    let mut windows: Vec<(f64, f64, f64, bool)> = Vec::new(); // (base, diff, pct, cpu?)
    std::thread::scope(|scope| {
        for i in 0..clients {
            let (_, series, table) = &runs[i % runs.len()];
            let (addr, barrier, ids, stop) = (addr.as_str(), &barrier, &ids, &stop);
            scope.spawn(move || {
                for round in 0..total_rounds {
                    barrier.wait();
                    if !stop.load(Ordering::Relaxed) {
                        let trace = round_is_traced(round).then_some(ids);
                        for _ in 0..GATE_CYCLES {
                            replay(addr, series, table, trace);
                        }
                    }
                    barrier.wait();
                }
                // Stay alive until the driver has taken its last CPU
                // sample: a thread that exits takes its schedstat
                // runtime with it.
                barrier.wait();
            });
        }
        for window in 0..GATE_WINDOWS {
            let mut costs = Vec::with_capacity(rounds_per_window);
            for _ in 0..rounds_per_window {
                incprof_obs::global().spans().clear();
                let cpu0 = process_cpu_ns();
                let started = Instant::now();
                barrier.wait();
                barrier.wait();
                costs.push(RoundCost {
                    cpu_ns: process_cpu_ns()
                        .zip(cpu0)
                        .and_then(|(a, b)| a.checked_sub(b)),
                    wall: started.elapsed(),
                });
            }
            if stop.load(Ordering::Relaxed) {
                // Draining the already-scheduled rounds of a window we
                // no longer need; nothing ran, nothing to evaluate.
                continue;
            }
            // Per-round cost in seconds: CPU when the kernel provides
            // it (every round or none — the source doesn't come and
            // go), wall otherwise.
            let use_cpu = costs.iter().all(|c| c.cpu_ns.is_some());
            let cost_s = |c: &RoundCost| match c.cpu_ns {
                Some(ns) if use_cpu => ns as f64 * 1e-9,
                _ => c.wall.as_secs_f64(),
            };
            let mut base_s = Vec::with_capacity(GATE_PAIRS);
            let mut diffs_s = Vec::with_capacity(GATE_PAIRS);
            for pair in 1..=GATE_PAIRS {
                let (a, b) = (&costs[2 * pair], &costs[2 * pair + 1]);
                let global_round = window * rounds_per_window + 2 * pair;
                let (base, traced) = if round_is_traced(global_round) {
                    (b, a)
                } else {
                    (a, b)
                };
                base_s.push(cost_s(base));
                diffs_s.push(cost_s(traced) - cost_s(base));
                if std::env::var_os("SERVE_LOAD_DEBUG").is_some() {
                    println!(
                        "    pair {pair:2}: base {:7.2}ms  traced {:7.2}ms  diff {:+7.3}ms  \
                         (walls {:.2}/{:.2}ms)",
                        cost_s(base) * 1e3,
                        cost_s(traced) * 1e3,
                        (cost_s(traced) - cost_s(base)) * 1e3,
                        base.wall.as_secs_f64() * 1e3,
                        traced.wall.as_secs_f64() * 1e3
                    );
                }
            }
            base_s.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
            diffs_s.sort_by(|a, b| a.partial_cmp(b).expect("finite diffs"));
            let (base_mid, diff_mid) = (base_s[GATE_PAIRS / 2], diffs_s[GATE_PAIRS / 2]);
            let pct = diff_mid / base_mid * 100.0;
            println!(
                "  window {window}: median untraced {:.2}ms, median pair diff {:+.3}ms  \
                 ->  overhead {pct:+.2}%",
                base_mid * 1e3,
                diff_mid * 1e3
            );
            windows.push((base_mid, diff_mid, pct, use_cpu));
            if pct <= TRACE_OVERHEAD_GATE_PCT {
                stop.store(true, Ordering::Relaxed);
            }
        }
        barrier.wait();
    });
    let (base_mid, diff_mid, overhead_pct, used_cpu) = windows
        .iter()
        .copied()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite overheads"))
        .expect("at least one window");
    println!(
        "  best of {} window(s) ({}): untraced {:.2}ms, pair diff {:+.3}ms  ->  \
         overhead {overhead_pct:+.2}%",
        windows.len(),
        if used_cpu { "process cpu" } else { "wall" },
        base_mid * 1e3,
        diff_mid * 1e3
    );

    assert_eq!(handle.active_sessions(), 0, "sessions must not leak");
    handle.shutdown();

    let ingest = incprof_obs::histogram(names::SERVE_INGEST_DETECT_LATENCY_NS).snapshot();
    let (p50, p95, p99) = ingest.percentiles();
    let p999 = ingest.quantile(0.999);
    println!(
        "\n{frames} snapshot frames in {:.2}s  ->  {fps:.0} frames/sec",
        elapsed
    );
    println!(
        "ingest detect latency (n={}): p50={p50}ns  p95={p95}ns  p99={p99}ns  p999={p999}ns",
        ingest.count
    );

    incprof_obs::gauge("serve.load.clients").set(clients as u64);
    incprof_obs::gauge("serve.load.workers").set(workers as u64);
    incprof_obs::gauge("serve.load.frames_total").set(frames);
    incprof_obs::gauge("serve.load.elapsed_us").set((elapsed * 1e6) as u64);
    incprof_obs::gauge("serve.load.frames_per_sec").set(fps as u64);
    incprof_obs::gauge("serve.load.ingest_p50_ns").set(p50);
    incprof_obs::gauge("serve.load.ingest_p95_ns").set(p95);
    incprof_obs::gauge("serve.load.ingest_p99_ns").set(p99);
    incprof_obs::gauge("serve.load.ingest_p999_ns").set(p999);
    incprof_obs::gauge("serve.load.trace_base_push_ns").set(base_ns);
    incprof_obs::gauge("serve.load.trace_traced_push_ns").set(traced_ns);
    incprof_obs::gauge("serve.load.trace_base_round_us").set((base_mid * 1e6) as u64);
    incprof_obs::gauge("serve.load.trace_round_diff_ns").set((diff_mid.max(0.0) * 1e9) as u64);
    // Overhead can legitimately be negative (noise floor); clamp the
    // gauge at 0 and store hundredths of a percent.
    incprof_obs::gauge("serve.load.trace_overhead_pct_x100")
        .set((overhead_pct.max(0.0) * 100.0) as u64);

    // The gate rounds leave thousands of trace spans in the store and a
    // full ring of drain events in the recorder; they'd swamp the report
    // (whose value here is the gauges and the daemon counters), so drop
    // both before capture. Quiescent: the daemon has already drained.
    incprof_obs::global().spans().clear();
    incprof_obs::recorder().clear();
    let out = std::env::var("INCPROF_METRICS")
        .unwrap_or_else(|_| "experiments_out/serve_report.json".into());
    let path = std::path::PathBuf::from(out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    incprof_obs::report()
        .write(&path)
        .expect("write serve load report");
    println!(
        "\nrun report (serve.load.* gauges + daemon serve.* counters): {}",
        path.display()
    );

    assert!(frames as usize >= total_snaps, "every client must finish");
    if overhead_pct > TRACE_OVERHEAD_GATE_PCT {
        eprintln!(
            "FAIL: traced-push overhead {overhead_pct:.2}% exceeds the \
             {TRACE_OVERHEAD_GATE_PCT}% gate"
        );
        std::process::exit(1);
    }
    println!("trace overhead gate (<{TRACE_OVERHEAD_GATE_PCT}%): ok");
}
