//! Load generator for the `incprof-serve` daemon.
//!
//! Starts an in-process daemon, then replays the five paper apps'
//! rank-0 snapshot series from M concurrent clients (apps cycle when
//! M > 5), each in its own session over real TCP. Reports ingest
//! throughput (frames/sec over the wall-clock replay window) and the
//! daemon's own p50/p95/p99 snapshot-ingest latency, read from the
//! `serve.ingest.detect_latency_ns` histogram via
//! `HistogramSnapshot::percentiles` — the shared obs registry sees the
//! server threads because daemon and clients share the process.
//!
//! Output goes to `$INCPROF_METRICS` or `experiments_out/serve_report.json`.
//!
//! Usage: `serve_load [clients] [workers]` (defaults: 8 clients, 4 workers).

use std::time::{Duration, Instant};

use hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_collect::SampleSeries;
use incprof_obs::names;
use incprof_profile::FunctionTable;
use incprof_serve::{Client, ServeConfig, Server};

fn app_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut v = Vec::new();
    let r = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    v.push(("Graph500", r.series, r.table));
    let r = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    v.push(("MiniFE", r.series, r.table));
    let r = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    v.push(("MiniAMR", r.series, r.table));
    let r = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    v.push(("LAMMPS", r.series, r.table));
    let r = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    v.push(("Gadget2", r.series, r.table));
    v
}

/// Replay one app's series into its own session; returns frames pushed.
fn replay(addr: &str, series: &SampleSeries, table: &FunctionTable) -> u64 {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.open().expect("open session");
    let mut frames = 0u64;
    for snap in series.snapshots() {
        let gmon = snap.to_gmon(table);
        client.push_retry(session, &gmon, 200).expect("push");
        frames += 1;
    }
    // The analysis query forces a final drain before we stop the clock.
    let _ = client.query_analysis(session).expect("query");
    client.close(session).expect("close");
    frames
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args
        .next()
        .map(|s| s.parse().expect("clients: not a number"))
        .unwrap_or(8);
    let workers: usize = args
        .next()
        .map(|s| s.parse().expect("workers: not a number"))
        .unwrap_or(4);

    println!("== serve_load: {clients} clients -> {workers} worker daemon ==");
    println!("profiling the 5 paper apps (tiny configs, virtual 1s runs)...");
    let runs = app_runs();
    let total_snaps: usize = runs.iter().map(|(_, s, _)| s.snapshots().len()).sum();
    println!(
        "  {} apps, {total_snaps} snapshots per full cycle",
        runs.len()
    );

    let handle = Server::bind(ServeConfig {
        workers,
        max_sessions: clients.max(8) * 2,
        read_timeout: Duration::from_millis(25),
        ..ServeConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start");
    let addr = handle.addr().to_string();
    println!("daemon listening on {addr}");

    let started = Instant::now();
    let frames: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let (_, series, table) = &runs[i % runs.len()];
                let addr = addr.as_str();
                scope.spawn(move || replay(addr, series, table))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let fps = frames as f64 / elapsed;

    assert_eq!(handle.active_sessions(), 0, "sessions must not leak");
    handle.shutdown();

    let ingest = incprof_obs::histogram(names::SERVE_INGEST_DETECT_LATENCY_NS).snapshot();
    let (p50, p95, p99) = ingest.percentiles();
    println!(
        "\n{frames} snapshot frames in {:.2}s  ->  {fps:.0} frames/sec",
        elapsed
    );
    println!(
        "ingest detect latency (n={}): p50={p50}ns  p95={p95}ns  p99={p99}ns",
        ingest.count
    );

    incprof_obs::gauge("serve.load.clients").set(clients as u64);
    incprof_obs::gauge("serve.load.workers").set(workers as u64);
    incprof_obs::gauge("serve.load.frames_total").set(frames);
    incprof_obs::gauge("serve.load.elapsed_us").set((elapsed * 1e6) as u64);
    incprof_obs::gauge("serve.load.frames_per_sec").set(fps as u64);
    incprof_obs::gauge("serve.load.ingest_p50_ns").set(p50);
    incprof_obs::gauge("serve.load.ingest_p95_ns").set(p95);
    incprof_obs::gauge("serve.load.ingest_p99_ns").set(p99);

    let out = std::env::var("INCPROF_METRICS")
        .unwrap_or_else(|_| "experiments_out/serve_report.json".into());
    let path = std::path::PathBuf::from(out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    incprof_obs::report()
        .write(&path)
        .expect("write serve load report");
    println!(
        "\nrun report (serve.load.* gauges + daemon serve.* counters): {}",
        path.display()
    );

    assert!(frames as usize >= total_snaps, "every client must finish");
}
