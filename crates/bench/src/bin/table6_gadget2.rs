//! Regenerate the paper's discovered-sites table for Gadget2.
//! `INCPROF_SCALE` sets the workload size (paper|medium|tiny).

use incprof_bench::apps::{App, Size};
use incprof_bench::tables::site_table;

fn main() {
    println!("{}", site_table(App::Gadget2, Size::from_env()));
}
