//! Run every table and figure experiment, printing results and writing
//! artifacts into `experiments_out/` (consumed by EXPERIMENTS.md).
//!
//! Environment knobs: `INCPROF_SCALE`, `INCPROF_PROCS`,
//! `INCPROF_REPEATS` (see `table1`).

use incprof_bench::apps::{Size, ALL_APPS};
use incprof_bench::figures::{figure, render_ascii, render_csv};
use incprof_bench::tables::{format_table1, site_table, table1};
use std::fs;
use std::path::Path;

fn main() {
    let size = Size::from_env();
    let procs: usize = std::env::var("INCPROF_PROCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let repeats: usize = std::env::var("INCPROF_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let out = Path::new("experiments_out");
    fs::create_dir_all(out).expect("create experiments_out");

    // Table I.
    eprintln!("[1/3] Table I (overheads; {procs} ranks, best of {repeats})...");
    let t1 = format_table1(&table1(size, procs, repeats));
    println!("{t1}");
    fs::write(out.join("table1.txt"), &t1).expect("write table1");

    // Tables II–VI.
    let table_names = [
        "table2_Graph500",
        "table3_MiniFE",
        "table4_MiniAMR",
        "table5_LAMMPS",
        "table6_Gadget2",
    ];
    for (i, app) in ALL_APPS.into_iter().enumerate() {
        eprintln!("[2/3] {} sites table...", app.name());
        let text = site_table(app, size);
        println!("{text}");
        fs::write(out.join(format!("{}.txt", table_names[i])), &text).expect("write table");
    }

    // Figures 2–6.
    let fig_names = [
        "fig2_Graph500",
        "fig3_MiniFe",
        "fig4_MiniAmr",
        "fig5_Lammps",
        "fig6_Gadget2",
    ];
    for (i, app) in ALL_APPS.into_iter().enumerate() {
        eprintln!("[3/3] {} heartbeat figure...", app.name());
        let fig = figure(app, size);
        let ascii = render_ascii(&fig);
        println!("{ascii}");
        fs::write(out.join(format!("{}.txt", fig_names[i])), &ascii).expect("write fig txt");
        fs::write(out.join(format!("{}.csv", fig_names[i])), render_csv(&fig))
            .expect("write fig csv");
    }

    println!("artifacts written to {}", out.display());
}
