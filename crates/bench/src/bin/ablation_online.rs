//! Ablation: online (streaming) vs. batch phase detection.
//!
//! Compares the leader–follower online detector against the paper's
//! offline k-means pipeline on every app: phase counts and partition
//! agreement (pairwise co-membership of intervals).

use hpc_apps::plan::HeartbeatPlan;
use incprof_bench::apps::{Size, ALL_APPS};
use incprof_core::online::{OnlineConfig, OnlinePhaseDetector};
use incprof_core::PhaseDetector;

fn main() {
    let size = Size::from_env();
    println!(
        "{:<9} {:>8} {:>9} {:>12} {:>12}",
        "app", "batch k", "online k", "transitions", "agreement"
    );
    for app in ALL_APPS {
        let out = app.run_virtual(size, &HeartbeatPlan::none());
        let intervals = out
            .rank0
            .series
            .interval_profiles()
            .expect("monotone series");

        let batch = PhaseDetector::new()
            .detect_series(&out.rank0.series)
            .expect("batch");

        let mut online = OnlinePhaseDetector::new(OnlineConfig::default());
        for p in &intervals {
            online.observe(p);
        }

        // Pairwise co-membership agreement between the two partitions.
        let a = &batch.assignments;
        let b = online.assignments();
        let n = a.len().min(b.len());
        let mut agree = 0u64;
        let mut total = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        let agreement = if total > 0 {
            100.0 * agree as f64 / total as f64
        } else {
            100.0
        };
        println!(
            "{:<9} {:>8} {:>9} {:>12} {:>11.1}%",
            app.name(),
            batch.k,
            online.n_phases(),
            online.transitions().len(),
            agreement
        );
    }
}
