//! Restart-recovery bench for durable `incprof-serve` sessions.
//!
//! Measures what a daemon restart actually costs with `--store-dir`
//! enabled, at the registry layer (no sockets — the wire is not what's
//! being measured):
//!
//! 1. **Warm vs cold rehydration.** A session with a long synthetic
//!    snapshot series is made durable, its analysis checkpointed, and
//!    then rehydrated two ways: *warm* (snapshot log + the
//!    `AnalysisCache` checkpoint, so the report query memo-hits) and
//!    *cold* (checkpoint removed, so the query recomputes the full
//!    phase analysis from the replayed series). Both must produce
//!    byte-identical reports; the bench gates on warm being at least
//!    [`WARM_SPEEDUP_GATE`]× faster than cold, the point of shipping
//!    checkpoints at all.
//!
//! 2. **Bounded residency under eviction.** Many idle durable sessions
//!    are opened against a `max_live` cap; after one eviction sweep the
//!    registry must hold at most `max_live` sessions in memory while
//!    every evicted one remains reachable (rehydrated on demand,
//!    byte-identical).
//!
//! Output goes to `$INCPROF_METRICS` or
//! `experiments_out/restart_report.json` (the `store.bench.*` gauges).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use incprof_core::online::OnlineConfig;
use incprof_core::PhaseDetector;
use incprof_profile::{FlatProfile, FunctionStats, FunctionTable, GmonData};
use incprof_serve::{Registry, ReportMode, RetentionPolicy, Store};

/// Warm rehydration must beat cold replay by at least this factor.
const WARM_SPEEDUP_GATE: f64 = 5.0;

/// Timed rounds per arm; the median is reported.
const ROUNDS: usize = 7;

/// Snapshots in the main bench series. Long enough that the full
/// phase analysis (pairwise distances, k-means sweep) dwarfs the
/// linear log replay both arms share.
const SERIES_LEN: u64 = 1024;

/// Functions in the synthetic workload.
const FUNCS: u32 = 12;

/// Appends between analysis checkpoints while building the session.
const CHECKPOINT_EVERY: u64 = 16;

/// Sessions opened for the eviction phase, and the residency cap.
const EVICT_SESSIONS: usize = 32;
const EVICT_MAX_LIVE: usize = 4;
const EVICT_SNAPSHOTS: u64 = 24;

/// A three-phase synthetic cumulative series: each phase keeps a
/// different third of the functions hot, so the analysis has real
/// cluster structure to find.
fn synth_series(n: u64, funcs: u32) -> Vec<GmonData> {
    let mut table = FunctionTable::new();
    let ids: Vec<_> = (0..funcs)
        .map(|i| table.register(format!("fn_{i:03}")))
        .collect();
    let mut self_ns = vec![0u64; funcs as usize];
    let mut calls = vec![0u64; funcs as usize];
    let mut out = Vec::with_capacity(n as usize);
    for s in 0..n {
        let phase = (s * 3 / n.max(1)) as usize;
        for j in 0..funcs as usize {
            if j % 3 == phase % 3 {
                self_ns[j] += 1_000_000 + (j as u64 * 37 + s * 13) % 500_000;
                calls[j] += 1 + s % 3;
            }
        }
        let mut flat = FlatProfile::new();
        for (j, id) in ids.iter().enumerate() {
            if self_ns[j] > 0 {
                flat.set(
                    *id,
                    FunctionStats {
                        self_time: self_ns[j],
                        calls: calls[j],
                        child_time: 0,
                    },
                );
            }
        }
        out.push(GmonData {
            sample_index: s,
            timestamp_ns: 1_000_000 * (s + 1),
            functions: table.clone(),
            flat,
            callgraph: Default::default(),
        });
    }
    out
}

fn registry_over(root: &Path, max_live: usize) -> Registry {
    let store =
        Store::open(root, RetentionPolicy::keep_all(), CHECKPOINT_EVERY).expect("open store");
    Registry::new(OnlineConfig::default(), 2 * EVICT_SESSIONS, 8, true).with_store(store, max_live)
}

/// Stream a series into a fresh session of `registry`; returns
/// (session id, its analysis-only report).
fn ingest(registry: &Registry, series: &[GmonData], detector: &PhaseDetector) -> (u64, String) {
    let (id, session) = registry.open().expect("open session");
    let mut s = session.lock().expect("session lock");
    for gmon in series {
        s.enqueue(gmon.clone(), Instant::now()).expect("enqueue");
        s.drain().expect("drain");
    }
    let report = s.report_json(detector, ReportMode::AnalysisOnly);
    (id, report)
}

/// One timed rehydration: fresh registry over `root`, fetch the
/// session (log replay + optional checkpoint adoption), query the
/// analysis report. Returns the report bytes and the elapsed time.
fn rehydrate_round(root: &Path, id: u64, detector: &PhaseDetector) -> (String, Duration) {
    let registry = registry_over(root, 0);
    let started = Instant::now();
    let session = registry.get(id).expect("rehydrate session");
    let got = started.elapsed();
    let report = session
        .lock()
        .expect("session lock")
        .report_json(detector, ReportMode::AnalysisOnly);
    if std::env::var_os("RESTART_DEBUG").is_some() {
        eprintln!("    get: {:?}  query: {:?}", got, started.elapsed() - got);
    }
    (report, started.elapsed())
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("incprof_restart_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let detector = PhaseDetector::default();

    println!("== restart_recovery: warm checkpoint rehydration vs cold replay ==");
    println!("building a {SERIES_LEN}-snapshot, {FUNCS}-function durable session...");
    let series = synth_series(SERIES_LEN, FUNCS);
    let root = tmp_root("speed");
    let (id, live_report) = {
        let registry = registry_over(&root, 0);
        let (id, report) = ingest(&registry, &series, &detector);
        // Graceful-shutdown path: final drain + analysis checkpoint.
        registry.drain_all();
        (id, report)
    };

    println!("timing warm rehydration ({ROUNDS} rounds)...");
    let mut warm = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let (report, t) = rehydrate_round(&root, id, &detector);
        assert_eq!(report, live_report, "warm report must be byte-identical");
        warm.push(t);
    }

    // Remove the checkpoint: rehydration now replays the log and the
    // query recomputes the whole analysis.
    let checkpoint = root.join(id.to_string()).join("checkpoint.iprf");
    std::fs::remove_file(&checkpoint).expect("remove checkpoint");
    println!("timing cold replay ({ROUNDS} rounds, checkpoint removed)...");
    let mut cold = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let (report, t) = rehydrate_round(&root, id, &detector);
        assert_eq!(report, live_report, "cold report must be byte-identical");
        cold.push(t);
    }

    let warm_med = median(&mut warm);
    let cold_med = median(&mut cold);
    let speedup = cold_med.as_secs_f64() / warm_med.as_secs_f64().max(1e-9);
    println!(
        "  warm (log + checkpoint): median {:.3}ms   cold (log only): median {:.3}ms",
        warm_med.as_secs_f64() * 1e3,
        cold_med.as_secs_f64() * 1e3
    );
    println!("  warm speedup: {speedup:.1}x (gate: >= {WARM_SPEEDUP_GATE}x)");

    println!(
        "\n== bounded residency: {EVICT_SESSIONS} idle sessions, max_live={EVICT_MAX_LIVE} =="
    );
    let evict_root = tmp_root("evict");
    let registry = registry_over(&evict_root, EVICT_MAX_LIVE);
    let evict_series = synth_series(EVICT_SNAPSHOTS, FUNCS);
    let mut reports = Vec::with_capacity(EVICT_SESSIONS);
    for _ in 0..EVICT_SESSIONS {
        reports.push(ingest(&registry, &evict_series, &detector));
    }
    let before = registry.active();
    let evicted = registry.maybe_evict(Instant::now());
    let after = registry.active();
    let resident_snapshots: u64 = registry
        .stats(Instant::now())
        .iter()
        .map(|s| s.snapshots)
        .sum();
    println!(
        "  live sessions: {before} -> {after} ({evicted} evicted); \
         resident snapshots {resident_snapshots} of {}",
        EVICT_SESSIONS as u64 * EVICT_SNAPSHOTS
    );
    assert!(
        after <= EVICT_MAX_LIVE,
        "eviction must bound live sessions at {EVICT_MAX_LIVE}, got {after}"
    );
    // Every evicted session stays reachable, byte-identically.
    let (probe_id, probe_report) = &reports[0];
    let session = registry.get(*probe_id).expect("evicted session reachable");
    let report = session
        .lock()
        .expect("session lock")
        .report_json(&detector, ReportMode::AnalysisOnly);
    assert_eq!(&report, probe_report, "rehydrated evictee must match");

    incprof_obs::gauge("store.bench.series_len").set(SERIES_LEN);
    incprof_obs::gauge("store.bench.warm_rehydrate_us").set(warm_med.as_micros() as u64);
    incprof_obs::gauge("store.bench.cold_replay_us").set(cold_med.as_micros() as u64);
    incprof_obs::gauge("store.bench.warm_speedup_x100").set((speedup * 100.0) as u64);
    incprof_obs::gauge("store.bench.evict_sessions").set(EVICT_SESSIONS as u64);
    incprof_obs::gauge("store.bench.evict_max_live").set(EVICT_MAX_LIVE as u64);
    incprof_obs::gauge("store.bench.evict_live_after").set(after as u64);
    incprof_obs::gauge("store.bench.evict_resident_snapshots").set(resident_snapshots);

    let out = std::env::var("INCPROF_METRICS")
        .unwrap_or_else(|_| "experiments_out/restart_report.json".into());
    let path = std::path::PathBuf::from(out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    incprof_obs::report()
        .write(&path)
        .expect("write restart recovery report");
    println!(
        "\nrun report (store.bench.* gauges + store.* counters): {}",
        path.display()
    );

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&evict_root);
    if speedup < WARM_SPEEDUP_GATE {
        eprintln!(
            "FAIL: warm rehydration only {speedup:.1}x faster than cold replay \
             (gate {WARM_SPEEDUP_GATE}x)"
        );
        std::process::exit(1);
    }
    println!("warm-rehydration gate (>= {WARM_SPEEDUP_GATE}x): ok");
}
