//! Warm-vs-cold replay of the serve push+query workload — the
//! incremental-analysis gate.
//!
//! The serve daemon answers report queries between snapshot pushes; the
//! pre-cache implementation reran the whole `PhaseDetector` pipeline per
//! query. This bench replays that workload over the paper's five
//! applications: after every pushed snapshot it issues `QUERIES_PER_PUSH`
//! report queries, once against a cold per-query `detect_series` and
//! once against the per-session [`AnalysisCache`], asserting that every
//! answer is byte-identical before timing is believed.
//!
//! Four gates, and the binary exits nonzero if any fails:
//!
//! * aggregate warm speedup ≥ 15× (memo hits plus warm-started k-means
//!   chains on the analyses that do run);
//! * per-app warm speedup ≥ 4× — a single-app regression must not hide
//!   behind the aggregate (the 3–4-snapshot apps are memo-dominated and
//!   their sub-millisecond warm totals are timing-noisy, hence the
//!   lower per-app floor);
//! * the cold path stays within an absolute budget
//!   (`INCPROF_INCR_COLD_BUDGET_MS`, default 800 ms) — the warm-path
//!   machinery must not regress plain `detect_series`;
//! * Lloyd iterations at k = 7/8 average ≤ 330 per analysis — the
//!   empty-cluster repair oscillation used to burn ~1650 there
//!   (`max_iters × restarts` on duplicate-heavy prefixes), and this
//!   pins the ≥ 5× drop end-to-end.
//!
//! Results go to `experiments_out/incr_report.json`.
//!
//! ```text
//! cargo run --release -p incprof-bench --bin incr_bench
//! ```

use hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_collect::SampleSeries;
use incprof_core::{AnalysisCache, PhaseDetector};
use serde::Serialize;
use std::time::Instant;

/// Queries issued after every pushed snapshot (a dashboard polling a
/// live session between pushes).
const QUERIES_PER_PUSH: usize = 6;
/// The acceptance gate on the aggregate warm speedup.
const MIN_SPEEDUP: f64 = 15.0;
/// The per-app floor: every application individually must clear this.
const MIN_APP_SPEEDUP: f64 = 4.0;
/// Default cold-path budget in milliseconds (override with
/// `INCPROF_INCR_COLD_BUDGET_MS`). The pre-fix cold total measured
/// ~347 ms; the budget flags a gross cold regression, not jitter.
const DEFAULT_COLD_BUDGET_MS: f64 = 800.0;
/// Maximum average Lloyd iterations per analysis summed over k = 7 and
/// k = 8 (one fifth of the ~1650 the repair oscillation used to burn).
const MAX_K78_ITERS_PER_ANALYSIS: f64 = 330.0;

#[derive(Serialize)]
struct AppResult {
    app: String,
    snapshots: usize,
    queries: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    workload: String,
    queries_per_push: usize,
    apps: Vec<AppResult>,
    total_cold_ms: f64,
    total_warm_ms: f64,
    speedup: f64,
    gate_min_speedup: f64,
    gate_min_app_speedup: f64,
    gate_cold_budget_ms: f64,
    gate_max_k78_iters_per_analysis: f64,
    k78_iterations_total: u64,
    k78_analyses: u64,
    k78_iters_per_analysis: f64,
    kmeans_pruned_points: u64,
    gate_passed: bool,
    cache_memo_hits: u64,
    cache_memo_misses: u64,
    cache_pair_extends: u64,
    cache_invalidations: u64,
    cache_centroid_continues: u64,
    cache_centroid_resets: u64,
    cache_centroid_remaps: u64,
}

fn profiled_runs() -> Vec<(&'static str, SampleSeries)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    vec![
        (
            "Graph500",
            graph500::run(&graph500::Graph500Config::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "MiniFE",
            minife::run(&minife::MiniFeConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "MiniAMR",
            miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "LAMMPS",
            lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "Gadget2",
            gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan)
                .rank0
                .series,
        ),
    ]
}

/// Replay pushes+queries over `series`; returns (cold_secs, warm_secs,
/// queries issued). Every warm answer is asserted byte-identical to the
/// cold one before the timing counts.
fn replay(detector: &PhaseDetector, series: &SampleSeries) -> (f64, f64, usize) {
    let mut cache = AnalysisCache::new();
    let mut prefix = SampleSeries::new();
    let mut cold_secs = 0.0;
    let mut warm_secs = 0.0;
    let mut queries = 0;
    for snap in series.snapshots() {
        prefix.push(snap.clone());
        for _ in 0..QUERIES_PER_PUSH {
            let t = Instant::now();
            let cold = detector.detect_series(&prefix).expect("cold detect");
            cold_secs += t.elapsed().as_secs_f64();

            let t = Instant::now();
            let warm = cache.analyze(detector, &prefix).expect("warm analyze");
            warm_secs += t.elapsed().as_secs_f64();

            let cold_json = serde_json::to_string(&cold).expect("serialize");
            let warm_json = serde_json::to_string(&warm).expect("serialize");
            assert_eq!(warm_json, cold_json, "warm result diverged from cold");
            queries += 1;
        }
    }
    (cold_secs, warm_secs, queries)
}

fn k78_iterations() -> u64 {
    incprof_obs::counter(&incprof_obs::names::cluster_kmeans_iterations_total(7)).get()
        + incprof_obs::counter(&incprof_obs::names::cluster_kmeans_iterations_total(8)).get()
}

fn main() {
    let detector = PhaseDetector::default();
    let cold_budget_ms = std::env::var("INCPROF_INCR_COLD_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_COLD_BUDGET_MS);
    let runs = profiled_runs();
    println!(
        "incremental-analysis bench: {} apps, {QUERIES_PER_PUSH} queries per push\n",
        runs.len()
    );

    let k78_before = k78_iterations();
    let misses_before = incprof_obs::counter(incprof_obs::names::CORE_CACHE_MISSES).get();

    let mut apps = Vec::new();
    let (mut total_cold, mut total_warm) = (0.0f64, 0.0f64);
    let mut total_queries = 0u64;
    let mut apps_ok = true;
    for (app, series) in &runs {
        let (cold, warm, queries) = replay(&detector, series);
        let speedup = cold / warm.max(1e-12);
        let ok = speedup >= MIN_APP_SPEEDUP;
        apps_ok &= ok;
        println!(
            "  {app:<9} {:>3} snapshots {queries:>4} queries  cold {:>8.1} ms  warm {:>7.1} ms  {speedup:>5.1}x{}",
            series.len(),
            cold * 1e3,
            warm * 1e3,
            if ok { "" } else { "  << below per-app floor" },
        );
        total_cold += cold;
        total_warm += warm;
        total_queries += queries as u64;
        apps.push(AppResult {
            app: app.to_string(),
            snapshots: series.len(),
            queries,
            cold_ms: cold * 1e3,
            warm_ms: warm * 1e3,
            speedup,
        });
    }

    // Every cold query runs a full sweep; warm queries sweep only on a
    // memo miss. Average the k=7/k=8 iteration budget over exactly the
    // analyses that swept.
    let k78_total = k78_iterations() - k78_before;
    let warm_misses =
        incprof_obs::counter(incprof_obs::names::CORE_CACHE_MISSES).get() - misses_before;
    let k78_analyses = total_queries + warm_misses;
    let k78_per_analysis = k78_total as f64 / (k78_analyses as f64).max(1.0);

    let speedup = total_cold / total_warm.max(1e-12);
    let cold_ok = total_cold * 1e3 <= cold_budget_ms;
    let iters_ok = k78_per_analysis <= MAX_K78_ITERS_PER_ANALYSIS;
    let gate_passed = speedup >= MIN_SPEEDUP && apps_ok && cold_ok && iters_ok;
    println!(
        "\n  overall: cold {:.1} ms, warm {:.1} ms -> {speedup:.1}x (gate: >= {MIN_SPEEDUP}x overall, >= {MIN_APP_SPEEDUP}x per app)",
        total_cold * 1e3,
        total_warm * 1e3,
    );
    println!(
        "  cold budget: {:.1} ms of {cold_budget_ms:.0} ms  |  k7+k8 Lloyd iterations: {k78_per_analysis:.0}/analysis over {k78_analyses} analyses (max {MAX_K78_ITERS_PER_ANALYSIS:.0})",
        total_cold * 1e3,
    );
    println!("  verdict: {}", if gate_passed { "PASS" } else { "FAIL" });

    let report = Report {
        workload: "per push: 1 snapshot ingest + repeated analysis queries".to_string(),
        queries_per_push: QUERIES_PER_PUSH,
        apps,
        total_cold_ms: total_cold * 1e3,
        total_warm_ms: total_warm * 1e3,
        speedup,
        gate_min_speedup: MIN_SPEEDUP,
        gate_min_app_speedup: MIN_APP_SPEEDUP,
        gate_cold_budget_ms: cold_budget_ms,
        gate_max_k78_iters_per_analysis: MAX_K78_ITERS_PER_ANALYSIS,
        k78_iterations_total: k78_total,
        k78_analyses,
        k78_iters_per_analysis: k78_per_analysis,
        kmeans_pruned_points: incprof_obs::counter(incprof_obs::names::CLUSTER_KMEANS_PRUNED).get(),
        gate_passed,
        cache_memo_hits: incprof_obs::counter(incprof_obs::names::CORE_CACHE_HITS).get(),
        cache_memo_misses: incprof_obs::counter(incprof_obs::names::CORE_CACHE_MISSES).get(),
        cache_pair_extends: incprof_obs::counter(incprof_obs::names::CORE_CACHE_PAIR_EXTENDS).get(),
        cache_invalidations: incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS)
            .get(),
        cache_centroid_continues: incprof_obs::counter(
            incprof_obs::names::CORE_CACHE_CENTROID_CONTINUES,
        )
        .get(),
        cache_centroid_resets: incprof_obs::counter(incprof_obs::names::CORE_CACHE_CENTROID_RESETS)
            .get(),
        cache_centroid_remaps: incprof_obs::counter(incprof_obs::names::CORE_CACHE_CENTROID_REMAPS)
            .get(),
    };
    std::fs::create_dir_all("experiments_out").expect("create experiments_out");
    let path = "experiments_out/incr_report.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write report");
    println!("  report written to {path}");

    if !gate_passed {
        if speedup < MIN_SPEEDUP {
            eprintln!("incr_bench: speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        }
        if !apps_ok {
            eprintln!("incr_bench: at least one app below the {MIN_APP_SPEEDUP}x per-app floor");
        }
        if !cold_ok {
            eprintln!(
                "incr_bench: cold path {:.1} ms over the {cold_budget_ms:.0} ms budget",
                total_cold * 1e3
            );
        }
        if !iters_ok {
            eprintln!(
                "incr_bench: k7+k8 Lloyd iterations {k78_per_analysis:.0}/analysis over the {MAX_K78_ITERS_PER_ANALYSIS:.0} cap"
            );
        }
        std::process::exit(1);
    }
}
