//! Warm-vs-cold replay of the serve push+query workload — the
//! incremental-analysis gate.
//!
//! The serve daemon answers report queries between snapshot pushes; the
//! pre-cache implementation reran the whole `PhaseDetector` pipeline per
//! query. This bench replays that workload over the paper's five
//! applications: after every pushed snapshot it issues `QUERIES_PER_PUSH`
//! report queries, once against a cold per-query `detect_series` and
//! once against the per-session [`AnalysisCache`], asserting that every
//! answer is byte-identical before timing is believed.
//!
//! The aggregate warm speedup must reach ≥ 5× (the repeated queries are
//! memo hits; the per-push analysis itself reuses deltas and distance
//! entries), and the binary exits nonzero if it does not. Results go to
//! `experiments_out/incr_report.json`.
//!
//! ```text
//! cargo run --release -p incprof-bench --bin incr_bench
//! ```

use hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_collect::SampleSeries;
use incprof_core::{AnalysisCache, PhaseDetector};
use serde::Serialize;
use std::time::Instant;

/// Queries issued after every pushed snapshot (a dashboard polling a
/// live session between pushes).
const QUERIES_PER_PUSH: usize = 6;
/// The acceptance gate on the aggregate warm speedup.
const MIN_SPEEDUP: f64 = 5.0;

#[derive(Serialize)]
struct AppResult {
    app: String,
    snapshots: usize,
    queries: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    workload: String,
    queries_per_push: usize,
    apps: Vec<AppResult>,
    total_cold_ms: f64,
    total_warm_ms: f64,
    speedup: f64,
    gate_min_speedup: f64,
    gate_passed: bool,
    cache_memo_hits: u64,
    cache_memo_misses: u64,
    cache_pair_extends: u64,
    cache_invalidations: u64,
}

fn profiled_runs() -> Vec<(&'static str, SampleSeries)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    vec![
        (
            "Graph500",
            graph500::run(&graph500::Graph500Config::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "MiniFE",
            minife::run(&minife::MiniFeConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "MiniAMR",
            miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "LAMMPS",
            lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "Gadget2",
            gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan)
                .rank0
                .series,
        ),
    ]
}

/// Replay pushes+queries over `series`; returns (cold_secs, warm_secs,
/// queries issued). Every warm answer is asserted byte-identical to the
/// cold one before the timing counts.
fn replay(detector: &PhaseDetector, series: &SampleSeries) -> (f64, f64, usize) {
    let mut cache = AnalysisCache::new();
    let mut prefix = SampleSeries::new();
    let mut cold_secs = 0.0;
    let mut warm_secs = 0.0;
    let mut queries = 0;
    for snap in series.snapshots() {
        prefix.push(snap.clone());
        for _ in 0..QUERIES_PER_PUSH {
            let t = Instant::now();
            let cold = detector.detect_series(&prefix).expect("cold detect");
            cold_secs += t.elapsed().as_secs_f64();

            let t = Instant::now();
            let warm = cache.analyze(detector, &prefix).expect("warm analyze");
            warm_secs += t.elapsed().as_secs_f64();

            let cold_json = serde_json::to_string(&cold).expect("serialize");
            let warm_json = serde_json::to_string(&warm).expect("serialize");
            assert_eq!(warm_json, cold_json, "warm result diverged from cold");
            queries += 1;
        }
    }
    (cold_secs, warm_secs, queries)
}

fn main() {
    let detector = PhaseDetector::default();
    let runs = profiled_runs();
    println!(
        "incremental-analysis bench: {} apps, {QUERIES_PER_PUSH} queries per push\n",
        runs.len()
    );

    let mut apps = Vec::new();
    let (mut total_cold, mut total_warm) = (0.0f64, 0.0f64);
    for (app, series) in &runs {
        let (cold, warm, queries) = replay(&detector, series);
        let speedup = cold / warm.max(1e-12);
        println!(
            "  {app:<9} {:>3} snapshots {queries:>4} queries  cold {:>8.1} ms  warm {:>7.1} ms  {speedup:>5.1}x",
            series.len(),
            cold * 1e3,
            warm * 1e3,
        );
        total_cold += cold;
        total_warm += warm;
        apps.push(AppResult {
            app: app.to_string(),
            snapshots: series.len(),
            queries,
            cold_ms: cold * 1e3,
            warm_ms: warm * 1e3,
            speedup,
        });
    }

    let speedup = total_cold / total_warm.max(1e-12);
    let gate_passed = speedup >= MIN_SPEEDUP;
    println!(
        "\n  overall: cold {:.1} ms, warm {:.1} ms -> {speedup:.1}x (gate: >= {MIN_SPEEDUP}x, {})",
        total_cold * 1e3,
        total_warm * 1e3,
        if gate_passed { "PASS" } else { "FAIL" },
    );

    let report = Report {
        workload: "per push: 1 snapshot ingest + repeated analysis queries".to_string(),
        queries_per_push: QUERIES_PER_PUSH,
        apps,
        total_cold_ms: total_cold * 1e3,
        total_warm_ms: total_warm * 1e3,
        speedup,
        gate_min_speedup: MIN_SPEEDUP,
        gate_passed,
        cache_memo_hits: incprof_obs::counter(incprof_obs::names::CORE_CACHE_HITS).get(),
        cache_memo_misses: incprof_obs::counter(incprof_obs::names::CORE_CACHE_MISSES).get(),
        cache_pair_extends: incprof_obs::counter(incprof_obs::names::CORE_CACHE_PAIR_EXTENDS).get(),
        cache_invalidations: incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS)
            .get(),
    };
    std::fs::create_dir_all("experiments_out").expect("create experiments_out");
    let path = "experiments_out/incr_report.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write report");
    println!("  report written to {path}");

    if !gate_passed {
        eprintln!("incr_bench: speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        std::process::exit(1);
    }
}
