//! Ablation: clustering algorithm and k-selection criterion.
//!
//! The paper's §V-A reports that DBSCAN gave "no improvements" over
//! k-means and that both elbow and silhouette were evaluated for k
//! selection. This binary runs all three configurations on every app and
//! prints the detected k, site count, and site names side by side.

use hpc_apps::plan::{discovered_site_names, HeartbeatPlan};
use incprof_bench::apps::{Size, ALL_APPS};
use incprof_bench::paper::paper_phase_count;
use incprof_cluster::{DbscanParams, KSelectionMethod};
use incprof_core::{ClusteringMethod, PhaseDetector};

fn main() {
    let size = Size::from_env();
    println!(
        "{:<9} {:>14} {:>2} {:>6}  sites",
        "app", "method", "k", "paper"
    );
    for app in ALL_APPS {
        let out = app.run_virtual(size, &HeartbeatPlan::none());
        let configs: [(&str, PhaseDetector); 3] = [
            ("kmeans+elbow", PhaseDetector::default()),
            (
                "kmeans+silh",
                PhaseDetector {
                    clustering: ClusteringMethod::KMeans {
                        k_max: 8,
                        selection: KSelectionMethod::Silhouette,
                    },
                    ..PhaseDetector::default()
                },
            ),
            (
                "dbscan",
                PhaseDetector {
                    // eps relative to a 1-second interval: intervals
                    // whose profiles differ by <0.35 s (Euclidean) chain
                    // together.
                    clustering: ClusteringMethod::Dbscan(DbscanParams {
                        eps: 0.35,
                        min_points: 3,
                    }),
                    ..PhaseDetector::default()
                },
            ),
        ];
        for (label, det) in configs {
            match det.detect_series(&out.rank0.series) {
                Ok(analysis) => {
                    let names = discovered_site_names(&analysis, &out.rank0.table);
                    println!(
                        "{:<9} {:>14} {:>2} {:>6}  {}",
                        app.name(),
                        label,
                        analysis.k,
                        paper_phase_count(app),
                        names.into_iter().collect::<Vec<_>>().join(", ")
                    );
                }
                Err(e) => println!("{:<9} {:>14} failed: {e}", app.name(), label),
            }
        }
    }
}
