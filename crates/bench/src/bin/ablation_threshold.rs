//! Ablation: Algorithm 1 coverage threshold.
//!
//! The paper selects sites until 95% of a phase's intervals are covered,
//! "to skip outliers" (§V-B, §VI). This binary sweeps the threshold and
//! reports how the number of selected sites and achieved coverage react.

use hpc_apps::plan::HeartbeatPlan;
use incprof_bench::apps::{Size, ALL_APPS};
use incprof_core::PhaseDetector;

fn main() {
    let size = Size::from_env();
    println!(
        "{:<9} {:>9} {:>2} {:>6} {:>12}",
        "app", "threshold", "k", "sites", "min coverage"
    );
    for app in ALL_APPS {
        let out = app.run_virtual(size, &HeartbeatPlan::none());
        for threshold in [0.50, 0.75, 0.90, 0.95, 0.99, 1.00] {
            let det = PhaseDetector {
                coverage_threshold: threshold,
                ..PhaseDetector::default()
            };
            match det.detect_series(&out.rank0.series) {
                Ok(analysis) => {
                    let min_cov = analysis
                        .phases
                        .iter()
                        .filter(|p| !p.intervals.is_empty())
                        .map(|p| p.coverage())
                        .fold(f64::INFINITY, f64::min);
                    println!(
                        "{:<9} {:>9.2} {:>2} {:>6} {:>11.1}%",
                        app.name(),
                        threshold,
                        analysis.k,
                        analysis.total_sites(),
                        100.0 * min_cov
                    );
                }
                Err(e) => println!("{:<9} {:>9.2} failed: {e}", app.name(), threshold),
            }
        }
    }
}
