//! Quantitative accuracy benchmark over planted ground truth.
//!
//! The paper evaluates phase detection qualitatively; this harness
//! measures it: randomized synthetic workloads with known phase
//! structure (`hpc_apps::synth`) are run through every detector variant,
//! and the detected partition is scored against the plant with the
//! adjusted Rand index (ARI), plus the k (phase count) error.
//!
//! Environment knobs: `INCPROF_TRIALS` (default 20).

use hpc_apps::synth::{run_script, PhaseScript};
use incprof_cluster::{adjusted_rand_index, DbscanParams, KSelectionMethod};
use incprof_core::online::{OnlineConfig, OnlinePhaseDetector};
use incprof_core::{ClusteringMethod, PhaseDetector};

struct Scores {
    ari_sum: f64,
    exact_k: usize,
    trials: usize,
}

impl Scores {
    fn new() -> Scores {
        Scores {
            ari_sum: 0.0,
            exact_k: 0,
            trials: 0,
        }
    }
    fn add(&mut self, ari: f64, k_detected: usize, k_true: usize) {
        self.ari_sum += ari;
        if k_detected == k_true {
            self.exact_k += 1;
        }
        self.trials += 1;
    }
}

fn main() {
    let trials: usize = std::env::var("INCPROF_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let variants = ["kmeans+elbow", "kmeans+silhouette", "dbscan", "online"];
    let mut scores: Vec<Scores> = variants.iter().map(|_| Scores::new()).collect();

    for trial in 0..trials {
        // 2..=6 planted phases, sized like the paper's runs.
        let n_phases = 2 + trial % 5;
        let script = PhaseScript::random(n_phases, 1000 + trial as u64);
        let run = run_script(&script, 1_000_000_000);
        let truth = &run.truth;
        // The collector's final stop() sample adds one (empty) trailing
        // interval; score detection on the planted prefix only.
        let intervals = run.data.series.interval_profiles().expect("monotone");
        let matrix =
            incprof_collect::IntervalMatrix::from_interval_profiles(&intervals[..truth.len()]);

        let detectors: [PhaseDetector; 3] = [
            PhaseDetector::default(),
            PhaseDetector {
                clustering: ClusteringMethod::KMeans {
                    k_max: 8,
                    selection: KSelectionMethod::Silhouette,
                },
                ..PhaseDetector::default()
            },
            PhaseDetector {
                clustering: ClusteringMethod::Dbscan(DbscanParams {
                    eps: 0.35,
                    min_points: 3,
                }),
                ..PhaseDetector::default()
            },
        ];
        for (i, det) in detectors.iter().enumerate() {
            if let Ok(analysis) = det.detect(&matrix) {
                scores[i].add(
                    adjusted_rand_index(&analysis.assignments, truth),
                    analysis.k,
                    n_phases,
                );
            }
        }

        // Online detector.
        let mut online = OnlinePhaseDetector::new(OnlineConfig::default());
        for p in &intervals[..truth.len()] {
            online.observe(p);
        }
        scores[3].add(
            adjusted_rand_index(online.assignments(), truth),
            online.n_phases(),
            n_phases,
        );
    }

    println!("accuracy over {trials} planted workloads (2-6 phases each):");
    println!("{:<20} {:>10} {:>12}", "detector", "mean ARI", "exact k");
    for (name, s) in variants.iter().zip(&scores) {
        println!(
            "{:<20} {:>10.3} {:>9}/{:<2}",
            name,
            s.ari_sum / s.trials.max(1) as f64,
            s.exact_k,
            s.trials
        );
    }
}
