//! Regenerate the paper's heartbeat figure for MiniAmr (ASCII + CSV).
//! `INCPROF_SCALE` sets the workload size (paper|medium|tiny).

use incprof_bench::apps::{App, Size};
use incprof_bench::figures::{figure, render_ascii, render_csv};

fn main() {
    let fig = figure(App::MiniAmr, Size::from_env());
    println!("{}", render_ascii(&fig));
    let out = std::path::Path::new("experiments_out");
    let _ = std::fs::create_dir_all(out);
    let path = out.join("fig4_MiniAmr.csv");
    std::fs::write(&path, render_csv(&fig)).expect("write CSV");
    println!("CSV written to {}", path.display());
}
