//! Heartbeat analysis report: rate factors (Table IV's extra column),
//! duration stability, activity gaps, and the co-activity matrix that
//! quantifies the paper's MiniAMR "simultaneously active" observation —
//! for every app, over its discovered-site instrumentation run.

use appekg::{co_activity, HeartbeatAnalysis, HeartbeatId};
use hpc_apps::plan::HeartbeatPlan;
use incprof_bench::apps::{Size, ALL_APPS};
use incprof_bench::tables::detect_phases;

fn main() {
    let size = Size::from_env();
    for app in ALL_APPS {
        let (analysis, table) = detect_phases(app, size);
        let plan = HeartbeatPlan::from_analysis(&analysis, &table);
        let out = app.run_virtual(size, &plan);
        let n = out.rank0.series.len();
        let hb_analysis = HeartbeatAnalysis::from_records(&out.rank0.hb_records, n);

        println!("== {} ({} intervals) ==", app.name(), n);
        println!(
            "{:<38} {:>8} {:>9} {:>11} {:>12} {:>8}",
            "site", "beats", "activity", "rate factor", "mean dur(ms)", "max gap"
        );
        for hb in hb_analysis.heartbeats() {
            let s = hb_analysis.stats(hb).unwrap();
            println!(
                "{:<38} {:>8} {:>8.1}% {:>11.1} {:>12.2} {:>8}",
                out.rank0.hb_names[hb.0 as usize],
                s.total_count,
                100.0 * s.activity(),
                s.rate_factor,
                s.mean_duration_ns / 1e6,
                s.longest_gap
            );
        }

        // Co-activity matrix (upper triangle).
        let hbs = hb_analysis.heartbeats();
        if hbs.len() >= 2 {
            println!("co-activity:");
            for (i, &a) in hbs.iter().enumerate() {
                for &b in hbs.iter().skip(i + 1) {
                    let c = co_activity(&out.rank0.hb_records, a, b);
                    println!(
                        "  {} <-> {}: {:.0}%",
                        short(&out.rank0.hb_names[a.0 as usize]),
                        short(&out.rank0.hb_names[b.0 as usize]),
                        100.0 * c
                    );
                }
            }
        }
        println!();
        let _: Vec<HeartbeatId> = hbs;
    }
}

fn short(name: &str) -> &str {
    if name.len() > 28 {
        &name[..28]
    } else {
        name
    }
}
