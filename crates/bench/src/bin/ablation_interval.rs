//! Ablation: sampling-interval sensitivity.
//!
//! Gadget2's fast sub-second timestep functions defeat the paper's
//! 1-second interval analysis (§VI-E: "this points to a need for an
//! alternative analysis scheme for applications with fast phases").
//! This binary re-runs each app with finer and coarser intervals and
//! reports how the detected phase structure shifts.

use hpc_apps::harness::RunMode;
use hpc_apps::plan::{discovered_site_names, HeartbeatPlan};
use hpc_apps::{gadget2, graph500, lammps, miniamr, minife};
use incprof_bench::apps::App;
use incprof_core::PhaseDetector;

fn run_with_interval(app: App, interval_ns: u64) -> hpc_apps::AppOutput {
    let mode = RunMode::Virtual { interval_ns };
    let plan = HeartbeatPlan::none();
    match app {
        App::Graph500 => graph500::run(
            &graph500::Graph500Config {
                scale: 12,
                edge_factor: 16,
                num_roots: 20,
                ..Default::default()
            },
            mode,
            &plan,
        ),
        App::MiniFe => minife::run(
            &minife::MiniFeConfig {
                n: 14,
                cg_iters: 60,
                procs: 1,
            },
            mode,
            &plan,
        ),
        App::MiniAmr => miniamr::run(
            &miniamr::MiniAmrConfig {
                blocks_per_side: 3,
                steps: 150,
                comm_burst_every: 25,
                adapt_at_step: 75,
                procs: 1,
            },
            mode,
            &plan,
        ),
        App::Lammps => lammps::run(
            &lammps::LammpsConfig {
                atoms_per_side: 9,
                steps: 60,
                rebuild_every: 8,
                ..Default::default()
            },
            mode,
            &plan,
        ),
        App::Gadget2 => gadget2::run(
            &gadget2::Gadget2Config {
                particles: 700,
                steps: 40,
                pm_grid: 24,
                ..Default::default()
            },
            mode,
            &plan,
        ),
    }
}

fn main() {
    println!(
        "{:<9} {:>9} {:>10} {:>2}  sites",
        "app", "interval", "intervals", "k"
    );
    for app in incprof_bench::ALL_APPS {
        for (label, interval_ns) in [
            ("0.25s", 250_000_000u64),
            ("0.5s", 500_000_000),
            ("1s", 1_000_000_000),
            ("2s", 2_000_000_000),
            ("4s", 4_000_000_000),
        ] {
            let out = run_with_interval(app, interval_ns);
            match PhaseDetector::new().detect_series(&out.rank0.series) {
                Ok(analysis) => {
                    let names = discovered_site_names(&analysis, &out.rank0.table);
                    println!(
                        "{:<9} {:>9} {:>10} {:>2}  {}",
                        app.name(),
                        label,
                        out.rank0.series.len(),
                        analysis.k,
                        names.into_iter().collect::<Vec<_>>().join(", ")
                    );
                }
                Err(e) => println!("{:<9} {:>9} failed: {e}", app.name(), label),
            }
        }
    }
}
