//! Regenerate the paper's Table I: setup & overhead.
//!
//! Environment knobs: `INCPROF_SCALE` (paper|medium|tiny, phase-count
//! runs), `INCPROF_PROCS` (ranks for wall runs, default 2),
//! `INCPROF_REPEATS` (overhead repeats, default 3).

use incprof_bench::apps::Size;
use incprof_bench::tables::{format_table1, table1};

fn main() {
    let size = Size::from_env();
    let procs: usize = std::env::var("INCPROF_PROCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let repeats: usize = std::env::var("INCPROF_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    eprintln!("measuring overheads ({procs} ranks, best of {repeats}; this runs every app 3x{repeats} times)...");
    let rows = table1(size, procs, repeats);
    println!("{}", format_table1(&rows));
    println!("(Our runs are seconds-scale simulations on this machine; compare overhead\n percentages and phase counts, not absolute runtimes. See EXPERIMENTS.md.)");
}
