//! Ablation: clustering feature sets.
//!
//! The paper clusters on self time alone: "We have experimented with
//! including or using other profiling data (number of calls, execution
//! time of children, etc.) but have not found these to improve the
//! results, and sometimes to worsen them" (§V-A). This binary compares
//! the three feature sets per app.

use hpc_apps::plan::{discovered_site_names, HeartbeatPlan};
use incprof_bench::apps::{Size, ALL_APPS};
use incprof_bench::paper::paper_phase_count;
use incprof_core::{FeatureSet, PhaseDetector};

fn main() {
    let size = Size::from_env();
    println!(
        "{:<9} {:>22} {:>2} {:>6}  sites",
        "app", "features", "k", "paper"
    );
    for app in ALL_APPS {
        let out = app.run_virtual(size, &HeartbeatPlan::none());
        for (label, features) in [
            ("self-time (paper)", FeatureSet::SelfTime),
            ("self-time + calls", FeatureSet::SelfTimeAndCalls),
            ("self-time + child", FeatureSet::SelfTimeAndChildTime),
        ] {
            let det = PhaseDetector {
                features,
                ..PhaseDetector::default()
            };
            match det.detect_series(&out.rank0.series) {
                Ok(analysis) => {
                    let names = discovered_site_names(&analysis, &out.rank0.table);
                    println!(
                        "{:<9} {:>22} {:>2} {:>6}  {}",
                        app.name(),
                        label,
                        analysis.k,
                        paper_phase_count(app),
                        names.into_iter().collect::<Vec<_>>().join(", ")
                    );
                }
                Err(e) => println!("{:<9} {:>22} failed: {e}", app.name(), label),
            }
        }
    }
}
