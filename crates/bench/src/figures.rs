//! Figure regeneration: heartbeat time series (Figs. 2–6).
//!
//! Each paper figure plots, per instrumentation site, the heartbeat
//! activity across the run's 1-second intervals, for both the
//! *discovered* sites and the *manual* sites. We regenerate the same
//! series (count and mean duration per interval), emit them as CSV, and
//! render ASCII sparklines for terminal inspection.

use crate::apps::{App, Size};
use crate::tables::detect_phases;
use appekg::HeartbeatSeries;
use hpc_apps::plan::HeartbeatPlan;
use std::fmt::Write as _;

/// The regenerated data behind one paper figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Application.
    pub app: &'static str,
    /// Number of intervals in each run.
    pub n_intervals: u64,
    /// Per-site series from the discovered-site instrumentation run.
    pub discovered: Vec<(String, HeartbeatSeries)>,
    /// Per-site series from the manual-site instrumentation run.
    pub manual: Vec<(String, HeartbeatSeries)>,
}

fn series_of(app: App, size: Size, plan: &HeartbeatPlan) -> (u64, Vec<(String, HeartbeatSeries)>) {
    let out = app.run_virtual(size, plan);
    let n = out.rank0.series.len() as u64;
    let map = HeartbeatSeries::from_records(&out.rank0.hb_records, Some(n));
    let mut v: Vec<(String, HeartbeatSeries)> = map
        .into_iter()
        .map(|(hb, s)| (out.rank0.hb_names[hb.0 as usize].clone(), s))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    (n, v)
}

/// Regenerate the figure data for `app`: one run instrumented with the
/// sites discovered by phase analysis, one with the paper's manual
/// sites.
pub fn figure(app: App, size: Size) -> FigureData {
    let (analysis, table) = detect_phases(app, size);
    let discovered_plan = HeartbeatPlan::from_analysis(&analysis, &table);
    let manual_plan = HeartbeatPlan::from_manual(&app.manual_sites());
    let (n1, discovered) = series_of(app, size, &discovered_plan);
    let (n2, manual) = series_of(app, size, &manual_plan);
    FigureData {
        app: app.name(),
        n_intervals: n1.max(n2),
        discovered,
        manual,
    }
}

/// Render the figure as ASCII sparklines (count per interval).
pub fn render_ascii(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} heartbeats over {} intervals",
        fig.app, fig.n_intervals
    );
    let _ = writeln!(out, "-- discovered sites --");
    for (name, s) in &fig.discovered {
        let _ = writeln!(out, "{name:>36} |{}|", s.sparkline());
    }
    let _ = writeln!(out, "-- manual sites --");
    for (name, s) in &fig.manual {
        let _ = writeln!(out, "{name:>36} |{}|", s.sparkline());
    }
    out
}

/// Render the figure's data as CSV:
/// `run,site,interval,count,mean_duration_ns`.
pub fn render_csv(fig: &FigureData) -> String {
    let mut out = String::from("run,site,interval,count,mean_duration_ns\n");
    for (run, series) in [("discovered", &fig.discovered), ("manual", &fig.manual)] {
        for (name, s) in series.iter() {
            for i in 0..s.counts.len() {
                let _ = writeln!(
                    out,
                    "{run},{name},{i},{},{:.1}",
                    s.counts[i], s.mean_durations_ns[i]
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_produces_both_runs() {
        let fig = figure(App::MiniFe, Size::Tiny);
        assert!(!fig.discovered.is_empty(), "no discovered heartbeats");
        assert!(!fig.manual.is_empty(), "no manual heartbeats");
        assert!(fig.n_intervals > 0);
    }

    #[test]
    fn ascii_render_includes_every_site() {
        let fig = figure(App::MiniFe, Size::Tiny);
        let text = render_ascii(&fig);
        for (name, _) in fig.discovered.iter().chain(&fig.manual) {
            assert!(text.contains(name.as_str()), "missing {name}");
        }
    }

    #[test]
    fn csv_has_row_per_interval_per_site() {
        let fig = figure(App::MiniFe, Size::Tiny);
        let csv = render_csv(&fig);
        let expected = (fig.discovered.len() + fig.manual.len()) * fig.n_intervals as usize + 1;
        assert_eq!(csv.lines().count(), expected);
    }
}
