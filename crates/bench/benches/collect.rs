//! Collection-path costs: delta computation, interval-matrix assembly,
//! gmon encode/decode, and the gprof text-report round trip — the data
//! reduction half of the paper's Fig. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incprof_collect::report_path::{intervals_via_reports, render_reports};
use incprof_collect::{IntervalMatrix, SampleSeries};
use incprof_profile::{FlatProfile, FunctionId, FunctionTable, ProfileSnapshot};
use std::hint::black_box;

/// A synthetic cumulative series: `n` samples over `d` functions.
fn series(n: usize, d: usize) -> (SampleSeries, FunctionTable) {
    let mut table = FunctionTable::new();
    for j in 0..d {
        table.register(format!("function_{j}"));
    }
    let mut out = SampleSeries::new();
    let mut flat = FlatProfile::new();
    for i in 0..n {
        for j in 0..d {
            if (i + j) % 3 != 0 {
                flat.record_self_time(FunctionId(j as u32), 10_000_000 + (j as u64) * 100);
                flat.record_calls(FunctionId(j as u32), 1 + (j as u64 % 5));
            }
        }
        out.push(ProfileSnapshot {
            sample_index: i as u64,
            timestamp_ns: i as u64 * 1_000_000_000,
            flat: flat.clone(),
            callgraph: Default::default(),
        });
    }
    (out, table)
}

fn bench_deltas(c: &mut Criterion) {
    let mut g = c.benchmark_group("collect");
    for n in [50usize, 200, 600] {
        let (s, _) = series(n, 32);
        g.bench_with_input(BenchmarkId::new("interval_profiles", n), &s, |b, s| {
            b.iter(|| black_box(s.interval_profiles().unwrap()))
        });
    }
    let (s, _) = series(200, 32);
    let intervals = s.interval_profiles().unwrap();
    g.bench_function("interval_matrix_200x32", |b| {
        b.iter(|| black_box(IntervalMatrix::from_interval_profiles(&intervals)))
    });
    g.finish();
}

fn bench_gmon(c: &mut Criterion) {
    let mut g = c.benchmark_group("gmon");
    let (s, table) = series(1, 256);
    let gmon = s.snapshots()[0].to_gmon(&table);
    let bytes = gmon.encode();
    g.bench_function("encode_256fns", |b| b.iter(|| black_box(gmon.encode())));
    g.bench_function("decode_256fns", |b| {
        b.iter(|| black_box(incprof_profile::GmonData::decode(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_report_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("report_path");
    let (s, table) = series(60, 32);
    g.bench_function("render_reports_60x32", |b| {
        b.iter(|| black_box(render_reports(&s, &table)))
    });
    g.bench_function("full_roundtrip_60x32", |b| {
        b.iter(|| black_box(intervals_via_reports(&s, &table).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_deltas, bench_gmon, bench_report_path);
criterion_main!(benches);
