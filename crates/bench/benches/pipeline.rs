//! End-to-end phase-detection latency: interval matrix → k-sweep →
//! Algorithm 1, as a function of run length (interval count), plus the
//! DBSCAN variant for the clustering ablation.

use criterion::{criterion_group, BenchmarkId, Criterion};
use incprof_cluster::DbscanParams;
use incprof_collect::IntervalMatrix;
use incprof_core::{ClusteringMethod, PhaseDetector};
use incprof_profile::{FlatProfile, FunctionId, FunctionStats};
use std::hint::black_box;

/// `n` interval profiles over `d` functions in 4 planted phases.
fn intervals(n: usize, d: usize) -> Vec<FlatProfile> {
    (0..n)
        .map(|i| {
            let phase = (i * 4) / n;
            let mut p = FlatProfile::new();
            for j in 0..d {
                if j % 4 == phase {
                    p.set(
                        FunctionId(j as u32),
                        FunctionStats {
                            self_time: 900_000_000 + (i as u64 % 7) * 1_000_000,
                            calls: (j as u64 % 9) + 1,
                            child_time: 0,
                        },
                    );
                }
            }
            p
        })
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for n in [60usize, 200, 600] {
        let matrix = IntervalMatrix::from_interval_profiles(&intervals(n, 24));
        g.bench_with_input(BenchmarkId::new("kmeans_elbow", n), &matrix, |b, m| {
            b.iter(|| black_box(PhaseDetector::new().detect(m).unwrap()))
        });
        let dbscan_det = PhaseDetector {
            clustering: ClusteringMethod::Dbscan(DbscanParams {
                eps: 0.3,
                min_points: 3,
            }),
            ..PhaseDetector::default()
        };
        g.bench_with_input(BenchmarkId::new("dbscan", n), &matrix, |b, m| {
            b.iter(|| black_box(dbscan_det.detect(m).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);

/// Measure the observability layer's own cost against the pipeline: time
/// the obs operations one `detect()` performs (a handful of spans, a
/// counter, the k-sweep counters) and compare with `detect()` itself.
fn obs_overhead_check() {
    let matrix = IntervalMatrix::from_interval_profiles(&intervals(200, 24));
    let det = PhaseDetector::new();
    let reps = 30u32;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        black_box(det.detect(&matrix).unwrap());
    }
    let detect_ns = start.elapsed().as_nanos() as f64 / reps as f64;

    // One detect() performs ~6 spans (detect + 3 stages + up to 8 sweep
    // spans collapse into this order of magnitude) and ~10 counter or
    // histogram updates; price 20 of each to be conservative.
    let per_op = 20u32;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        for _ in 0..per_op {
            let _s = incprof_obs::span("bench.obs.overhead_probe");
            incprof_obs::counter("bench.obs.overhead_probe").inc();
            incprof_obs::histogram("bench.obs.overhead_probe").record(1);
        }
    }
    let obs_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let pct = 100.0 * obs_ns / detect_ns;
    println!(
        "bench pipeline/obs_overhead: {per_op} spans+counters+histograms cost \
         {obs_ns:.0} ns vs {detect_ns:.0} ns per detect ({pct:.3}%)"
    );
    assert!(
        pct < 2.0,
        "observability overhead {pct:.3}% exceeds the 2% budget"
    );
}

fn main() {
    benches();
    obs_overhead_check();
    // Leave the run's own metrics behind for inspection: the span store
    // fills with per-iteration pipeline spans, so the report doubles as a
    // smoke test of the reporting path at volume.
    if let Ok(path) = std::env::var("INCPROF_METRICS") {
        let report = incprof_obs::report();
        report
            .write(std::path::Path::new(&path))
            .expect("write run report");
        println!(
            "bench pipeline: wrote run report ({} counters, {} spans, {} dropped) to {path}",
            report.counters.len(),
            count_spans(&report.spans),
            report.spans_dropped
        );
    }
}

fn count_spans(nodes: &[incprof_obs::SpanNode]) -> usize {
    nodes.iter().map(|n| 1 + count_spans(&n.children)).sum()
}
