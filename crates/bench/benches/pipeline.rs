//! End-to-end phase-detection latency: interval matrix → k-sweep →
//! Algorithm 1, as a function of run length (interval count), plus the
//! DBSCAN variant for the clustering ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incprof_cluster::DbscanParams;
use incprof_collect::IntervalMatrix;
use incprof_core::{ClusteringMethod, PhaseDetector};
use incprof_profile::{FlatProfile, FunctionId, FunctionStats};
use std::hint::black_box;

/// `n` interval profiles over `d` functions in 4 planted phases.
fn intervals(n: usize, d: usize) -> Vec<FlatProfile> {
    (0..n)
        .map(|i| {
            let phase = (i * 4) / n;
            let mut p = FlatProfile::new();
            for j in 0..d {
                if j % 4 == phase {
                    p.set(
                        FunctionId(j as u32),
                        FunctionStats {
                            self_time: 900_000_000 + (i as u64 % 7) * 1_000_000,
                            calls: (j as u64 % 9) + 1,
                            child_time: 0,
                        },
                    );
                }
            }
            p
        })
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for n in [60usize, 200, 600] {
        let matrix = IntervalMatrix::from_interval_profiles(&intervals(n, 24));
        g.bench_with_input(BenchmarkId::new("kmeans_elbow", n), &matrix, |b, m| {
            b.iter(|| black_box(PhaseDetector::new().detect(m).unwrap()))
        });
        let dbscan_det = PhaseDetector {
            clustering: ClusteringMethod::Dbscan(DbscanParams { eps: 0.3, min_points: 3 }),
            ..PhaseDetector::default()
        };
        g.bench_with_input(BenchmarkId::new("dbscan", n), &matrix, |b, m| {
            b.iter(|| black_box(dbscan_det.detect(m).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
