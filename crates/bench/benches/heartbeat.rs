//! AppEKG micro-costs: the begin/end pair, disabled-path cost, and
//! interval flush — the mechanics behind Table I's heartbeat overhead
//! column ("heartbeats can be utilized in production with very little
//! overhead", §III).

use appekg::AppEkg;
use criterion::{criterion_group, criterion_main, Criterion};
use incprof_runtime::Clock;
use std::hint::black_box;

fn bench_begin_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("heartbeat");

    let ekg = AppEkg::new(Clock::wall(), 1_000_000_000);
    let hb = ekg.register_heartbeat("bench");
    g.bench_function("begin_end_pair", |b| {
        b.iter(|| {
            ekg.begin(black_box(hb));
            ekg.end(black_box(hb));
        })
    });

    let disabled = AppEkg::new(Clock::wall(), 1_000_000_000);
    let hb2 = disabled.register_heartbeat("bench");
    disabled.set_enabled(false);
    g.bench_function("begin_end_pair_disabled", |b| {
        b.iter(|| {
            disabled.begin(black_box(hb2));
            disabled.end(black_box(hb2));
        })
    });

    g.bench_function("scope_guard", |b| {
        b.iter(|| {
            let _g = ekg.scope(black_box(hb));
        })
    });

    // Flush cost with a populated interval map.
    g.bench_function("drain_completed_100_intervals", |b| {
        b.iter_with_setup(
            || {
                let clock = Clock::virtual_clock();
                let ekg = AppEkg::new(clock.clone(), 1_000);
                let hb = ekg.register_heartbeat("x");
                for _ in 0..100 {
                    ekg.begin(hb);
                    clock.advance(500);
                    ekg.end(hb);
                    clock.advance(600);
                }
                clock.advance(10_000);
                ekg
            },
            |ekg| black_box(ekg.drain_completed()),
        )
    });

    g.finish();
}

criterion_group!(benches, bench_begin_end);
criterion_main!(benches);
