//! Per-application iteration cost, instrumented vs uninstrumented — the
//! Criterion-grade counterpart of Table I's overhead columns.
//!
//! Each benchmark runs one tiny wall-clock pass of an app with the
//! profiler (a) disabled and (b) enabled with a collector; the ratio of
//! the two medians is the IncProf overhead at micro scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpc_apps::harness::RunMode;
use hpc_apps::plan::HeartbeatPlan;
use hpc_apps::{gadget2, lammps, miniamr, minife};
use std::hint::black_box;

const WALL: fn(bool) -> RunMode = |profile| RunMode::Wall {
    interval_ns: 10_000_000,
    profile,
};

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);

    for profile in [false, true] {
        let label = if profile { "profiled" } else { "baseline" };
        g.bench_with_input(BenchmarkId::new("minife_n8", label), &profile, |b, &p| {
            b.iter(|| {
                black_box(minife::run(
                    &minife::MiniFeConfig {
                        n: 8,
                        cg_iters: 30,
                        procs: 1,
                    },
                    WALL(p),
                    &HeartbeatPlan::none(),
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("miniamr_b2", label), &profile, |b, &p| {
            b.iter(|| {
                black_box(miniamr::run(
                    &miniamr::MiniAmrConfig {
                        blocks_per_side: 2,
                        steps: 12,
                        comm_burst_every: 6,
                        adapt_at_step: 6,
                        procs: 1,
                    },
                    WALL(p),
                    &HeartbeatPlan::none(),
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("lammps_a6", label), &profile, |b, &p| {
            b.iter(|| {
                black_box(lammps::run(
                    &lammps::LammpsConfig {
                        atoms_per_side: 6,
                        steps: 10,
                        rebuild_every: 5,
                        ..Default::default()
                    },
                    WALL(p),
                    &HeartbeatPlan::none(),
                ))
            })
        });
        g.bench_with_input(
            BenchmarkId::new("gadget2_n256", label),
            &profile,
            |b, &p| {
                b.iter(|| {
                    black_box(gadget2::run(
                        &gadget2::Gadget2Config {
                            particles: 256,
                            steps: 6,
                            pm_grid: 8,
                            ..Default::default()
                        },
                        WALL(p),
                        &HeartbeatPlan::none(),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
