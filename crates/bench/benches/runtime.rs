//! Profiler-runtime micro-costs: the enter/exit guard (the `-pg`
//! analogue whose price bounds IncProf's ≤10% overhead), the disabled
//! path (the "uninstrumented" baseline), and snapshotting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incprof_runtime::{Clock, ProfilerRuntime};
use std::hint::black_box;

fn bench_guards(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");

    let rt = ProfilerRuntime::new();
    let f = rt.register_function("hot");
    g.bench_function("enter_exit", |b| {
        b.iter(|| {
            let _g = rt.enter(black_box(f));
        })
    });

    let disabled = ProfilerRuntime::new();
    let f2 = disabled.register_function("hot");
    disabled.set_enabled(false);
    g.bench_function("enter_exit_disabled", |b| {
        b.iter(|| {
            let _g = disabled.enter(black_box(f2));
        })
    });

    // Nested scopes (caller attribution path).
    let a = rt.register_function("outer");
    g.bench_function("nested_enter_exit", |b| {
        b.iter(|| {
            let _ga = rt.enter(black_box(a));
            let _gb = rt.enter(black_box(f));
        })
    });

    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    for n_functions in [16usize, 128, 1024] {
        let clock = Clock::virtual_clock();
        let rt = ProfilerRuntime::with_clock(clock.clone());
        for i in 0..n_functions {
            let f = rt.register_function(format!("fn_{i}"));
            let _g = rt.enter(f);
            clock.advance(1000);
        }
        g.bench_with_input(BenchmarkId::new("functions", n_functions), &rt, |b, rt| {
            b.iter(|| black_box(rt.snapshot(0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_guards, bench_snapshot);
criterion_main!(benches);
