//! Clustering scaling: k-means, the k = 1..8 sweep with elbow selection
//! (the paper's configuration), silhouette, and DBSCAN, over growing
//! interval counts and feature dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incprof_cluster::{
    dbscan, kmeans, mean_silhouette, select_k, Dataset, DbscanParams, KMeansConfig,
    KSelectionMethod,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Synthetic interval matrix: `n` intervals over `d` functions, in 4
/// planted phases.
fn dataset(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let phase = (i * 4) / n;
            (0..d)
                .map(|j| {
                    if j % 4 == phase {
                        1.0 + rng.gen::<f64>() * 0.05
                    } else {
                        rng.gen::<f64>() * 0.01
                    }
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(rows)
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans");
    for n in [60usize, 200, 600] {
        let data = dataset(n, 16);
        g.bench_with_input(BenchmarkId::new("k4_intervals", n), &data, |b, data| {
            b.iter(|| black_box(kmeans(data, &KMeansConfig::new(4))))
        });
    }
    for d in [8usize, 64, 256] {
        let data = dataset(200, d);
        g.bench_with_input(BenchmarkId::new("k4_dims", d), &data, |b, data| {
            b.iter(|| black_box(kmeans(data, &KMeansConfig::new(4))))
        });
    }
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("k_selection");
    let data = dataset(200, 16);
    g.bench_function("elbow_sweep_k1_8", |b| {
        b.iter(|| {
            black_box(select_k(
                &data,
                8,
                KSelectionMethod::Elbow,
                &KMeansConfig::new(0),
            ))
        })
    });
    g.bench_function("silhouette_sweep_k1_8", |b| {
        b.iter(|| {
            black_box(select_k(
                &data,
                8,
                KSelectionMethod::Silhouette,
                &KMeansConfig::new(0),
            ))
        })
    });
    let res = kmeans(&data, &KMeansConfig::new(4));
    g.bench_function("mean_silhouette_n200", |b| {
        b.iter(|| black_box(mean_silhouette(&data, &res.assignments)))
    });
    g.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbscan");
    for n in [60usize, 200] {
        let data = dataset(n, 16);
        g.bench_with_input(BenchmarkId::new("intervals", n), &data, |b, data| {
            b.iter(|| {
                black_box(dbscan(
                    data,
                    DbscanParams {
                        eps: 0.3,
                        min_points: 3,
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kmeans, bench_selection, bench_dbscan);
criterion_main!(benches);
