//! Dense row-major dataset of feature vectors.

use std::fmt;

/// An `n × d` matrix: one row per interval, one column per feature
/// (in IncProf, one column per profiled function).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Dataset {
    /// Build from row vectors. All rows must share one length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Dataset {
        let n = rows.len();
        let d = rows.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(n * d);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                d,
                "row {i} has length {} but expected {d}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Dataset {
            data,
            rows: n,
            cols: d,
        }
    }

    /// Build a zero-filled dataset with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Dataset {
        Dataset {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows (points).
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row` does not match the dataset's column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.cols,
            "pushed row has length {} but dataset has {} columns",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Copy of the first `rows` rows (the prefix an incremental fold has
    /// already consumed).
    ///
    /// # Panics
    /// Panics if `rows` exceeds the row count.
    pub fn prefix(&self, rows: usize) -> Dataset {
        assert!(
            rows <= self.rows,
            "prefix of {rows} rows requested from a {}-row dataset",
            self.rows
        );
        Dataset {
            data: self.data[..rows * self.cols].to_vec(),
            rows,
            cols: self.cols,
        }
    }

    /// Iterate rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Copy the rows out as `Vec<Vec<f64>>` (for tests / serialization).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(|r| r.to_vec()).collect()
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dataset {}x{}:", self.rows, self.cols)?;
        for r in self.iter_rows() {
            writeln!(f, "  {r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_accessors() {
        let d = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(d.nrows(), 3);
        assert_eq!(d.ncols(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.get(2, 1), 6.0);
    }

    #[test]
    fn set_and_row_mut() {
        let mut d = Dataset::zeros(2, 2);
        d.set(0, 1, 9.0);
        d.row_mut(1)[0] = 7.0;
        assert_eq!(d.to_rows(), vec![vec![0.0, 9.0], vec![7.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn ragged_rows_panic() {
        let _ = Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_rows(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.nrows(), 0);
        assert_eq!(d.iter_rows().count(), 0);
    }

    #[test]
    fn zero_column_rows_are_legal() {
        let d = Dataset::from_rows(vec![vec![], vec![]]);
        assert_eq!(d.nrows(), 2);
        assert_eq!(d.ncols(), 0);
    }

    #[test]
    fn push_row_and_prefix() {
        let mut d = Dataset::from_rows(vec![vec![1.0, 2.0]]);
        d.push_row(&[3.0, 4.0]);
        d.push_row(&[5.0, 6.0]);
        assert_eq!(d.nrows(), 3);
        assert_eq!(d.row(2), &[5.0, 6.0]);
        let p = d.prefix(2);
        assert_eq!(p.to_rows(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(d.prefix(0).nrows(), 0);
        assert_eq!(d.prefix(3), d);
    }

    #[test]
    #[should_panic(expected = "pushed row has length")]
    fn push_row_wrong_width_panics() {
        let mut d = Dataset::from_rows(vec![vec![1.0, 2.0]]);
        d.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "prefix of")]
    fn prefix_beyond_rows_panics() {
        let d = Dataset::from_rows(vec![vec![1.0]]);
        let _ = d.prefix(2);
    }

    #[test]
    fn roundtrip_to_rows() {
        let rows = vec![vec![0.5, -1.0, 2.0], vec![3.5, 4.0, -6.0]];
        assert_eq!(Dataset::from_rows(rows.clone()).to_rows(), rows);
    }
}
