//! Comparing two clusterings of the same intervals.
//!
//! The paper evaluates phase detection qualitatively (inspecting
//! heartbeat plots against manual instrumentation). To evaluate it
//! *quantitatively* against planted ground truth — and to score the
//! online-vs-batch and ablation comparisons — we implement the standard
//! partition-agreement measures:
//!
//! * [`rand_index`] — fraction of interval pairs on which two
//!   clusterings agree (same-cluster vs different-cluster);
//! * [`adjusted_rand_index`] — the Rand index corrected for chance
//!   (Hubert & Arabie), 1.0 for identical partitions, ≈0 for independent
//!   ones, negative for adversarial disagreement.

use std::collections::BTreeMap;

/// Number of unordered pairs of `n` items.
fn pairs(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Contingency table between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> BTreeMap<(usize, usize), u64> {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let mut table = BTreeMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *table.entry((x, y)).or_insert(0u64) += 1;
    }
    table
}

/// The (unadjusted) Rand index in `[0, 1]`.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

/// The adjusted Rand index (Hubert & Arabie).
///
/// Returns 1.0 when either labeling question is degenerate in the same
/// way (e.g. both single-cluster); by convention returns 1.0 when the
/// expected index equals the maximum index (identical trivial
/// partitions) and the partitions agree.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let table = contingency(a, b);
    let mut row_sums: BTreeMap<usize, u64> = BTreeMap::new();
    let mut col_sums: BTreeMap<usize, u64> = BTreeMap::new();
    for (&(r, c), &v) in &table {
        *row_sums.entry(r).or_insert(0) += v;
        *col_sums.entry(c).or_insert(0) += v;
    }
    let sum_comb: f64 = table.values().map(|&v| pairs(v)).sum();
    let sum_rows: f64 = row_sums.values().map(|&v| pairs(v)).sum();
    let sum_cols: f64 = col_sums.values().map(|&v| pairs(v)).sum();
    let total_pairs = pairs(n);
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. both partitions trivial): agree ⇒ 1.
        return if (sum_comb - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_comb - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(rand_index(&a, &a), 1.0);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_does_not_matter() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(rand_index(&a, &b), 1.0);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_small_case() {
        // Classic example: a = [0,0,1,1], b = [0,1,1,1].
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 1, 1];
        // Pairs: (0,1) split by b only; (2,3) together in both; (0,2),
        // (0,3) different in both; (1,2),(1,3) differ in a, same in b.
        // agree = (2,3),(0,2),(0,3) = 3 of 6.
        assert!((rand_index(&a, &b) - 0.5).abs() < 1e-12);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 0.6 && ari > -0.2, "ari {ari}");
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // Interleaved labels vs block labels over 40 items.
        let a: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let b: Vec<usize> = (0..40).map(|i| i / 20).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.1, "ari {ari}");
    }

    #[test]
    fn both_trivial_partitions_agree() {
        let a = vec![0; 10];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // All-singletons vs all-singletons.
        let s: Vec<usize> = (0..10).collect();
        assert!((adjusted_rand_index(&s, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_panic() {
        let _ = adjusted_rand_index(&[0, 1], &[0]);
    }

    #[test]
    fn ari_is_symmetric() {
        let a = vec![0, 0, 1, 1, 2, 0, 1];
        let b = vec![1, 1, 1, 0, 0, 2, 2];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }
}
