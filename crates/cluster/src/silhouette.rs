//! Silhouette coefficients for cluster-quality evaluation.
//!
//! The paper evaluated both elbow and silhouette as "established
//! quantitative methods for selecting k" (§V-A). The silhouette value of a
//! point is `(b - a) / max(a, b)` where `a` is its mean distance to its own
//! cluster's other members and `b` is the smallest mean distance to any
//! other cluster; singletons are defined to have silhouette 0.

use crate::dataset::Dataset;
use crate::distance::PairwiseDistances;

/// Per-point silhouette values for the given assignment.
///
/// `k` is taken to be `max(assignments) + 1`. Returns an empty vector when
/// there are fewer than 2 clusters (silhouette is undefined for k = 1).
///
/// Computes the pairwise-distance matrix internally; callers scoring
/// several assignments of the *same* dataset (the `select_k` sweep)
/// should build one [`PairwiseDistances`] and use
/// [`silhouette_values_pre`] instead.
pub fn silhouette_values(data: &Dataset, assignments: &[usize]) -> Vec<f64> {
    assert_eq!(data.nrows(), assignments.len(), "one assignment per row");
    silhouette_values_pre(&PairwiseDistances::euclidean_of(data), assignments)
}

/// Per-point silhouette values against a precomputed distance matrix
/// (see [`silhouette_values`]; one pool task per point block).
pub fn silhouette_values_pre(pair: &PairwiseDistances, assignments: &[usize]) -> Vec<f64> {
    assert_eq!(pair.n(), assignments.len(), "one assignment per row");
    let n = pair.n();
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    let sizes = &sizes;

    incprof_par::par_map_index(n, |i| {
        let own = assignments[i];
        if sizes[own] <= 1 {
            return 0.0; // singleton convention
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        let row = pair.row(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assignments[j]] += row[j];
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            (b - a) / denom
        } else {
            0.0
        }
    })
}

/// Mean silhouette over all points; `None` when silhouette is undefined
/// (fewer than 2 clusters or no points).
pub fn mean_silhouette(data: &Dataset, assignments: &[usize]) -> Option<f64> {
    mean_of(&silhouette_values(data, assignments))
}

/// Mean silhouette against a precomputed distance matrix.
pub fn mean_silhouette_pre(pair: &PairwiseDistances, assignments: &[usize]) -> Option<f64> {
    mean_of(&silhouette_values_pre(pair, assignments))
}

fn mean_of(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() {
        None
    } else {
        // lint: allow(D04, sequential index-order mean on the caller thread; inputs are already chunk-deterministic)
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Dataset, Vec<usize>) {
        let data = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]);
        let assign = vec![0, 0, 0, 1, 1, 1];
        (data, assign)
    }

    #[test]
    fn well_separated_clusters_score_near_one() {
        let (data, assign) = blobs();
        let mean = mean_silhouette(&data, &assign).unwrap();
        assert!(mean > 0.95, "got {mean}");
    }

    #[test]
    fn bad_assignment_scores_negative() {
        let (data, _) = blobs();
        // Deliberately split each blob across both clusters.
        let bad = vec![0, 1, 0, 1, 0, 1];
        let mean = mean_silhouette(&data, &bad).unwrap();
        assert!(mean < 0.0, "got {mean}");
    }

    #[test]
    fn values_bounded_in_unit_interval() {
        let (data, assign) = blobs();
        for v in silhouette_values(&data, &assign) {
            assert!((-1.0..=1.0).contains(&v), "silhouette {v} out of range");
        }
    }

    #[test]
    fn single_cluster_is_undefined() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![2.0]]);
        assert!(mean_silhouette(&data, &[0, 0]).is_none());
    }

    #[test]
    fn singletons_score_zero() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![5.0], vec![5.1]]);
        let vals = silhouette_values(&data, &[0, 1, 1]);
        assert_eq!(vals[0], 0.0);
        assert!(vals[1] > 0.9);
    }

    #[test]
    fn hand_computed_two_points_per_cluster() {
        // Clusters {0,1} at x=0,1 and {2,3} at x=10,11.
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let vals = silhouette_values(&data, &[0, 0, 1, 1]);
        // Point 0: a = 1 (to point 1), b = (10+11)/2 = 10.5 -> s = 9.5/10.5
        assert!((vals[0] - 9.5 / 10.5).abs() < 1e-12);
        // Point 1: a = 1, b = (9+10)/2 = 9.5 -> s = 8.5/9.5
        assert!((vals[1] - 8.5 / 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one assignment per row")]
    fn mismatched_lengths_panic() {
        let data = Dataset::from_rows(vec![vec![0.0]]);
        let _ = silhouette_values(&data, &[0, 0]);
    }

    #[test]
    fn precomputed_matrix_gives_identical_values() {
        let (data, assign) = blobs();
        let pair = PairwiseDistances::euclidean_of(&data);
        let direct = silhouette_values(&data, &assign);
        let pre = silhouette_values_pre(&pair, &assign);
        assert_eq!(direct.len(), pre.len());
        for (a, b) in direct.iter().zip(&pre) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            mean_silhouette(&data, &assign),
            mean_silhouette_pre(&pair, &assign)
        );
    }
}
