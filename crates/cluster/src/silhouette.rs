//! Silhouette coefficients for cluster-quality evaluation.
//!
//! The paper evaluated both elbow and silhouette as "established
//! quantitative methods for selecting k" (§V-A). The silhouette value of a
//! point is `(b - a) / max(a, b)` where `a` is its mean distance to its own
//! cluster's other members and `b` is the smallest mean distance to any
//! other cluster; singletons are defined to have silhouette 0.

use crate::dataset::Dataset;
use crate::distance::euclidean;

/// Per-point silhouette values for the given assignment.
///
/// `k` is taken to be `max(assignments) + 1`. Returns an empty vector when
/// there are fewer than 2 clusters (silhouette is undefined for k = 1).
pub fn silhouette_values(data: &Dataset, assignments: &[usize]) -> Vec<f64> {
    assert_eq!(data.nrows(), assignments.len(), "one assignment per row");
    let n = data.nrows();
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let own = assignments[i];
        if sizes[own] <= 1 {
            out.push(0.0); // singleton convention
            continue;
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assignments[j]] += euclidean(data.row(i), data.row(j));
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        out.push(if denom > 0.0 { (b - a) / denom } else { 0.0 });
    }
    out
}

/// Mean silhouette over all points; `None` when silhouette is undefined
/// (fewer than 2 clusters or no points).
pub fn mean_silhouette(data: &Dataset, assignments: &[usize]) -> Option<f64> {
    let vals = silhouette_values(data, assignments);
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Dataset, Vec<usize>) {
        let data = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]);
        let assign = vec![0, 0, 0, 1, 1, 1];
        (data, assign)
    }

    #[test]
    fn well_separated_clusters_score_near_one() {
        let (data, assign) = blobs();
        let mean = mean_silhouette(&data, &assign).unwrap();
        assert!(mean > 0.95, "got {mean}");
    }

    #[test]
    fn bad_assignment_scores_negative() {
        let (data, _) = blobs();
        // Deliberately split each blob across both clusters.
        let bad = vec![0, 1, 0, 1, 0, 1];
        let mean = mean_silhouette(&data, &bad).unwrap();
        assert!(mean < 0.0, "got {mean}");
    }

    #[test]
    fn values_bounded_in_unit_interval() {
        let (data, assign) = blobs();
        for v in silhouette_values(&data, &assign) {
            assert!((-1.0..=1.0).contains(&v), "silhouette {v} out of range");
        }
    }

    #[test]
    fn single_cluster_is_undefined() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![2.0]]);
        assert!(mean_silhouette(&data, &[0, 0]).is_none());
    }

    #[test]
    fn singletons_score_zero() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![5.0], vec![5.1]]);
        let vals = silhouette_values(&data, &[0, 1, 1]);
        assert_eq!(vals[0], 0.0);
        assert!(vals[1] > 0.9);
    }

    #[test]
    fn hand_computed_two_points_per_cluster() {
        // Clusters {0,1} at x=0,1 and {2,3} at x=10,11.
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let vals = silhouette_values(&data, &[0, 0, 1, 1]);
        // Point 0: a = 1 (to point 1), b = (10+11)/2 = 10.5 -> s = 9.5/10.5
        assert!((vals[0] - 9.5 / 10.5).abs() < 1e-12);
        // Point 1: a = 1, b = (9+10)/2 = 9.5 -> s = 8.5/9.5
        assert!((vals[1] - 8.5 / 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one assignment per row")]
    fn mismatched_lengths_panic() {
        let data = Dataset::from_rows(vec![vec![0.0]]);
        let _ = silhouette_values(&data, &[0, 0]);
    }
}
