//! Incremental k-sweep: warm-started per-row k-means chains.
//!
//! The batch sweep in [`mod@crate::select_k`] re-runs best-of-restarts
//! k-means from k-means++ seeds for every k, every time — even when the
//! dataset grew by a single interval since the last analysis. Warm
//! queries in the IncProf serve path pay that full cost on every push.
//!
//! Warm-starting the *batch* definition on grown data cannot be
//! byte-identical to re-running it: k-means++ consumes RNG draws against
//! every row, so adding one row perturbs every restart. Instead this
//! module defines the clustering as a **canonical left fold** over the
//! rows, which is what actually runs on both the cold and the warm path:
//!
//! * **Base case** (t = k): best-of-restarts batch [`kmeans`] on the
//!   first k rows.
//! * **Step** (t → t+1): one warm Lloyd run ([`kmeans_warm`]) over the
//!   grown prefix, starting from the previous converged centroids —
//!   typically one or two iterations, with the Hamerly bounds skipping
//!   most points.
//! * **Review** (t divisible by [`ChainConfig::review_every`]): a few
//!   fresh single-restart k-means++ candidates, seeded by
//!   `review_seed(seed, k, t, c)`, compete with the incumbent; a
//!   candidate replaces it only on *strictly* lower WCSS (ties keep the
//!   incumbent). Reviews bound how far the greedy warm path can drift
//!   from a good optimum as the data grows.
//!
//! The fold state at prefix length t is a pure function of the prefix
//! and the configuration — independent of the query pattern. A chain
//! that was left behind (e.g. because an early-exited sweep never
//! touched its k) simply replays the missed rows the next time it is
//! needed and lands in the identical state. That purity is what makes
//! the analysis cache's byte-identical-or-abandoned discipline hold:
//! cold (fold from scratch) and warm (continue cached chains) produce
//! the same bits at every prefix.

use crate::dataset::Dataset;
use crate::distance::PairwiseDistances;
use crate::kmeans::{kmeans, kmeans_warm, KMeansConfig, KMeansResult};
use crate::select_k::{elbow_index, silhouette_index, KSelection, KSelectionMethod, KSweep};
use crate::silhouette::mean_silhouette_pre;

/// Configuration of the incremental fold. Must stay fixed for the
/// lifetime of a [`SweepChains`]; callers key cached chains by a
/// fingerprint that covers every field here.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Base k-means configuration (its `k` is overridden per chain).
    pub base: KMeansConfig,
    /// Run reviews whenever the prefix length is a positive multiple of
    /// this. `0` disables reviews entirely.
    pub review_every: usize,
    /// Number of fresh single-restart candidates per review.
    pub review_candidates: usize,
}

impl ChainConfig {
    /// Default review cadence over a base k-means configuration.
    pub fn new(base: KMeansConfig) -> ChainConfig {
        ChainConfig {
            base,
            review_every: 16,
            review_candidates: 2,
        }
    }
}

/// The fold state for one value of k: the converged clustering of the
/// first [`KChain::covered`] rows.
#[derive(Debug, Clone, PartialEq)]
pub struct KChain {
    /// The number of clusters this chain tracks.
    pub k: usize,
    /// How many rows of the series the state covers.
    pub covered: usize,
    /// The converged clustering of the covered prefix.
    pub last: KMeansResult,
}

impl KChain {
    /// Base case of the fold: batch best-of-restarts k-means on the
    /// first `k` rows.
    pub fn start(data: &Dataset, k: usize, cfg: &ChainConfig) -> KChain {
        assert!(
            data.nrows() >= k,
            "cannot start a k={k} chain on {} rows",
            data.nrows()
        );
        let base = KMeansConfig {
            k,
            ..cfg.base.clone()
        };
        let prefix = data.prefix(k);
        let last = kmeans(&prefix, &base);
        KChain {
            k,
            covered: k,
            last,
        }
    }

    /// Replay the fold steps from `covered` up to prefix length `t`,
    /// one appended row at a time. A no-op when already caught up.
    ///
    /// # Panics
    /// Panics if the chain covers more rows than `t` — a shrinking
    /// series invalidates the fold and the chains must be reset by the
    /// caller, never rewound.
    pub fn advance(&mut self, data: &Dataset, t: usize, cfg: &ChainConfig) {
        assert!(
            self.covered <= t,
            "chain for k={} covers {} rows but the series has {t}; \
             chains must be reset when the series shrinks",
            self.k,
            self.covered
        );
        assert!(t <= data.nrows());
        while self.covered < t {
            let u = self.covered + 1;
            let prefix = data.prefix(u);
            let base = KMeansConfig {
                k: self.k,
                ..cfg.base.clone()
            };
            let mut best = kmeans_warm(&prefix, &base, &self.last.centroids);
            if cfg.review_every > 0 && u.is_multiple_of(cfg.review_every) {
                for c in 0..cfg.review_candidates {
                    let cand_cfg = KMeansConfig {
                        k: self.k,
                        restarts: 1,
                        seed: review_seed(cfg.base.seed, self.k, u, c),
                        ..cfg.base.clone()
                    };
                    let cand = kmeans(&prefix, &cand_cfg);
                    // Strictly better only: ties keep the incumbent, so
                    // the winner is unambiguous and replay-stable.
                    if cand.wcss < best.wcss {
                        best = cand;
                    }
                }
            }
            self.last = best;
            self.covered = u;
        }
    }
}

/// Deterministic per-(k, t, candidate) seed for review candidates
/// (SplitMix64 finalizer over a weighed sum of the coordinates).
fn review_seed(seed: u64, k: usize, t: usize, c: usize) -> u64 {
    let mut z = seed
        .wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((t as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((c as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// All per-k chains of an incremental sweep. Index `i` holds the chain
/// for k = i + 1; the vector grows as larger k's become reachable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepChains {
    /// The chains, in k order (`chains[i].k == i + 1`).
    pub chains: Vec<KChain>,
}

impl SweepChains {
    /// Empty chain set (a cold fold starts here).
    pub fn new() -> SweepChains {
        SweepChains::default()
    }

    /// Whether no chain state exists yet.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Drop all chain state (the fold restarts from scratch).
    pub fn clear(&mut self) {
        self.chains.clear();
    }

    /// Re-align cached centroids to a grown feature space: old column
    /// `j` moves to `old_to_new[j]`, every other column is filled with
    /// `+0.0`.
    ///
    /// This is bit-preserving for the fold *provided* the new columns
    /// are exactly `+0.0` in every already-covered row (the caller must
    /// verify that; reset the chains otherwise): re-running the fold on
    /// the widened data computes every squared distance with extra
    /// `(0-0)²` terms interleaved, and adding `+0.0` to a non-negative
    /// partial sum is a bitwise no-op — the same argument that lets
    /// [`PairwiseDistances::extend`] keep old entries. Centroid means
    /// gain all-zero columns, which average to exactly `+0.0`.
    ///
    /// # Panics
    /// Panics if the mapping is not strictly increasing (reordering
    /// surviving columns would change summation order, which is *not*
    /// bit-preserving), does not match the current width, or overflows
    /// `d_new`.
    pub fn remap_columns(&mut self, old_to_new: &[usize], d_new: usize) {
        assert!(
            old_to_new.windows(2).all(|w| w[0] < w[1]),
            "column remap must be strictly increasing"
        );
        if let Some(&last) = old_to_new.last() {
            assert!(
                last < d_new,
                "column remap targets column {last} but the new width is {d_new}"
            );
        }
        for chain in &mut self.chains {
            assert_eq!(
                chain.last.centroids.ncols(),
                old_to_new.len(),
                "column remap covers {} columns but chain k={} has {}",
                old_to_new.len(),
                chain.k,
                chain.last.centroids.ncols()
            );
            let k = chain.last.centroids.nrows();
            let mut wide = Dataset::zeros(k, d_new);
            for c in 0..k {
                for (j, &nj) in old_to_new.iter().enumerate() {
                    wide.set(c, nj, chain.last.centroids.get(c, j));
                }
            }
            chain.last.centroids = wide;
        }
    }

    /// Advance every needed chain to cover all of `data` and select k,
    /// mirroring [`crate::select_k::select_k_pre`]'s contract (shared
    /// pairwise matrix, spans, deterministic pool fan-out) over the fold
    /// semantics.
    ///
    /// With `early_exit` and the [`KSelectionMethod::Silhouette`]
    /// method, the sweep stops after the mean silhouette has strictly
    /// decreased twice in a row (over the defined entries — k = 1 has
    /// none): the sweep arrays are truncated at that k, identically on
    /// cold and warm runs, and untouched chains catch up whenever a
    /// later sweep reaches them. The elbow method always sweeps the full
    /// range — it needs the first-to-last WCSS chord.
    pub fn evaluate(
        &mut self,
        data: &Dataset,
        k_max: usize,
        method: KSelectionMethod,
        cfg: &ChainConfig,
        shared: Option<&PairwiseDistances>,
        early_exit: bool,
    ) -> KSelection {
        let _sweep_span = incprof_obs::span(incprof_obs::names::CLUSTER_SELECT_K_SWEEP);
        let n = data.nrows();
        assert!(n >= 1, "cannot sweep an empty dataset");
        let cap = k_max.min(n).max(1);
        if let Some(p) = shared {
            assert_eq!(
                p.n(),
                n,
                "shared pairwise matrix covers {} rows, data has {}",
                p.n(),
                n
            );
        }
        let built: Option<PairwiseDistances> = if cap >= 2 && shared.is_none() {
            let _pair_span = incprof_obs::span(incprof_obs::names::CLUSTER_SELECT_K_PAIRWISE);
            Some(PairwiseDistances::euclidean_of(data))
        } else {
            None
        };
        let pair: Option<&PairwiseDistances> = if cap >= 2 {
            shared.or(built.as_ref())
        } else {
            None
        };

        let use_early = early_exit && method == KSelectionMethod::Silhouette;
        let evaluated: Vec<(KChain, Option<f64>)> = if use_early {
            let mut evaluated = Vec::with_capacity(cap);
            let mut defined: Vec<f64> = Vec::new();
            for i in 0..cap {
                let (chain, sil) = eval_one(data, cfg, pair, i + 1, self.chains.get(i), n);
                evaluated.push((chain, sil));
                if let Some(v) = sil {
                    defined.push(v);
                }
                let m = defined.len();
                if m >= 3 && defined[m - 1] < defined[m - 2] && defined[m - 2] < defined[m - 3] {
                    break;
                }
            }
            evaluated
        } else {
            // Per-k chains advance independently; fan out one pool task
            // per k exactly like the batch sweep (bit-identical at any
            // worker count — each task reads only its own chain).
            let chains = &self.chains;
            incprof_par::Pool::current().map_index(cap, 1, |i| {
                eval_one(data, cfg, pair, i + 1, chains.get(i), n)
            })
        };

        let mut sweep = KSweep {
            ks: Vec::with_capacity(evaluated.len()),
            results: Vec::with_capacity(evaluated.len()),
            wcss: Vec::with_capacity(evaluated.len()),
            silhouettes: Vec::with_capacity(evaluated.len()),
        };
        for (i, (chain, sil)) in evaluated.into_iter().enumerate() {
            sweep.ks.push(i + 1);
            sweep.wcss.push(chain.last.wcss);
            sweep.silhouettes.push(sil);
            sweep.results.push(chain.last.clone());
            if i < self.chains.len() {
                self.chains[i] = chain;
            } else {
                self.chains.push(chain);
            }
        }
        let idx = match method {
            KSelectionMethod::Elbow => elbow_index(&sweep.wcss),
            KSelectionMethod::Silhouette => silhouette_index(&sweep.silhouettes),
        };
        KSelection {
            k: sweep.ks[idx],
            result: sweep.results[idx].clone(),
            method,
            sweep,
        }
    }
}

/// Advance (or start) the chain for one k and score its silhouette.
fn eval_one(
    data: &Dataset,
    cfg: &ChainConfig,
    pair: Option<&PairwiseDistances>,
    k: usize,
    existing: Option<&KChain>,
    t: usize,
) -> (KChain, Option<f64>) {
    let _k_span = incprof_obs::span(incprof_obs::names::cluster_select_k_k(k));
    let mut chain = match existing {
        Some(c) => c.clone(),
        None => KChain::start(data, k, cfg),
    };
    chain.advance(data, t, cfg);
    let sil = match (pair, k >= 2) {
        (Some(pair), true) => mean_silhouette_pre(pair, &chain.last.assignments),
        _ => None,
    };
    (chain, sil)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(c: usize, per: usize) -> Dataset {
        let mut rows = Vec::new();
        for b in 0..c {
            let base = 100.0 * b as f64;
            for i in 0..per {
                rows.push(vec![base + 0.01 * i as f64, base - 0.01 * i as f64]);
            }
        }
        Dataset::from_rows(rows)
    }

    fn cfg() -> ChainConfig {
        let mut c = ChainConfig::new(KMeansConfig::new(0));
        c.review_every = 4; // exercise reviews on small test data
        c
    }

    fn assert_chains_bit_equal(a: &SweepChains, b: &SweepChains) {
        assert_eq!(a.chains.len(), b.chains.len());
        for (ca, cb) in a.chains.iter().zip(&b.chains) {
            assert_eq!(ca.k, cb.k);
            assert_eq!(ca.covered, cb.covered);
            assert_eq!(ca.last.assignments, cb.last.assignments);
            assert_eq!(ca.last.wcss.to_bits(), cb.last.wcss.to_bits());
            for c in 0..ca.k {
                for (x, y) in ca
                    .last
                    .centroids
                    .row(c)
                    .iter()
                    .zip(cb.last.centroids.row(c))
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "k={} centroid {c}", ca.k);
                }
            }
        }
    }

    /// The fold state at prefix t must not depend on which prefixes were
    /// queried along the way: evaluating at every t and jumping straight
    /// to the end land in bit-identical states and selections.
    #[test]
    fn fold_is_query_pattern_independent() {
        let data = blobs(3, 6);
        let cfg = cfg();
        let mut step_wise = SweepChains::new();
        let mut sel_a = None;
        for t in 1..=data.nrows() {
            let prefix = data.prefix(t);
            sel_a = Some(step_wise.evaluate(
                &prefix,
                8,
                KSelectionMethod::Silhouette,
                &cfg,
                None,
                false,
            ));
        }
        let mut one_shot = SweepChains::new();
        let sel_b = one_shot.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        assert_chains_bit_equal(&step_wise, &one_shot);
        let sel_a = sel_a.unwrap();
        assert_eq!(sel_a.k, sel_b.k);
        assert_eq!(sel_a.result.assignments, sel_b.result.assignments);
        assert_eq!(sel_a.result.wcss.to_bits(), sel_b.result.wcss.to_bits());
        for (a, b) in sel_a.sweep.wcss.iter().zip(&sel_b.sweep.wcss) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in sel_a.sweep.silhouettes.iter().zip(&sel_b.sweep.silhouettes) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    /// The fold finds the planted structure (sanity: the incremental
    /// semantics still cluster well, reviews and all).
    #[test]
    fn fold_finds_three_blobs() {
        let data = blobs(3, 6);
        let mut chains = SweepChains::new();
        let sel = chains.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg(), None, false);
        assert_eq!(sel.k, 3);
        let sel = chains.evaluate(&data, 8, KSelectionMethod::Elbow, &cfg(), None, false);
        assert_eq!(sel.k, 3);
    }

    /// Early exit stops after two consecutive strict silhouette drops,
    /// truncating the sweep identically on cold and warm paths; chains
    /// skipped by the exit catch up when a later sweep needs them.
    #[test]
    fn early_exit_truncates_deterministically() {
        let data = blobs(2, 8);
        let cfg = cfg();
        let mut warm = SweepChains::new();
        // Warm the chains over a shorter prefix first (early-exited too).
        warm.evaluate(
            &data.prefix(10),
            8,
            KSelectionMethod::Silhouette,
            &cfg,
            None,
            true,
        );
        let sel_warm = warm.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg, None, true);
        let mut cold = SweepChains::new();
        let sel_cold = cold.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg, None, true);
        assert_eq!(sel_warm.k, sel_cold.k);
        assert_eq!(sel_warm.k, 2, "two planted blobs");
        assert_eq!(sel_warm.sweep.ks, sel_cold.sweep.ks);
        assert!(
            sel_warm.sweep.ks.len() < 8,
            "silhouette collapse on two clean blobs should exit before k_max"
        );
        for (a, b) in sel_warm
            .sweep
            .silhouettes
            .iter()
            .zip(&sel_cold.sweep.silhouettes)
        {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
        // A full (non-early) sweep afterwards catches the skipped chains
        // up and still agrees with a cold full sweep.
        let sel_full_warm =
            warm.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        let mut cold_full = SweepChains::new();
        let sel_full_cold =
            cold_full.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        assert_eq!(sel_full_warm.sweep.ks.len(), 8);
        assert_chains_bit_equal(&warm, &cold_full);
        assert_eq!(sel_full_warm.k, sel_full_cold.k);
    }

    /// The elbow method needs the full WCSS chord, so `early_exit` must
    /// not truncate it.
    #[test]
    fn elbow_ignores_early_exit() {
        let data = blobs(2, 8);
        let mut chains = SweepChains::new();
        let sel = chains.evaluate(&data, 8, KSelectionMethod::Elbow, &cfg(), None, true);
        assert_eq!(sel.sweep.ks.len(), 8);
    }

    /// Re-aligning chains to a grown feature space (new all-zero columns
    /// in the covered prefix) is bit-identical to folding the widened
    /// data from scratch.
    #[test]
    fn remap_columns_preserves_fold_bits() {
        let old = blobs(2, 6);
        let cfg = cfg();
        let mut warm = SweepChains::new();
        warm.evaluate(&old, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        // Widen: insert a zero column in the middle, append one new row
        // that actually uses it.
        let mut rows: Vec<Vec<f64>> = old.iter_rows().map(|r| vec![r[0], 0.0, r[1]]).collect();
        rows.push(vec![50.0, 7.5, 50.0]);
        let new = Dataset::from_rows(rows);
        warm.remap_columns(&[0, 2], 3);
        let sel_warm = warm.evaluate(&new, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        let mut cold = SweepChains::new();
        let sel_cold = cold.evaluate(&new, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        assert_chains_bit_equal(&warm, &cold);
        assert_eq!(sel_warm.k, sel_cold.k);
        assert_eq!(sel_warm.result.assignments, sel_cold.result.assignments);
    }

    #[test]
    #[should_panic(expected = "chains must be reset when the series shrinks")]
    fn shrinking_series_panics() {
        let data = blobs(2, 4);
        let mut chains = SweepChains::new();
        chains.evaluate(&data, 4, KSelectionMethod::Elbow, &cfg(), None, false);
        let short = data.prefix(3);
        chains.evaluate(&short, 4, KSelectionMethod::Elbow, &cfg(), None, false);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn remap_rejects_reordering() {
        let data = blobs(2, 4);
        let mut chains = SweepChains::new();
        chains.evaluate(&data, 4, KSelectionMethod::Elbow, &cfg(), None, false);
        chains.remap_columns(&[1, 0], 3);
    }

    /// A shared pairwise matrix changes no bits (same contract as the
    /// batch sweep).
    #[test]
    fn shared_pairwise_matrix_gives_bit_identical_fold() {
        let data = blobs(3, 5);
        let cfg = cfg();
        let mut a = SweepChains::new();
        let sa = a.evaluate(&data, 8, KSelectionMethod::Silhouette, &cfg, None, false);
        let pair = PairwiseDistances::euclidean_of(&data);
        let mut b = SweepChains::new();
        let sb = b.evaluate(
            &data,
            8,
            KSelectionMethod::Silhouette,
            &cfg,
            Some(&pair),
            false,
        );
        assert_chains_bit_equal(&a, &b);
        assert_eq!(sa.k, sb.k);
        for (x, y) in sa.sweep.silhouettes.iter().zip(&sb.sweep.silhouettes) {
            assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
        }
    }
}
