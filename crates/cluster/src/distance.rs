//! Distance functions over feature vectors.
//!
//! k-means in the paper is the ordinary Euclidean variant — "the simple
//! distance-based clustering of k-means is applicable" (§V-A) — so squared
//! Euclidean distance is the workhorse here.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics (debug) if the slices have different lengths.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // lint: allow(D04, per-pair accumulation over feature dimensions in index order; no parallel split crosses this sum)
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance, provided for feature-ablation experiments.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // lint: allow(D04, per-pair accumulation over feature dimensions in index order; no parallel split crosses this sum)
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A dense `n × n` matrix of Euclidean distances between dataset rows,
/// computed row-parallel on the [`incprof_par`] pool.
///
/// Silhouette scoring (and any other all-pairs consumer) is quadratic in
/// the interval count either way; materializing the matrix once lets the
/// `select_k` sweep share it across every k ≥ 2 instead of recomputing
/// the same `n²` distances per candidate k. Entry `(i, j)` is exactly
/// `euclidean(data.row(i), data.row(j))` — same operands, same order —
/// so downstream sums are bit-identical to the on-the-fly formulation.
#[derive(Debug, Clone)]
pub struct PairwiseDistances {
    n: usize,
    dist: Vec<f64>,
}

impl Default for PairwiseDistances {
    fn default() -> Self {
        PairwiseDistances::empty()
    }
}

impl PairwiseDistances {
    /// An empty `0 × 0` matrix — the starting point for incremental
    /// growth via [`PairwiseDistances::extend`].
    pub fn empty() -> PairwiseDistances {
        PairwiseDistances {
            n: 0,
            dist: Vec::new(),
        }
    }

    /// Compute all pairwise Euclidean distances of `data`'s rows, one
    /// pool task per row block.
    pub fn euclidean_of(data: &crate::dataset::Dataset) -> PairwiseDistances {
        let n = data.nrows();
        let rows: Vec<Vec<f64>> = incprof_par::par_map_index(n, |i| {
            (0..n)
                .map(|j| euclidean(data.row(i), data.row(j)))
                .collect()
        });
        let mut dist = Vec::with_capacity(n * n);
        for row in rows {
            dist.extend(row);
        }
        PairwiseDistances { n, dist }
    }

    /// Grow the matrix in place to cover all of `data`'s rows, computing
    /// only the entries a previous [`PairwiseDistances::euclidean_of`]
    /// (or `extend`) call has not already produced.
    ///
    /// Contract: the first `self.n()` rows of `data` must be bit-identical
    /// to the rows this matrix was computed from (callers such as
    /// `incprof_core`'s analysis cache verify this before extending).
    /// Existing entries are *copied*, not recomputed, and every new entry
    /// `(i, j)` is exactly `euclidean(data.row(i), data.row(j))` — the
    /// same operands in the same order as a cold rebuild — so the
    /// extended matrix is bit-identical to `euclidean_of(data)` while
    /// costing O((m² − n²)·d) instead of O(m²·d).
    pub fn extend(&mut self, data: &crate::dataset::Dataset) {
        let n = self.n;
        let m = data.nrows();
        debug_assert!(m >= n, "extend cannot shrink a matrix: {m} < {n}");
        if m <= n {
            return;
        }
        let old = std::mem::take(&mut self.dist);
        let rows: Vec<Vec<f64>> = incprof_par::par_map_index(m, |i| {
            let mut row = Vec::with_capacity(m);
            if i < n {
                // Old pair: reuse the already-computed entries verbatim.
                row.extend_from_slice(&old[i * n..i * n + n]);
            } else {
                row.extend((0..n).map(|j| euclidean(data.row(i), data.row(j))));
            }
            row.extend((n..m).map(|j| euclidean(data.row(i), data.row(j))));
            row
        });
        let mut dist = Vec::with_capacity(m * m);
        for row in rows {
            dist.extend(row);
        }
        self.n = m;
        self.dist = dist;
    }

    /// Number of rows (and columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between rows `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.n + j]
    }

    /// The distances from row `i` to every row, as a slice of length `n`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.dist[i * self.n..(i + 1) * self.n]
    }

    /// The raw row-major `n × n` entries, for checkpoint serialization
    /// (`incprof_core`'s analysis cache persists the matrix so a
    /// rehydrated session skips the O(n²·d) cold rebuild).
    pub fn as_flat(&self) -> &[f64] {
        &self.dist
    }

    /// Rebuild a matrix from previously serialized parts. Returns `None`
    /// when `dist.len()` is not exactly `n²` — a truncated or corrupt
    /// checkpoint must fail closed rather than panic on `get`.
    pub fn from_flat(n: usize, dist: Vec<f64>) -> Option<PairwiseDistances> {
        if dist.len() != n.checked_mul(n)? {
            return None;
        }
        Some(PairwiseDistances { n, dist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_hand_case() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let v = [1.5, -2.5, 3.25];
        assert_eq!(sq_euclidean(&v, &v), 0.0);
        assert_eq!(manhattan(&v, &v), 0.0);
    }

    #[test]
    fn manhattan_hand_case() {
        assert_eq!(manhattan(&[1.0, 2.0], &[4.0, -2.0]), 7.0);
    }

    #[test]
    fn symmetry() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
        assert_eq!(manhattan(&a, &b), manhattan(&b, &a));
    }

    #[test]
    fn empty_vectors_have_zero_distance() {
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn pairwise_matches_direct_distances() {
        let data = crate::dataset::Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![-1.0, 1.0],
        ]);
        let pair = PairwiseDistances::euclidean_of(&data);
        assert_eq!(pair.n(), 3);
        for i in 0..3 {
            for j in 0..3 {
                let direct = euclidean(data.row(i), data.row(j));
                assert_eq!(pair.get(i, j).to_bits(), direct.to_bits());
            }
        }
        assert_eq!(pair.get(0, 1), 5.0);
        assert_eq!(pair.row(1).len(), 3);
    }

    /// Deterministic pseudo-random rows (no RNG dependency needed).
    fn synth_rows(n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| ((i * 31 + j * 7 + 3) % 17) as f64 * 0.37 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn extend_is_bit_identical_to_cold_rebuild() {
        let rows = synth_rows(9, 4);
        let head = crate::dataset::Dataset::from_rows(rows[..5].to_vec());
        let full = crate::dataset::Dataset::from_rows(rows);
        let mut pair = PairwiseDistances::euclidean_of(&head);
        pair.extend(&full);
        let cold = PairwiseDistances::euclidean_of(&full);
        assert_eq!(pair.n(), cold.n());
        for i in 0..cold.n() {
            for j in 0..cold.n() {
                assert_eq!(pair.get(i, j).to_bits(), cold.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn extend_from_empty_matches_euclidean_of() {
        let data = crate::dataset::Dataset::from_rows(synth_rows(6, 3));
        let mut pair = PairwiseDistances::empty();
        assert_eq!(pair.n(), 0);
        pair.extend(&data);
        let cold = PairwiseDistances::euclidean_of(&data);
        for i in 0..6 {
            assert_eq!(pair.row(i), cold.row(i));
        }
    }

    #[test]
    fn extend_with_appended_zero_columns_preserves_old_entries() {
        // New feature columns appear as intervals arrive; old rows gain
        // zero-valued entries. Adding (0-0)² terms to a non-negative sum
        // is bit-preserving, so old-pair distances must not move.
        let old_rows = synth_rows(4, 3);
        let mut new_rows: Vec<Vec<f64>> = old_rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.insert(1, 0.0); // column inserted mid-row (id order)
                r.push(0.0); // and appended at the end
                r
            })
            .collect();
        new_rows.push(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut pair =
            PairwiseDistances::euclidean_of(&crate::dataset::Dataset::from_rows(old_rows));
        let full = crate::dataset::Dataset::from_rows(new_rows);
        pair.extend(&full);
        let cold = PairwiseDistances::euclidean_of(&full);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(pair.get(i, j).to_bits(), cold.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn extend_same_size_is_a_no_op() {
        let data = crate::dataset::Dataset::from_rows(synth_rows(5, 2));
        let mut pair = PairwiseDistances::euclidean_of(&data);
        let before = pair.clone();
        pair.extend(&data);
        assert_eq!(pair.n(), before.n());
        for i in 0..5 {
            assert_eq!(pair.row(i), before.row(i));
        }
    }
}
