//! Distance functions over feature vectors.
//!
//! k-means in the paper is the ordinary Euclidean variant — "the simple
//! distance-based clustering of k-means is applicable" (§V-A) — so squared
//! Euclidean distance is the workhorse here.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics (debug) if the slices have different lengths.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // lint: allow(D04, per-pair accumulation over feature dimensions in index order; no parallel split crosses this sum)
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance, provided for feature-ablation experiments.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // lint: allow(D04, per-pair accumulation over feature dimensions in index order; no parallel split crosses this sum)
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A dense `n × n` matrix of Euclidean distances between dataset rows,
/// computed row-parallel on the [`incprof_par`] pool.
///
/// Silhouette scoring (and any other all-pairs consumer) is quadratic in
/// the interval count either way; materializing the matrix once lets the
/// `select_k` sweep share it across every k ≥ 2 instead of recomputing
/// the same `n²` distances per candidate k. Entry `(i, j)` is exactly
/// `euclidean(data.row(i), data.row(j))` — same operands, same order —
/// so downstream sums are bit-identical to the on-the-fly formulation.
#[derive(Debug, Clone)]
pub struct PairwiseDistances {
    n: usize,
    dist: Vec<f64>,
}

impl PairwiseDistances {
    /// Compute all pairwise Euclidean distances of `data`'s rows, one
    /// pool task per row block.
    pub fn euclidean_of(data: &crate::dataset::Dataset) -> PairwiseDistances {
        let n = data.nrows();
        let rows: Vec<Vec<f64>> = incprof_par::par_map_index(n, |i| {
            (0..n)
                .map(|j| euclidean(data.row(i), data.row(j)))
                .collect()
        });
        let mut dist = Vec::with_capacity(n * n);
        for row in rows {
            dist.extend(row);
        }
        PairwiseDistances { n, dist }
    }

    /// Number of rows (and columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between rows `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.n + j]
    }

    /// The distances from row `i` to every row, as a slice of length `n`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.dist[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_hand_case() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let v = [1.5, -2.5, 3.25];
        assert_eq!(sq_euclidean(&v, &v), 0.0);
        assert_eq!(manhattan(&v, &v), 0.0);
    }

    #[test]
    fn manhattan_hand_case() {
        assert_eq!(manhattan(&[1.0, 2.0], &[4.0, -2.0]), 7.0);
    }

    #[test]
    fn symmetry() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
        assert_eq!(manhattan(&a, &b), manhattan(&b, &a));
    }

    #[test]
    fn empty_vectors_have_zero_distance() {
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn pairwise_matches_direct_distances() {
        let data = crate::dataset::Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![-1.0, 1.0],
        ]);
        let pair = PairwiseDistances::euclidean_of(&data);
        assert_eq!(pair.n(), 3);
        for i in 0..3 {
            for j in 0..3 {
                let direct = euclidean(data.row(i), data.row(j));
                assert_eq!(pair.get(i, j).to_bits(), direct.to_bits());
            }
        }
        assert_eq!(pair.get(0, 1), 5.0);
        assert_eq!(pair.row(1).len(), 3);
    }
}
