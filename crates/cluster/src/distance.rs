//! Distance functions over feature vectors.
//!
//! k-means in the paper is the ordinary Euclidean variant — "the simple
//! distance-based clustering of k-means is applicable" (§V-A) — so squared
//! Euclidean distance is the workhorse here.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics (debug) if the slices have different lengths.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance, provided for feature-ablation experiments.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_hand_case() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let v = [1.5, -2.5, 3.25];
        assert_eq!(sq_euclidean(&v, &v), 0.0);
        assert_eq!(manhattan(&v, &v), 0.0);
    }

    #[test]
    fn manhattan_hand_case() {
        assert_eq!(manhattan(&[1.0, 2.0], &[4.0, -2.0]), 7.0);
    }

    #[test]
    fn symmetry() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
        assert_eq!(manhattan(&a, &b), manhattan(&b, &a));
    }

    #[test]
    fn empty_vectors_have_zero_distance() {
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
    }
}
