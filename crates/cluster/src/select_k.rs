//! Choosing the number of clusters k.
//!
//! The paper runs k-means for k = 1..8 and uses the *elbow* method to pick
//! the best k (§V-A), noting that no application needed more than five
//! phases. The elbow here is computed geometrically: plot WCSS against k,
//! draw the chord from the first to the last point, and pick the k whose
//! point lies farthest below the chord (the "kneedle" construction). The
//! silhouette criterion (maximize mean silhouette, k ≥ 2) is provided as
//! the alternative the paper also evaluated.

use crate::dataset::Dataset;
use crate::distance::PairwiseDistances;
use crate::kmeans::{kmeans, KMeansConfig, KMeansResult};
use crate::silhouette::mean_silhouette_pre;

/// Which criterion picks k.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KSelectionMethod {
    /// Maximum distance below the WCSS chord (the paper's choice).
    #[default]
    Elbow,
    /// Maximum mean silhouette over k ≥ 2.
    Silhouette,
}

/// The per-k measurements from a sweep.
#[derive(Debug, Clone)]
pub struct KSweep {
    /// The k values swept (1..=k_max, capped at n).
    pub ks: Vec<usize>,
    /// k-means result per k.
    pub results: Vec<KMeansResult>,
    /// WCSS per k.
    pub wcss: Vec<f64>,
    /// Mean silhouette per k (`None` for k = 1).
    pub silhouettes: Vec<Option<f64>>,
}

/// The outcome of k selection.
#[derive(Debug, Clone)]
pub struct KSelection {
    /// The chosen k.
    pub k: usize,
    /// The winning clustering.
    pub result: KMeansResult,
    /// The method that chose it.
    pub method: KSelectionMethod,
    /// All per-k measurements, for reporting and ablations.
    pub sweep: KSweep,
}

/// Sweep k = 1..=`k_max` (capped at the number of points) and return all
/// per-k measurements.
///
/// The per-k runs are independent, so the sweep fans out one
/// [`incprof_par`] pool task per k (self-scheduled — the expensive large
/// k's do not stall the cheap ones) after computing the pairwise-distance
/// matrix once for every silhouette evaluation. Results are assembled in
/// k order and are bit-identical for any worker count.
pub fn sweep_k(data: &Dataset, k_max: usize, base: &KMeansConfig) -> KSweep {
    sweep_k_pre(data, k_max, base, None)
}

/// [`sweep_k`] with an optional precomputed pairwise-distance matrix.
///
/// When `shared` is `Some`, it must cover exactly `data`'s rows
/// (`shared.n() == data.nrows()`) with entries equal to
/// `euclidean(data.row(i), data.row(j))`; the sweep then skips its own
/// O(n²·d) matrix build and the silhouette sums consume the shared
/// entries — bit-identical to the cold path, since
/// [`PairwiseDistances::euclidean_of`] produces exactly those entries.
/// This is the hook `incprof_core`'s incremental analysis cache uses to
/// reuse distance work across streamed queries.
pub fn sweep_k_pre(
    data: &Dataset,
    k_max: usize,
    base: &KMeansConfig,
    shared: Option<&PairwiseDistances>,
) -> KSweep {
    let _sweep_span = incprof_obs::span(incprof_obs::names::CLUSTER_SELECT_K_SWEEP);
    let cap = k_max.min(data.nrows()).max(1);
    if let Some(p) = shared {
        assert_eq!(
            p.n(),
            data.nrows(),
            "shared pairwise matrix covers {} rows, data has {}",
            p.n(),
            data.nrows()
        );
    }
    let built: Option<PairwiseDistances> = if cap >= 2 && shared.is_none() {
        let _pair_span = incprof_obs::span(incprof_obs::names::CLUSTER_SELECT_K_PAIRWISE);
        Some(PairwiseDistances::euclidean_of(data))
    } else {
        None
    };
    let pair: Option<&PairwiseDistances> = if cap >= 2 {
        shared.or(built.as_ref())
    } else {
        None
    };
    let per_k: Vec<(KMeansResult, Option<f64>)> =
        incprof_par::Pool::current().map_index(cap, 1, |i| {
            let k = i + 1;
            let _k_span = incprof_obs::span(incprof_obs::names::cluster_select_k_k(k));
            let cfg = KMeansConfig { k, ..base.clone() };
            let res = kmeans(data, &cfg);
            let sil = match (pair, k >= 2) {
                (Some(pair), true) => mean_silhouette_pre(pair, &res.assignments),
                _ => None,
            };
            (res, sil)
        });
    let mut sweep = KSweep {
        ks: Vec::with_capacity(cap),
        results: Vec::with_capacity(cap),
        wcss: Vec::with_capacity(cap),
        silhouettes: Vec::with_capacity(cap),
    };
    for (i, (res, sil)) in per_k.into_iter().enumerate() {
        sweep.ks.push(i + 1);
        sweep.wcss.push(res.wcss);
        sweep.silhouettes.push(sil);
        sweep.results.push(res);
    }
    sweep
}

/// Select k for `data` by the given method, sweeping k = 1..=`k_max`.
///
/// The paper uses `k_max = 8`: "we run k-means for k = 1..8, and then use
/// the Elbow method to select the best number of clusters."
pub fn select_k(
    data: &Dataset,
    k_max: usize,
    method: KSelectionMethod,
    base: &KMeansConfig,
) -> KSelection {
    select_k_pre(data, k_max, method, base, None)
}

/// [`select_k`] with an optional precomputed pairwise-distance matrix
/// (see [`sweep_k_pre`] for the reuse contract).
pub fn select_k_pre(
    data: &Dataset,
    k_max: usize,
    method: KSelectionMethod,
    base: &KMeansConfig,
    shared: Option<&PairwiseDistances>,
) -> KSelection {
    let sweep = sweep_k_pre(data, k_max, base, shared);
    let idx = match method {
        KSelectionMethod::Elbow => elbow_index(&sweep.wcss),
        KSelectionMethod::Silhouette => silhouette_index(&sweep.silhouettes),
    };
    KSelection {
        k: sweep.ks[idx],
        result: sweep.results[idx].clone(),
        method,
        sweep,
    }
}

/// Index (into the sweep arrays) of the elbow of a non-increasing WCSS
/// curve: the point with maximum perpendicular distance below the chord
/// from the first to the last point.
///
/// Degenerate cases: a flat curve (no structure) selects k = 1; a sweep of
/// length 1 selects its only entry.
pub fn elbow_index(wcss: &[f64]) -> usize {
    let n = wcss.len();
    assert!(n >= 1, "empty sweep");
    if n <= 2 {
        // With one or two candidate k's there is no interior elbow; prefer
        // the smallest k that already explains the data: if going from k=1
        // to k=2 barely improves WCSS, keep 1, else take 2.
        if n == 2 && wcss[0] > 0.0 && wcss[1] < 0.5 * wcss[0] {
            return 1;
        }
        return 0;
    }
    let x0 = 0.0;
    let y0 = wcss[0];
    let x1 = (n - 1) as f64;
    let y1 = wcss[n - 1];
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 || (y0 - y1).abs() <= f64::EPSILON * y0.abs().max(1.0) {
        return 0; // flat curve: one phase
    }
    let mut best_idx = 0;
    let mut best_dist = f64::NEG_INFINITY;
    for (i, &y) in wcss.iter().enumerate() {
        let x = i as f64;
        // Signed perpendicular distance; for a convex decreasing curve the
        // interior points lie below the chord.
        let dist = (dy * x - dx * y + x1 * y0 - y1 * x0) / norm;
        if dist > best_dist {
            best_dist = dist;
            best_idx = i;
        }
    }
    best_idx
}

/// Index of the maximum defined mean silhouette (falling back to the
/// first entry — k = 1 — when none is defined). Shared with the
/// incremental sweep in [`crate::incremental`], which must pick k exactly
/// like the batch path.
pub(crate) fn silhouette_index(silhouettes: &[Option<f64>]) -> usize {
    let mut best_idx = 0; // fall back to k = 1 when nothing is defined
    let mut best = f64::NEG_INFINITY;
    for (i, s) in silhouettes.iter().enumerate() {
        if let Some(v) = s {
            if *v > best {
                best = *v;
                best_idx = i;
            }
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `c` well-separated blobs of `per` points each, on a diagonal.
    fn blobs(c: usize, per: usize) -> Dataset {
        let mut rows = Vec::new();
        for b in 0..c {
            let base = 100.0 * b as f64;
            for i in 0..per {
                rows.push(vec![base + 0.01 * i as f64, base - 0.01 * i as f64]);
            }
        }
        Dataset::from_rows(rows)
    }

    #[test]
    fn elbow_finds_three_blobs() {
        let data = blobs(3, 6);
        let sel = select_k(&data, 8, KSelectionMethod::Elbow, &KMeansConfig::new(0));
        assert_eq!(sel.k, 3);
    }

    #[test]
    fn silhouette_finds_three_blobs() {
        let data = blobs(3, 6);
        let sel = select_k(
            &data,
            8,
            KSelectionMethod::Silhouette,
            &KMeansConfig::new(0),
        );
        assert_eq!(sel.k, 3);
    }

    /// `c` blobs of `per` points, blob `b` active only in dimension `b` —
    /// the shape of real interval profiles, where each phase exercises a
    /// different set of functions.
    fn orthogonal_blobs(c: usize, per: usize) -> Dataset {
        let mut rows = Vec::new();
        for b in 0..c {
            for i in 0..per {
                let mut row = vec![0.0; c];
                row[b] = 100.0 + 0.01 * i as f64;
                rows.push(row);
            }
        }
        Dataset::from_rows(rows)
    }

    #[test]
    fn elbow_finds_five_blobs_like_minife() {
        // MiniFE in the paper discovers 5 phases; validate at that scale
        // with profile-shaped (orthogonal) clusters.
        let data = orthogonal_blobs(5, 8);
        let sel = select_k(&data, 8, KSelectionMethod::Elbow, &KMeansConfig::new(0));
        assert_eq!(sel.k, 5);
    }

    #[test]
    fn silhouette_finds_five_orthogonal_blobs() {
        let data = orthogonal_blobs(5, 8);
        let sel = select_k(
            &data,
            8,
            KSelectionMethod::Silhouette,
            &KMeansConfig::new(0),
        );
        assert_eq!(sel.k, 5);
    }

    #[test]
    fn uniform_data_selects_one_phase() {
        let data = Dataset::from_rows(vec![vec![1.0, 1.0]; 10]);
        let sel = select_k(&data, 8, KSelectionMethod::Elbow, &KMeansConfig::new(0));
        assert_eq!(sel.k, 1);
    }

    #[test]
    fn sweep_is_capped_by_point_count() {
        let data = blobs(1, 3);
        let sweep = sweep_k(&data, 8, &KMeansConfig::new(0));
        assert_eq!(sweep.ks, vec![1, 2, 3]);
    }

    #[test]
    fn elbow_index_hand_curve() {
        // Classic elbow at index 2 (k=3): steep drop then plateau.
        let wcss = [100.0, 40.0, 8.0, 7.0, 6.5, 6.0, 5.8, 5.6];
        assert_eq!(elbow_index(&wcss), 2);
    }

    #[test]
    fn elbow_index_flat_curve_is_zero() {
        let wcss = [5.0; 8];
        assert_eq!(elbow_index(&wcss), 0);
    }

    #[test]
    fn elbow_index_short_sweeps() {
        assert_eq!(elbow_index(&[3.0]), 0);
        assert_eq!(elbow_index(&[100.0, 1.0]), 1, "huge improvement takes k=2");
        assert_eq!(
            elbow_index(&[100.0, 90.0]),
            0,
            "marginal improvement keeps k=1"
        );
    }

    #[test]
    fn selection_contains_consistent_sweep() {
        let data = blobs(2, 5);
        let sel = select_k(&data, 6, KSelectionMethod::Elbow, &KMeansConfig::new(0));
        assert_eq!(sel.sweep.ks.len(), sel.sweep.results.len());
        assert_eq!(sel.sweep.ks.len(), sel.sweep.wcss.len());
        assert_eq!(sel.result.assignments.len(), data.nrows());
        // Chosen result is the sweep entry for the chosen k.
        let idx = sel.sweep.ks.iter().position(|&k| k == sel.k).unwrap();
        assert_eq!(sel.sweep.results[idx].wcss, sel.result.wcss);
    }

    #[test]
    fn shared_pairwise_matrix_gives_bit_identical_selection() {
        let data = blobs(3, 6);
        let base = KMeansConfig::new(0);
        let cold = select_k(&data, 8, KSelectionMethod::Silhouette, &base);
        let pair = PairwiseDistances::euclidean_of(&data);
        let warm = select_k_pre(&data, 8, KSelectionMethod::Silhouette, &base, Some(&pair));
        assert_eq!(warm.k, cold.k);
        assert_eq!(warm.result.assignments, cold.result.assignments);
        for (w, c) in warm.sweep.silhouettes.iter().zip(&cold.sweep.silhouettes) {
            assert_eq!(
                w.map(f64::to_bits),
                c.map(f64::to_bits),
                "silhouette bits moved under a shared matrix"
            );
        }
        for (w, c) in warm.sweep.wcss.iter().zip(&cold.sweep.wcss) {
            assert_eq!(w.to_bits(), c.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "shared pairwise matrix")]
    fn shared_matrix_of_wrong_size_is_rejected() {
        let data = blobs(2, 4);
        let small = Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]);
        let pair = PairwiseDistances::euclidean_of(&small);
        sweep_k_pre(&data, 8, &KMeansConfig::new(0), Some(&pair));
    }

    #[test]
    fn paper_k_max_is_eight() {
        // More blobs than k_max: selection still returns at most k_max.
        let data = blobs(10, 3);
        let sel = select_k(&data, 8, KSelectionMethod::Elbow, &KMeansConfig::new(0));
        assert!(sel.k <= 8);
    }
}
