//! k-means clustering: k-means++ seeding + Lloyd's iterations.
//!
//! This is the clustering step of the IncProf pipeline (§V-A): "Interval
//! data is then clustered using the k-means clustering algorithm, and each
//! cluster is interpreted as a phase of execution."
//!
//! The implementation is deterministic given [`KMeansConfig::seed`], uses
//! several restarts and keeps the best (lowest-WCSS) run, and repairs empty
//! clusters by reseeding them on the point farthest from its centroid.
//!
//! Two cost controls keep the hot path cheap without moving a single
//! output bit:
//!
//! * **Hamerly-style pruning** ([`KMeansConfig::pruning`]): per-point
//!   triangle-inequality bounds skip the k distance evaluations whenever
//!   the assigned centroid is provably still the unique nearest. Bounds
//!   are padded conservatively, so a bound error can only cause an extra
//!   exact recomputation — never a wrong (or even differently tie-broken)
//!   assignment.
//! * **Fixed-point detection**: a Lloyd iteration is a deterministic
//!   function of the `(assignments, centroids)` state, so an iteration
//!   that ends in exactly the state the previous one ended in will repeat
//!   it forever. Empty-cluster repair on duplicate-heavy data (more
//!   clusters than distinct points) used to oscillate at such a fixed
//!   point — the repair re-homed a point *after* the `changed` flag was
//!   computed, the next assignment step undid it, and every restart burned
//!   the full `max_iters` budget (the k=7/k=8 "~1650 iterations" burn in
//!   `serve_report.json`). Detecting the repeated state exits with the
//!   exact same final state, just without the burn.

use crate::dataset::Dataset;
use crate::distance::sq_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Number of independent seeded restarts; the best (lowest WCSS) wins.
    pub restarts: usize,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
    /// Convergence tolerance on centroid movement (squared distance).
    pub tol: f64,
    /// Skip provably-unchanged assignments via Hamerly-style bounds.
    /// Output is bit-identical either way; `false` exists as the test
    /// oracle and for debugging.
    pub pruning: bool,
}

impl KMeansConfig {
    /// A reasonable default configuration for `k` clusters.
    pub fn new(k: usize) -> KMeansConfig {
        KMeansConfig {
            k,
            max_iters: 100,
            restarts: 8,
            seed: 0x1AC0_FFEE,
            tol: 1e-12,
            pruning: true,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> KMeansConfig {
        self.seed = seed;
        self
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index (0..k) for every input row.
    pub assignments: Vec<usize>,
    /// Final centroids, one row per cluster.
    pub centroids: Dataset,
    /// Within-cluster sum of squares (inertia) of the final assignment.
    pub wcss: f64,
    /// Lloyd iterations performed by the winning restart.
    pub iterations: usize,
    /// Lloyd iterations summed across every restart of the call (for a
    /// single warm run, equal to `iterations`). This is the compute-cost
    /// view the `cluster.kmeans.iterations_total.k*` counter tracks;
    /// `iterations` is the convergence view.
    pub total_iterations: u64,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.nrows()
    }

    /// Row indices belonging to cluster `c`, in ascending order.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Squared distance from row `i` of `data` to its assigned centroid.
    pub fn sq_dist_to_centroid(&self, data: &Dataset, i: usize) -> f64 {
        sq_euclidean(data.row(i), self.centroids.row(self.assignments[i]))
    }
}

/// Run k-means on `data`.
///
/// # Panics
/// Panics if `config.k == 0` or the dataset is empty, or `k > n`.
pub fn kmeans(data: &Dataset, config: &KMeansConfig) -> KMeansResult {
    let n = data.nrows();
    assert!(config.k >= 1, "k must be at least 1");
    assert!(n >= 1, "cannot cluster an empty dataset");
    assert!(
        config.k <= n,
        "k = {} exceeds number of points {n}",
        config.k
    );

    let mut best: Option<KMeansResult> = None;
    let mut total_iterations = 0u64;
    for r in 0..config.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(r as u64));
        let init = kmeanspp_init(data, config.k, &mut rng);
        let result = lloyd(data, config, init);
        total_iterations += result.iterations as u64;
        if best.as_ref().is_none_or(|b| result.wcss < b.wcss) {
            best = Some(result);
        }
    }
    // lint: allow(P01, restarts.max(1) above guarantees the loop body ran at least once)
    let mut best = best.expect("at least one restart ran");
    best.total_iterations = total_iterations;
    // Two views of the same sweep: the winner's iteration count measures
    // convergence, the cross-restart total measures compute spent. The
    // old single counter conflated them (it added the total under the
    // winner's name).
    incprof_obs::counter(&incprof_obs::names::cluster_kmeans_iterations(config.k))
        .add(best.iterations as u64);
    incprof_obs::counter(&incprof_obs::names::cluster_kmeans_iterations_total(
        config.k,
    ))
    .add(total_iterations);
    best
}

/// Run Lloyd's algorithm once, warm-started from `init` (no k-means++
/// seeding, no restarts). This is the per-row step of the incremental
/// fold in [`crate::incremental`]: from near-converged centroids Lloyd
/// typically settles in one or two iterations.
///
/// # Panics
/// Panics if `config.k == 0`, the dataset is empty, `k > n`, or `init`
/// is not a `k × d` centroid matrix for `data`.
pub fn kmeans_warm(data: &Dataset, config: &KMeansConfig, init: &Dataset) -> KMeansResult {
    let n = data.nrows();
    assert!(config.k >= 1, "k must be at least 1");
    assert!(n >= 1, "cannot cluster an empty dataset");
    assert!(
        config.k <= n,
        "k = {} exceeds number of points {n}",
        config.k
    );
    assert_eq!(
        init.nrows(),
        config.k,
        "warm start has {} centroids but k = {}",
        init.nrows(),
        config.k
    );
    assert_eq!(
        init.ncols(),
        data.ncols(),
        "warm start dimensionality {} does not match data {}",
        init.ncols(),
        data.ncols()
    );
    let result = lloyd(data, config, init.clone());
    incprof_obs::counter(&incprof_obs::names::cluster_kmeans_iterations_total(
        config.k,
    ))
    .add(result.iterations as u64);
    result
}

fn lloyd(data: &Dataset, config: &KMeansConfig, init: Dataset) -> KMeansResult {
    let n = data.nrows();
    let d = data.ncols();
    let k = config.k;

    let mut centroids = init;
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut last_movement = 0.0f64;
    let mut pruned_points = 0u64;

    // Hamerly-style bounds, in plain (square-rooted) distance space,
    // preallocated once per run: `upper[i]` bounds the distance from
    // point i to its assigned centroid from above, `lower[i]` bounds the
    // distance to every *other* centroid from below. While strictly
    // `upper[i] < lower[i]`, the assigned centroid is provably the unique
    // nearest, so the naive argmin (strict `<`, lowest index on ties)
    // would reproduce the same assignment — skipping it is bit-identical.
    // `moved[c]` is how far centroid c traveled in the last update, used
    // to loosen the bounds via the triangle inequality.
    let mut upper = vec![f64::INFINITY; n];
    let mut lower = vec![0.0f64; n];
    let mut moved = vec![0.0f64; k];
    let mut bounds_valid = false;

    // End-of-iteration state of the previous iteration, for the
    // fixed-point break (see the module docs).
    let mut prev_assignments: Vec<usize> = Vec::new();
    let mut prev_centroid_bits: Vec<u64> = Vec::new();

    // Parallelize the assignment step (each point's argmin is
    // independent and deterministic) once the work justifies the
    // fork/join overhead. Inside a `select_k` sweep this call already
    // runs on a pool worker, so the nested call degrades to sequential.
    let parallel = n * k * d >= 200_000;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step. Returns (cluster, upper, lower, pruned) per
        // point; pruned points keep their assignment and bounds.
        let use_bounds = bounds_valid && config.pruning;
        let assign_one = |i: usize| -> (usize, f64, f64, bool) {
            if use_bounds && upper[i] < lower[i] {
                return (assignments[i], upper[i], lower[i], true);
            }
            let row = data.row(i);
            let mut best_c = 0;
            let mut best_d = f64::INFINITY;
            let mut second_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_euclidean(row, centroids.row(c));
                if dist < best_d {
                    second_d = best_d;
                    best_d = dist;
                    best_c = c;
                } else if dist < second_d {
                    second_d = dist;
                }
            }
            (
                best_c,
                pad_up(best_d.sqrt()),
                pad_down(second_d.sqrt()),
                false,
            )
        };
        let new_assignments: Vec<(usize, f64, f64, bool)> = if parallel {
            incprof_par::par_map_index(n, assign_one)
        } else {
            (0..n).map(assign_one).collect()
        };
        let mut changed = false;
        for (i, &(c, up, lo, pruned)) in new_assignments.iter().enumerate() {
            if assignments[i] != c {
                assignments[i] = c;
                changed = true;
            }
            upper[i] = up;
            lower[i] = lo;
            if pruned {
                pruned_points += 1;
            }
        }

        // Update step.
        let mut sums = Dataset::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            let row = data.row(i);
            let target = sums.row_mut(c);
            for j in 0..d {
                target[j] += row[j];
            }
        }
        let mut movement: f64 = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed on the point farthest from its
                // current centroid (a standard repair strategy).
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(data.row(a), centroids.row(assignments[a]));
                        let db = sq_euclidean(data.row(b), centroids.row(assignments[b]));
                        da.total_cmp(&db)
                    })
                    // lint: allow(P01, lloyd is only reachable with a non-empty dataset so max_by has candidates)
                    .expect("n >= 1");
                let row = data.row(far).to_vec();
                let m = sq_euclidean(&row, centroids.row(c));
                movement += m;
                moved[c] = pad_up(m.sqrt());
                centroids.row_mut(c).copy_from_slice(&row);
                assignments[far] = c;
                // The repair re-homed `far` outside the assignment step;
                // its bounds describe the old assignment, so force an
                // exact recomputation next iteration.
                upper[far] = f64::INFINITY;
                lower[far] = 0.0;
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mut new_c = vec![0.0; d];
            for (j, v) in new_c.iter_mut().enumerate() {
                *v = sums.get(c, j) * inv;
            }
            let m = sq_euclidean(&new_c, centroids.row(c));
            movement += m;
            moved[c] = pad_up(m.sqrt());
            centroids.row_mut(c).copy_from_slice(&new_c);
        }

        if config.pruning {
            // Triangle inequality: a point's distance to its (moved)
            // centroid grew by at most the centroid's travel; its
            // distance to any other centroid shrank by at most the
            // largest travel of any centroid.
            let mut max_move = 0.0f64;
            for &m in &moved {
                if m > max_move {
                    max_move = m;
                }
            }
            for i in 0..n {
                upper[i] = pad_up(upper[i] + moved[assignments[i]]);
                lower[i] = pad_down(lower[i] - max_move);
            }
            bounds_valid = true;
        }

        last_movement = movement;
        if !changed && movement <= config.tol {
            break;
        }
        // Fixed-point break: the next iteration is a deterministic
        // function of (assignments, centroids), so a repeated
        // end-of-iteration state would replay forever — the final state
        // at max_iters is exactly this one. Catches the empty-cluster
        // repair oscillation on duplicate-heavy data without changing a
        // single output bit.
        let centroid_bits: Vec<u64> = (0..k)
            .flat_map(|c| centroids.row(c).iter().map(|v| v.to_bits()))
            .collect();
        if prev_assignments == assignments && prev_centroid_bits == centroid_bits {
            break;
        }
        prev_assignments.clone_from(&assignments);
        prev_centroid_bits = centroid_bits;
    }

    // Centroid movement of the final iteration, in picounits (×1e12) so
    // sub-tolerance deltas still land in distinguishable buckets.
    incprof_obs::histogram(incprof_obs::names::CLUSTER_KMEANS_CONVERGENCE_DELTA_E12)
        .record((last_movement * 1e12) as u64);
    incprof_obs::counter(incprof_obs::names::CLUSTER_KMEANS_PRUNED).add(pruned_points);

    let wcss = (0..n)
        .map(|i| sq_euclidean(data.row(i), centroids.row(assignments[i])))
        // lint: allow(D04, WCSS is summed sequentially in point order on the caller thread after assignment settles)
        .sum();
    KMeansResult {
        assignments,
        centroids,
        wcss,
        iterations,
        total_iterations: iterations as u64,
    }
}

/// Round a bound up so that accumulated floating-point error can never
/// make it optimistic. ~4500 ulps of relative slack plus a subnormal
/// floor covers the handful of rounded operations per bound update by
/// orders of magnitude; the only cost of over-padding is an extra exact
/// distance computation.
#[inline]
fn pad_up(x: f64) -> f64 {
    x + (x.abs() * 1e-12 + 1e-300)
}

/// Mirror of [`pad_up`] for lower bounds.
#[inline]
fn pad_down(x: f64) -> f64 {
    x - (x.abs() * 1e-12 + 1e-300)
}

/// k-means++ seeding: first centroid uniform, each subsequent centroid
/// sampled with probability proportional to squared distance from the
/// nearest already-chosen centroid.
fn kmeanspp_init(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let n = data.nrows();
    let d = data.ncols();
    let mut centroids = Dataset::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut min_sq = vec![f64::INFINITY; n];
    for c in 1..k {
        for i in 0..n {
            let dist = sq_euclidean(data.row(i), centroids.row(c - 1));
            if dist < min_sq[i] {
                min_sq[i] = dist;
            }
        }
        // lint: allow(D04, kmeans++ seeding is sequential by construction; the running distance sum never crosses threads)
        let total: f64 = min_sq.iter().sum();
        let chosen = if total > 0.0 {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in min_sq.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        } else {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..n)
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Dataset {
        // Two well-separated 2-D blobs of 5 points each.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![0.0 + 0.1 * i as f64, 0.0 - 0.1 * i as f64]);
        }
        for i in 0..5 {
            rows.push(vec![10.0 + 0.1 * i as f64, 10.0 - 0.1 * i as f64]);
        }
        Dataset::from_rows(rows)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let res = kmeans(&data, &KMeansConfig::new(2));
        let first = res.assignments[0];
        assert!(res.assignments[..5].iter().all(|&a| a == first));
        assert!(res.assignments[5..].iter().all(|&a| a == 1 - first));
        assert!(res.wcss < 1.0);
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![3.0], vec![5.0]]);
        let res = kmeans(&data, &KMeansConfig::new(1));
        assert!((res.centroids.get(0, 0) - 3.0).abs() < 1e-12);
        // WCSS = (2^2 + 0 + 2^2) = 8
        assert!((res.wcss - 8.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let data = Dataset::from_rows(vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]]);
        let res = kmeans(&data, &KMeansConfig::new(3));
        assert!(res.wcss < 1e-18);
        let mut sorted = res.assignments.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "each point in its own cluster");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let cfg = KMeansConfig::new(3).with_seed(1234);
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let data = two_blobs();
        let res = kmeans(&data, &KMeansConfig::new(2));
        for i in 0..data.nrows() {
            let own = res.sq_dist_to_centroid(&data, i);
            for c in 0..res.k() {
                let other = sq_euclidean(data.row(i), res.centroids.row(c));
                assert!(own <= other + 1e-12);
            }
        }
    }

    #[test]
    fn members_of_partitions_all_rows() {
        let data = two_blobs();
        let res = kmeans(&data, &KMeansConfig::new(4));
        let mut all: Vec<usize> = (0..res.k()).flat_map(|c| res.members_of(c)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..data.nrows()).collect::<Vec<_>>());
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = Dataset::from_rows(vec![vec![5.0, 5.0]; 6]);
        let res = kmeans(&data, &KMeansConfig::new(3));
        assert_eq!(res.assignments.len(), 6);
        assert!(res.wcss < 1e-18);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let data = two_blobs();
        let _ = kmeans(&data, &KMeansConfig::new(0));
    }

    #[test]
    #[should_panic(expected = "exceeds number of points")]
    fn k_larger_than_n_panics() {
        let data = Dataset::from_rows(vec![vec![1.0]]);
        let _ = kmeans(&data, &KMeansConfig::new(2));
    }

    #[test]
    fn wcss_never_increases_with_k() {
        // Over best-of-restarts runs, optimal WCSS is non-increasing in k;
        // with enough restarts the heuristic should track that closely.
        let data = two_blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let res = kmeans(
                &data,
                &KMeansConfig {
                    restarts: 20,
                    ..KMeansConfig::new(k)
                },
            );
            assert!(
                res.wcss <= prev + 1e-9,
                "wcss went up from {prev} to {} at k={k}",
                res.wcss
            );
            prev = res.wcss;
        }
    }

    /// Duplicate-heavy data with more clusters than distinct points: the
    /// empty-cluster repair used to oscillate at a fixed point (repair
    /// re-homed a point after `changed` was computed; the next argmin
    /// undid it) and burn `max_iters × restarts = 800` iterations — the
    /// k7/k8 "~1650 iterations" burn observed in `serve_report.json`.
    /// The fixed-point break must cut that by far more than the 5× the
    /// acceptance gate asks for, without touching the output.
    #[test]
    fn duplicate_heavy_repair_converges_without_iteration_burn() {
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 3) as f64 * 10.0, 0.0]).collect();
        let data = Dataset::from_rows(rows);
        for k in [7, 8] {
            let res = kmeans(&data, &KMeansConfig::new(k));
            assert_eq!(res.assignments.len(), 12);
            assert!(
                res.total_iterations <= 160,
                "k={k}: {} total iterations — the repair oscillation burn is back \
                 (pre-fix: 800 = max_iters × restarts)",
                res.total_iterations
            );
            // Three distinct points and k ≥ 3 clusters: a converged run
            // must still explain the data perfectly.
            assert!(res.wcss < 1e-18, "k={k}: wcss {}", res.wcss);
        }
    }

    /// The pruned assignment path must be bit-for-bit the naive one:
    /// same assignments, same centroid bits, same WCSS bits, same
    /// iteration trajectory.
    #[test]
    fn pruning_is_bit_identical_to_naive() {
        let mut rows = two_blobs().to_rows();
        // Add duplicates and a third clump so ties and repairs happen.
        rows.extend(vec![vec![5.0, 5.0]; 4]);
        rows.push(vec![0.0, 0.0]);
        let data = Dataset::from_rows(rows);
        for k in 1..=8 {
            let pruned = kmeans(&data, &KMeansConfig::new(k));
            let naive = kmeans(
                &data,
                &KMeansConfig {
                    pruning: false,
                    ..KMeansConfig::new(k)
                },
            );
            assert_eq!(pruned.assignments, naive.assignments, "k={k}");
            assert_eq!(pruned.iterations, naive.iterations, "k={k}");
            assert_eq!(pruned.wcss.to_bits(), naive.wcss.to_bits(), "k={k}");
            for c in 0..k {
                for (a, b) in pruned.centroids.row(c).iter().zip(naive.centroids.row(c)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} centroid {c}");
                }
            }
        }
    }

    /// Warm-starting from already-converged centroids must settle
    /// immediately on the same clustering.
    #[test]
    fn warm_start_from_converged_centroids_is_a_fixed_point() {
        let data = two_blobs();
        let cfg = KMeansConfig::new(2);
        let cold = kmeans(&data, &cfg);
        let warm = kmeans_warm(&data, &cfg, &cold.centroids);
        assert_eq!(warm.assignments, cold.assignments);
        assert_eq!(warm.wcss.to_bits(), cold.wcss.to_bits());
        assert!(
            warm.iterations <= 2,
            "converged warm start took {} iterations",
            warm.iterations
        );
    }

    #[test]
    fn total_iterations_accumulates_across_restarts() {
        let data = two_blobs();
        let cfg = KMeansConfig::new(3);
        let res = kmeans(&data, &cfg);
        assert!(res.total_iterations >= res.iterations as u64);
        assert!(
            res.total_iterations >= cfg.restarts as u64,
            "every restart runs at least one iteration"
        );
        let warm = kmeans_warm(&data, &cfg, &res.centroids);
        assert_eq!(warm.total_iterations, warm.iterations as u64);
    }

    #[test]
    #[should_panic(expected = "warm start has")]
    fn warm_start_shape_mismatch_panics() {
        let data = two_blobs();
        let init = Dataset::zeros(3, 2);
        let _ = kmeans_warm(&data, &KMeansConfig::new(2), &init);
    }
}
