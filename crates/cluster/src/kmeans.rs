//! k-means clustering: k-means++ seeding + Lloyd's iterations.
//!
//! This is the clustering step of the IncProf pipeline (§V-A): "Interval
//! data is then clustered using the k-means clustering algorithm, and each
//! cluster is interpreted as a phase of execution."
//!
//! The implementation is deterministic given [`KMeansConfig::seed`], uses
//! several restarts and keeps the best (lowest-WCSS) run, and repairs empty
//! clusters by reseeding them on the point farthest from its centroid.

use crate::dataset::Dataset;
use crate::distance::sq_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Number of independent seeded restarts; the best (lowest WCSS) wins.
    pub restarts: usize,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
    /// Convergence tolerance on centroid movement (squared distance).
    pub tol: f64,
}

impl KMeansConfig {
    /// A reasonable default configuration for `k` clusters.
    pub fn new(k: usize) -> KMeansConfig {
        KMeansConfig {
            k,
            max_iters: 100,
            restarts: 8,
            seed: 0x1AC0_FFEE,
            tol: 1e-12,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> KMeansConfig {
        self.seed = seed;
        self
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index (0..k) for every input row.
    pub assignments: Vec<usize>,
    /// Final centroids, one row per cluster.
    pub centroids: Dataset,
    /// Within-cluster sum of squares (inertia) of the final assignment.
    pub wcss: f64,
    /// Lloyd iterations performed by the winning restart.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.nrows()
    }

    /// Row indices belonging to cluster `c`, in ascending order.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Squared distance from row `i` of `data` to its assigned centroid.
    pub fn sq_dist_to_centroid(&self, data: &Dataset, i: usize) -> f64 {
        sq_euclidean(data.row(i), self.centroids.row(self.assignments[i]))
    }
}

/// Run k-means on `data`.
///
/// # Panics
/// Panics if `config.k == 0` or the dataset is empty, or `k > n`.
pub fn kmeans(data: &Dataset, config: &KMeansConfig) -> KMeansResult {
    let n = data.nrows();
    assert!(config.k >= 1, "k must be at least 1");
    assert!(n >= 1, "cannot cluster an empty dataset");
    assert!(
        config.k <= n,
        "k = {} exceeds number of points {n}",
        config.k
    );

    let mut best: Option<KMeansResult> = None;
    let mut total_iterations = 0u64;
    for r in 0..config.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(r as u64));
        let result = lloyd(data, config, &mut rng);
        total_iterations += result.iterations as u64;
        if best.as_ref().is_none_or(|b| result.wcss < b.wcss) {
            best = Some(result);
        }
    }
    incprof_obs::counter(&incprof_obs::names::cluster_kmeans_iterations(config.k))
        .add(total_iterations);
    // lint: allow(P01, restarts.max(1) above guarantees the loop body ran at least once)
    best.expect("at least one restart ran")
}

fn lloyd(data: &Dataset, config: &KMeansConfig, rng: &mut StdRng) -> KMeansResult {
    let n = data.nrows();
    let d = data.ncols();
    let k = config.k;

    let mut centroids = kmeanspp_init(data, k, rng);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut last_movement = 0.0f64;

    // Parallelize the assignment step (each point's argmin is
    // independent and deterministic) once the work justifies the
    // fork/join overhead. Inside a `select_k` sweep this call already
    // runs on a pool worker, so the nested call degrades to sequential.
    let parallel = n * k * d >= 200_000;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let nearest = |i: usize| -> usize {
            let row = data.row(i);
            let mut best_c = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_euclidean(row, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best_c = c;
                }
            }
            best_c
        };
        let new_assignments: Vec<usize> = if parallel {
            incprof_par::par_map_index(n, nearest)
        } else {
            (0..n).map(nearest).collect()
        };
        let mut changed = false;
        for i in 0..n {
            if assignments[i] != new_assignments[i] {
                assignments[i] = new_assignments[i];
                changed = true;
            }
        }

        // Update step.
        let mut sums = Dataset::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            let row = data.row(i);
            let target = sums.row_mut(c);
            for j in 0..d {
                target[j] += row[j];
            }
        }
        let mut movement: f64 = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed on the point farthest from its
                // current centroid (a standard repair strategy).
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(data.row(a), centroids.row(assignments[a]));
                        let db = sq_euclidean(data.row(b), centroids.row(assignments[b]));
                        da.total_cmp(&db)
                    })
                    // lint: allow(P01, lloyd is only reachable with a non-empty dataset so max_by has candidates)
                    .expect("n >= 1");
                let row = data.row(far).to_vec();
                movement += sq_euclidean(&row, centroids.row(c));
                centroids.row_mut(c).copy_from_slice(&row);
                assignments[far] = c;
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mut new_c = vec![0.0; d];
            for (j, v) in new_c.iter_mut().enumerate() {
                *v = sums.get(c, j) * inv;
            }
            movement += sq_euclidean(&new_c, centroids.row(c));
            centroids.row_mut(c).copy_from_slice(&new_c);
        }

        last_movement = movement;
        if !changed && movement <= config.tol {
            break;
        }
    }

    // Centroid movement of the final iteration, in picounits (×1e12) so
    // sub-tolerance deltas still land in distinguishable buckets.
    incprof_obs::histogram(incprof_obs::names::CLUSTER_KMEANS_CONVERGENCE_DELTA_E12)
        .record((last_movement * 1e12) as u64);

    let wcss = (0..n)
        .map(|i| sq_euclidean(data.row(i), centroids.row(assignments[i])))
        // lint: allow(D04, WCSS is summed sequentially in point order on the caller thread after assignment settles)
        .sum();
    KMeansResult {
        assignments,
        centroids,
        wcss,
        iterations,
    }
}

/// k-means++ seeding: first centroid uniform, each subsequent centroid
/// sampled with probability proportional to squared distance from the
/// nearest already-chosen centroid.
fn kmeanspp_init(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let n = data.nrows();
    let d = data.ncols();
    let mut centroids = Dataset::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut min_sq = vec![f64::INFINITY; n];
    for c in 1..k {
        for i in 0..n {
            let dist = sq_euclidean(data.row(i), centroids.row(c - 1));
            if dist < min_sq[i] {
                min_sq[i] = dist;
            }
        }
        // lint: allow(D04, kmeans++ seeding is sequential by construction; the running distance sum never crosses threads)
        let total: f64 = min_sq.iter().sum();
        let chosen = if total > 0.0 {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in min_sq.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        } else {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..n)
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Dataset {
        // Two well-separated 2-D blobs of 5 points each.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![0.0 + 0.1 * i as f64, 0.0 - 0.1 * i as f64]);
        }
        for i in 0..5 {
            rows.push(vec![10.0 + 0.1 * i as f64, 10.0 - 0.1 * i as f64]);
        }
        Dataset::from_rows(rows)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let res = kmeans(&data, &KMeansConfig::new(2));
        let first = res.assignments[0];
        assert!(res.assignments[..5].iter().all(|&a| a == first));
        assert!(res.assignments[5..].iter().all(|&a| a == 1 - first));
        assert!(res.wcss < 1.0);
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![3.0], vec![5.0]]);
        let res = kmeans(&data, &KMeansConfig::new(1));
        assert!((res.centroids.get(0, 0) - 3.0).abs() < 1e-12);
        // WCSS = (2^2 + 0 + 2^2) = 8
        assert!((res.wcss - 8.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let data = Dataset::from_rows(vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]]);
        let res = kmeans(&data, &KMeansConfig::new(3));
        assert!(res.wcss < 1e-18);
        let mut sorted = res.assignments.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "each point in its own cluster");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let cfg = KMeansConfig::new(3).with_seed(1234);
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let data = two_blobs();
        let res = kmeans(&data, &KMeansConfig::new(2));
        for i in 0..data.nrows() {
            let own = res.sq_dist_to_centroid(&data, i);
            for c in 0..res.k() {
                let other = sq_euclidean(data.row(i), res.centroids.row(c));
                assert!(own <= other + 1e-12);
            }
        }
    }

    #[test]
    fn members_of_partitions_all_rows() {
        let data = two_blobs();
        let res = kmeans(&data, &KMeansConfig::new(4));
        let mut all: Vec<usize> = (0..res.k()).flat_map(|c| res.members_of(c)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..data.nrows()).collect::<Vec<_>>());
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = Dataset::from_rows(vec![vec![5.0, 5.0]; 6]);
        let res = kmeans(&data, &KMeansConfig::new(3));
        assert_eq!(res.assignments.len(), 6);
        assert!(res.wcss < 1e-18);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let data = two_blobs();
        let _ = kmeans(&data, &KMeansConfig::new(0));
    }

    #[test]
    #[should_panic(expected = "exceeds number of points")]
    fn k_larger_than_n_panics() {
        let data = Dataset::from_rows(vec![vec![1.0]]);
        let _ = kmeans(&data, &KMeansConfig::new(2));
    }

    #[test]
    fn wcss_never_increases_with_k() {
        // Over best-of-restarts runs, optimal WCSS is non-increasing in k;
        // with enough restarts the heuristic should track that closely.
        let data = two_blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let res = kmeans(
                &data,
                &KMeansConfig {
                    restarts: 20,
                    ..KMeansConfig::new(k)
                },
            );
            assert!(
                res.wcss <= prev + 1e-9,
                "wcss went up from {prev} to {} at k={k}",
                res.wcss
            );
            prev = res.wcss;
        }
    }
}
