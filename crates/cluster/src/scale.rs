//! Feature scaling for interval vectors.
//!
//! The paper clusters raw `gprof` self-time tuples; because every feature
//! is a time in the same unit, no scaling is strictly required, and that is
//! our [`Scaling::None`] default. The other options support the feature
//! ablation experiments (what happens when call counts — a very differently
//! scaled quantity — are mixed in, §V-A).

use crate::dataset::Dataset;

/// How to scale the columns (features) of a dataset before clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scaling {
    /// Use raw values (the paper's configuration).
    #[default]
    None,
    /// Scale each column to `[0, 1]` by its min/max. Constant columns
    /// become all-zero.
    MinMax,
    /// Standardize each column to zero mean, unit variance. Constant
    /// columns become all-zero.
    ZScore,
    /// Normalize each **row** to sum 1 (turning per-interval self times
    /// into fractions of the interval's total profiled time). All-zero rows
    /// stay zero.
    RowFraction,
}

impl Scaling {
    /// Apply this scaling, returning a new dataset.
    pub fn apply(self, data: &Dataset) -> Dataset {
        match self {
            Scaling::None => data.clone(),
            Scaling::MinMax => minmax(data),
            Scaling::ZScore => zscore(data),
            Scaling::RowFraction => row_fraction(data),
        }
    }
}

fn minmax(data: &Dataset) -> Dataset {
    let (n, d) = (data.nrows(), data.ncols());
    let mut out = Dataset::zeros(n, d);
    for j in 0..d {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            lo = lo.min(data.get(i, j));
            hi = hi.max(data.get(i, j));
        }
        let range = hi - lo;
        for i in 0..n {
            let v = if range > 0.0 {
                (data.get(i, j) - lo) / range
            } else {
                0.0
            };
            out.set(i, j, v);
        }
    }
    out
}

fn zscore(data: &Dataset) -> Dataset {
    let (n, d) = (data.nrows(), data.ncols());
    let mut out = Dataset::zeros(n, d);
    if n == 0 {
        return out;
    }
    for j in 0..d {
        let mean: f64 = (0..n).map(|i| data.get(i, j)).sum::<f64>() / n as f64;
        let var: f64 = (0..n).map(|i| (data.get(i, j) - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        for i in 0..n {
            let v = if sd > 0.0 {
                (data.get(i, j) - mean) / sd
            } else {
                0.0
            };
            out.set(i, j, v);
        }
    }
    out
}

fn row_fraction(data: &Dataset) -> Dataset {
    let (n, d) = (data.nrows(), data.ncols());
    let mut out = Dataset::zeros(n, d);
    for i in 0..n {
        let total: f64 = data.row(i).iter().sum();
        for j in 0..d {
            let v = if total > 0.0 {
                data.get(i, j) / total
            } else {
                0.0
            };
            out.set(i, j, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![vec![0.0, 10.0], vec![5.0, 10.0], vec![10.0, 10.0]])
    }

    #[test]
    fn none_is_identity() {
        let d = sample();
        assert_eq!(Scaling::None.apply(&d), d);
    }

    #[test]
    fn minmax_scales_to_unit_interval_and_zeroes_constant_columns() {
        let s = Scaling::MinMax.apply(&sample());
        assert_eq!(
            s.to_rows(),
            vec![vec![0.0, 0.0], vec![0.5, 0.0], vec![1.0, 0.0]]
        );
    }

    #[test]
    fn zscore_standardizes() {
        let s = Scaling::ZScore.apply(&sample());
        // Column 0: mean 5, population sd sqrt(50/3).
        let sd = (50.0f64 / 3.0).sqrt();
        assert!((s.get(0, 0) - (-5.0 / sd)).abs() < 1e-12);
        assert!((s.get(1, 0)).abs() < 1e-12);
        assert!((s.get(2, 0) - (5.0 / sd)).abs() < 1e-12);
        // Constant column -> zeros.
        assert_eq!(s.get(0, 1), 0.0);
        // Column mean is ~0.
        let mean: f64 = (0..3).map(|i| s.get(i, 0)).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn row_fraction_sums_to_one() {
        let d = Dataset::from_rows(vec![vec![2.0, 2.0], vec![1.0, 3.0], vec![0.0, 0.0]]);
        let s = Scaling::RowFraction.apply(&d);
        assert_eq!(s.row(0), &[0.5, 0.5]);
        assert_eq!(s.row(1), &[0.25, 0.75]);
        assert_eq!(s.row(2), &[0.0, 0.0], "all-zero rows stay zero");
    }

    #[test]
    fn empty_dataset_is_fine() {
        let d = Dataset::from_rows(vec![]);
        for scaling in [
            Scaling::None,
            Scaling::MinMax,
            Scaling::ZScore,
            Scaling::RowFraction,
        ] {
            assert!(scaling.apply(&d).is_empty());
        }
    }
}
