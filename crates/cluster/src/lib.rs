//! # incprof-cluster
//!
//! Clustering machinery for IncProf phase detection.
//!
//! The paper (§V-A) clusters per-interval profile vectors with *k-means*,
//! runs k = 1..8, and selects k with the *elbow* method (they also
//! evaluated *silhouette*, and tried *DBSCAN* without improvement). This
//! crate implements all of those from scratch, deterministically:
//!
//! * [`Dataset`] — a dense `n × d` matrix of interval feature vectors.
//! * [`kmeans()`] — Lloyd's algorithm with k-means++ seeding, multiple
//!   seeded restarts, and empty-cluster repair.
//! * [`select_k()`] — the elbow (maximum distance to the WCSS chord) and
//!   mean-silhouette criteria over a range of k.
//! * [`silhouette`] — silhouette coefficients.
//! * [`dbscan()`] — density-based clustering, used by the paper's (negative)
//!   ablation and reproduced here for the same comparison.
//! * [`scale`] — feature scaling options (none / min-max / z-score /
//!   row-normalize).
//!
//! Everything is seeded explicitly; there is no global RNG state, so the
//! whole phase-detection pipeline is reproducible run-to-run. The hot
//! paths (the k sweep, Lloyd's assignment step, the pairwise-distance
//! matrix behind silhouette scoring) run on the [`incprof_par`] worker
//! pool with deterministic chunking, so results are additionally
//! bit-identical for every `INCPROF_THREADS` setting.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several parallel arrays in one loop; the
// iterator rewrite clippy suggests hurts readability there.
#![allow(clippy::needless_range_loop)]

pub mod compare;
pub mod dataset;
pub mod dbscan;
pub mod distance;
pub mod incremental;
pub mod kmeans;
pub mod scale;
pub mod select_k;
pub mod silhouette;

pub use compare::{adjusted_rand_index, rand_index};
pub use dataset::Dataset;
pub use dbscan::{dbscan, DbscanLabel, DbscanParams};
pub use distance::PairwiseDistances;
pub use incremental::{ChainConfig, KChain, SweepChains};
pub use kmeans::{kmeans, kmeans_warm, KMeansConfig, KMeansResult};
pub use scale::Scaling;
pub use select_k::{
    select_k, select_k_pre, sweep_k, sweep_k_pre, KSelection, KSelectionMethod, KSweep,
};
pub use silhouette::{
    mean_silhouette, mean_silhouette_pre, silhouette_values, silhouette_values_pre,
};
