//! DBSCAN density-based clustering.
//!
//! The paper reports: "We have also experimented with other clustering
//! algorithms (e.g., DBSCAN) but also have not seen improvements" (§V-A).
//! We implement DBSCAN so the same comparison can be run as an ablation —
//! notably its tendency, on interval-profile data, to lump a continuum of
//! intervals into one irregular cluster, which is exactly the behavior the
//! paper argues makes plain k-means preferable for phases.

use crate::dataset::Dataset;
use crate::distance::euclidean;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius.
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_points: usize,
}

/// Per-point DBSCAN label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Member of cluster `c` (0-based).
    Cluster(usize),
    /// Density noise: not reachable from any core point.
    Noise,
}

impl DbscanLabel {
    /// The cluster index, if any.
    pub fn cluster(self) -> Option<usize> {
        match self {
            DbscanLabel::Cluster(c) => Some(c),
            DbscanLabel::Noise => None,
        }
    }
}

/// Run DBSCAN over `data`. Deterministic: clusters are numbered in
/// first-discovery order scanning points 0..n.
pub fn dbscan(data: &Dataset, params: DbscanParams) -> Vec<DbscanLabel> {
    assert!(params.eps >= 0.0, "eps must be non-negative");
    assert!(params.min_points >= 1, "min_points must be at least 1");
    let n = data.nrows();

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        Noise,
        Cluster(usize),
    }

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| euclidean(data.row(i), data.row(j)) <= params.eps)
            .collect()
    };

    let mut state = vec![State::Unvisited; n];
    let mut next_cluster = 0usize;

    for i in 0..n {
        if state[i] != State::Unvisited {
            continue;
        }
        let nbrs = neighbors(i);
        if nbrs.len() < params.min_points {
            state[i] = State::Noise;
            continue;
        }
        let c = next_cluster;
        next_cluster += 1;
        state[i] = State::Cluster(c);
        // Expand the cluster (standard seed-set expansion).
        let mut seeds = nbrs;
        let mut idx = 0;
        while idx < seeds.len() {
            let p = seeds[idx];
            idx += 1;
            match state[p] {
                State::Noise => state[p] = State::Cluster(c), // border point
                State::Unvisited => {
                    state[p] = State::Cluster(c);
                    let pn = neighbors(p);
                    if pn.len() >= params.min_points {
                        for q in pn {
                            if !seeds.contains(&q) {
                                seeds.push(q);
                            }
                        }
                    }
                }
                State::Cluster(_) => {}
            }
        }
    }

    state
        .into_iter()
        .map(|s| match s {
            State::Cluster(c) => DbscanLabel::Cluster(c),
            State::Noise => DbscanLabel::Noise,
            // lint: allow(P02, the sweep above visits every point exactly once before this match runs)
            State::Unvisited => unreachable!("all points visited"),
        })
        .collect()
}

/// Number of clusters in a DBSCAN labeling.
pub fn cluster_count(labels: &[DbscanLabel]) -> usize {
    labels
        .iter()
        .filter_map(|l| l.cluster())
        .max()
        .map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![cx + 0.01 * i as f64, cy]).collect()
    }

    #[test]
    fn finds_two_blobs_marks_outlier_noise() {
        let mut rows = blob(0.0, 0.0, 6);
        rows.extend(blob(10.0, 10.0, 6));
        rows.push(vec![100.0, -100.0]); // lone outlier
        let data = Dataset::from_rows(rows);
        let labels = dbscan(
            &data,
            DbscanParams {
                eps: 0.5,
                min_points: 3,
            },
        );
        assert_eq!(cluster_count(&labels), 2);
        assert_eq!(labels[12], DbscanLabel::Noise);
        assert!(labels[..6].iter().all(|&l| l == labels[0]));
        assert!(labels[6..12].iter().all(|&l| l == labels[6]));
        assert_ne!(labels[0], labels[6]);
    }

    #[test]
    fn chain_of_points_merges_into_one_cluster() {
        // A continuum of intervals: DBSCAN chains them together even though
        // the endpoints are far apart (the property the paper dislikes for
        // phase detection).
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.9, 0.0]).collect();
        let data = Dataset::from_rows(rows);
        let labels = dbscan(
            &data,
            DbscanParams {
                eps: 1.0,
                min_points: 2,
            },
        );
        assert_eq!(cluster_count(&labels), 1);
        assert!(labels.iter().all(|l| l.cluster() == Some(0)));
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let data = Dataset::from_rows(blob(0.0, 0.0, 5));
        let labels = dbscan(
            &data,
            DbscanParams {
                eps: 1e-9,
                min_points: 3,
            },
        );
        assert_eq!(cluster_count(&labels), 0);
        assert!(labels.iter().all(|&l| l == DbscanLabel::Noise));
    }

    #[test]
    fn min_points_one_makes_every_point_core() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![100.0]]);
        let labels = dbscan(
            &data,
            DbscanParams {
                eps: 0.1,
                min_points: 1,
            },
        );
        assert_eq!(cluster_count(&labels), 2);
    }

    #[test]
    fn border_point_joins_first_discovering_cluster() {
        // Points: core cluster at 0..3 (eps=1, min_points=3), border at 3.5
        // reachable from the cluster but itself not core.
        let data = Dataset::from_rows(vec![vec![0.0], vec![0.5], vec![1.0], vec![1.9]]);
        let labels = dbscan(
            &data,
            DbscanParams {
                eps: 1.0,
                min_points: 3,
            },
        );
        assert_eq!(labels[3].cluster(), Some(0), "border point adopted");
    }

    #[test]
    fn deterministic_labeling() {
        let mut rows = blob(0.0, 0.0, 5);
        rows.extend(blob(5.0, 5.0, 5));
        let data = Dataset::from_rows(rows);
        let p = DbscanParams {
            eps: 0.5,
            min_points: 2,
        };
        assert_eq!(dbscan(&data, p), dbscan(&data, p));
    }

    #[test]
    #[should_panic(expected = "min_points")]
    fn zero_min_points_panics() {
        let data = Dataset::from_rows(vec![vec![0.0]]);
        let _ = dbscan(
            &data,
            DbscanParams {
                eps: 1.0,
                min_points: 0,
            },
        );
    }
}
