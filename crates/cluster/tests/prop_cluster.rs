//! Additional property tests for the clustering crate.

use incprof_cluster::{
    adjusted_rand_index, kmeans, rand_index, select_k, Dataset, KMeansConfig, KSelectionMethod,
    Scaling,
};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..4).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(-50.0f64..50.0, d..=d), 2..20)
            .prop_map(Dataset::from_rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minmax_scaling_bounds_columns(data in arb_dataset()) {
        let scaled = Scaling::MinMax.apply(&data);
        for i in 0..scaled.nrows() {
            for &v in scaled.row(i) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn row_fraction_rows_sum_to_one_or_zero(data in arb_dataset()) {
        // Make data non-negative first (self times are non-negative).
        let rows: Vec<Vec<f64>> =
            data.iter_rows().map(|r| r.iter().map(|v| v.abs()).collect()).collect();
        let data = Dataset::from_rows(rows);
        let scaled = Scaling::RowFraction.apply(&data);
        for i in 0..scaled.nrows() {
            let sum: f64 = scaled.row(i).iter().sum();
            prop_assert!(
                (sum - 1.0).abs() < 1e-9 || sum.abs() < 1e-12,
                "row {i} sums to {sum}"
            );
        }
    }

    #[test]
    fn zscore_columns_have_zero_mean(data in arb_dataset()) {
        let scaled = Scaling::ZScore.apply(&data);
        for j in 0..scaled.ncols() {
            let mean: f64 =
                (0..scaled.nrows()).map(|i| scaled.get(i, j)).sum::<f64>()
                    / scaled.nrows() as f64;
            prop_assert!(mean.abs() < 1e-9, "column {j} mean {mean}");
        }
    }

    #[test]
    fn wcss_is_nonincreasing_in_k_with_restarts(data in arb_dataset()) {
        let mut prev = f64::INFINITY;
        let k_max = 4.min(data.nrows());
        for k in 1..=k_max {
            let cfg = KMeansConfig { restarts: 16, ..KMeansConfig::new(k) };
            let res = kmeans(&data, &cfg);
            prop_assert!(res.wcss <= prev + 1e-6, "wcss rose at k={k}");
            prev = res.wcss;
        }
    }

    #[test]
    fn selection_result_is_a_partition(data in arb_dataset()) {
        let sel = select_k(&data, 6, KSelectionMethod::Elbow, &KMeansConfig::new(0));
        // Every cluster id below k is inhabited.
        for c in 0..sel.k {
            prop_assert!(sel.result.assignments.contains(&c), "cluster {c} empty");
        }
        prop_assert!(sel.result.assignments.iter().all(|&a| a < sel.k));
    }

    #[test]
    fn ari_invariants(labels in proptest::collection::vec(0usize..4, 2..30)) {
        // Identity and permutation invariance.
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        prop_assert!((adjusted_rand_index(&labels, &permuted) - 1.0).abs() < 1e-9);
        // Bounded above by 1; rand index in [0,1].
        let other: Vec<usize> = labels.iter().map(|&l| l / 2).collect();
        let ari = adjusted_rand_index(&labels, &other);
        prop_assert!(ari <= 1.0 + 1e-12, "ari {ari}");
        let ri = rand_index(&labels, &other);
        prop_assert!((0.0..=1.0).contains(&ri));
    }
}
