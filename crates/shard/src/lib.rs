//! incprof-shard: a consistent-hash session router for a cluster of
//! `incprof-serve` backends.
//!
//! One `incprof-serve` process answers streaming phase queries for the
//! sessions on one machine; this crate is the horizontal step. A
//! [`router::Router`] accepts ordinary IPRF/1–v2 client connections and
//! forwards every frame — unmodified, trace extension included — to the
//! backend its `session_id` hashes to on a fixed virtual-node
//! [`ring::Ring`]. Placement is a pure function of
//! `(backend_count, session_id)`: deterministic, testable, and agreed
//! on by every router instance without coordination.
//!
//! The cluster survives any single backend dying because the serve
//! layer already made sessions durable and relocatable: all backends
//! share one `--store-dir`, a dead backend's sessions re-open on the
//! ring's next healthy node via the serve registry's adopt-by-id path
//! (replaying the snapshot log, checkpoint-warm when valid), and the
//! in-flight request is retransmitted and answered after recovery —
//! the backend's duplicate-ack recognition makes the retry invisible.
//!
//! The router also fronts the admin plane: `Scrape` fans out to every
//! backend and merges the expositions into one cluster view with a
//! `shard` label, and `Health` aggregates per-backend status. See
//! `docs/CLUSTER.md` for ring layout, failover and drain semantics,
//! and the merged scrape format.
//!
//! Everything is `std`-only: no async runtime, no external crates.

pub mod ring;
pub mod router;

pub use ring::{mix64, Ring, VNODES_PER_BACKEND};
pub use router::{BackendSpec, Router, RouterConfig, RouterHandle};
