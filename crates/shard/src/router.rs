//! The session router.
//!
//! ```text
//!                      ┌──────────────────┐      ring(session_id)
//!  IPRF clients ──────▶│  incprof-shard   │──┬──▶ backend 0 (incprof-serve)
//!  (TCP/Unix)          │  acceptor + one  │  ├──▶ backend 1
//!                      │  thread per conn │  └──▶ backend N-1
//!                      └──────────────────┘
//! ```
//!
//! The router speaks the ordinary IPRF/1–v2 codec on its front socket
//! and forwards every data-plane frame to the backend the
//! [`Ring`] assigns its `session_id` — *unmodified*,
//! including the v2 trace extension, so a traced push resolves
//! client→router→backend as one tree. The single rewrite in the whole
//! protocol: an `Open` with session id 0 (allocate-for-me) gets a
//! router-allocated cluster-wide id before routing, because each
//! backend's local allocator cannot hand out cluster-unique ids.
//!
//! Failover: a broken pipe, reply timeout, or `ShuttingDown` error from
//! a backend marks it down (permanently, for this router's life) and
//! the in-flight frame retransmits to the ring's next healthy backend,
//! which adopts the session id and replays its state from the shared
//! `--store-dir` log. The serve layer's duplicate-ack recognition makes
//! the retransmission invisible to the client. `Busy` replies pass
//! through untouched — per-backend backpressure reaches the client that
//! caused it.

use crate::ring::Ring;
use incprof_serve::frame::{
    read_frame, write_frame, ErrorCode, ErrorInfo, Frame, FrameType, ReadOutcome,
    DEFAULT_MAX_PAYLOAD,
};
use incprof_serve::server::{bind_addr, wake_acceptor, Conn, Listener};
use incprof_serve::{BindAddr, RetentionPolicy, Store};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock a mutex, continuing through poisoning (router state is plain
/// data; a poisoned lock only means a peer thread died mid-request).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One backend as the router dials it.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Data-plane address (`host:port`, or a Unix socket path when it
    /// contains `/`).
    pub data: String,
    /// Admin-plane address, when the backend exposes one; backends
    /// without it are skipped by the merged scrape and health fan-out.
    pub admin: Option<String>,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Front listen address for client traffic.
    pub addr: BindAddr,
    /// The backends, in ring order (index = shard number).
    pub backends: Vec<BackendSpec>,
    /// Optional merged admin listener (scrape fan-out, health).
    pub admin: Option<BindAddr>,
    /// The shared store root the backends persist into. Scanned once at
    /// bind time to seed the cluster-wide session id allocator past any
    /// ids a previous cluster persisted.
    pub store_dir: Option<PathBuf>,
    /// Cap on a single frame's payload bytes.
    pub max_payload: u32,
    /// Socket read poll interval; also the shutdown-observation latency.
    pub read_timeout: Duration,
    /// Idle client connections are dropped after this long.
    pub idle_timeout: Duration,
    /// How long to wait for a backend's reply before declaring it dead.
    pub reply_timeout: Duration,
    /// Cap on concurrently served client connections; excess accepts
    /// get a `Busy` reply and are dropped.
    pub max_conns: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
            backends: Vec::new(),
            admin: None,
            store_dir: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(30),
            reply_timeout: Duration::from_secs(30),
            max_conns: 64,
        }
    }
}

struct RouterShared {
    config: RouterConfig,
    ring: Ring,
    shutdown: AtomicBool,
    /// Per-backend health; a false value is permanent for the router's
    /// life (no flapping, no half-open probes — restart to rejoin).
    up: Vec<AtomicBool>,
    /// Cluster-wide session id allocator (seeded past the store).
    next_id: AtomicU64,
    /// Live client-connection count, for the accept cap.
    conns: AtomicUsize,
    /// Last known backend per session, for the replay counters.
    placement: Mutex<HashMap<u64, usize>>,
    /// Frames forwarded per backend (bench reads this per shard).
    routed: Vec<AtomicU64>,
}

impl RouterShared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn backend_up(&self, b: usize) -> bool {
        self.up.get(b).is_some_and(|f| f.load(Ordering::Acquire))
    }

    fn backends_up(&self) -> usize {
        self.up.iter().filter(|f| f.load(Ordering::Acquire)).count()
    }

    /// Mark a backend dead (idempotent; counts the death once).
    fn mark_down(&self, b: usize) {
        let Some(flag) = self.up.get(b) else { return };
        if flag.swap(false, Ordering::AcqRel) {
            incprof_obs::counter(incprof_obs::names::SHARD_BACKEND_DEATHS).inc();
            incprof_obs::gauge(incprof_obs::names::SHARD_BACKENDS_UP)
                .set(self.backends_up() as u64);
            incprof_obs::warn!(
                "backend {b} ({}) marked down; its sessions fail over on next touch",
                self.config.backends[b].data
            );
        }
    }

    /// Record where a session routed; counts a replay when it moved.
    fn note_placement(&self, session_id: u64, backend: usize) {
        let mut map = lock(&self.placement);
        match map.insert(session_id, backend) {
            Some(prev) if prev != backend => {
                incprof_obs::counter(incprof_obs::names::SHARD_SESSIONS_REPLAYED).inc();
            }
            _ => {}
        }
    }
}

/// A bound (but not yet running) router.
pub struct Router {
    listener: Listener,
    addr: String,
    admin: Option<(Listener, String)>,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Bind the front (and admin) listener and seed the id allocator
    /// from the shared store. Requires at least one backend.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a shard router needs at least one backend",
            ));
        }
        let (listener, addr) = bind_addr(&config.addr)?;
        let admin = match &config.admin {
            Some(spec) => Some(bind_addr(spec)?),
            None => None,
        };
        // Seed cluster-wide allocation past anything a previous cluster
        // persisted, exactly as a backend's recover() does locally.
        let mut next_id = 1u64;
        if let Some(dir) = &config.store_dir {
            let store = Store::open(dir, RetentionPolicy::keep_all(), 1)?;
            if let Ok(ids) = store.scan() {
                if let Some(&max) = ids.iter().max() {
                    next_id = max + 1;
                }
            }
        }
        let n = config.backends.len();
        let ring = Ring::new(n);
        let shared = Arc::new(RouterShared {
            ring,
            shutdown: AtomicBool::new(false),
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            next_id: AtomicU64::new(next_id),
            conns: AtomicUsize::new(0),
            placement: Mutex::new(HashMap::new()),
            routed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            config,
        });
        incprof_obs::gauge(incprof_obs::names::SHARD_BACKENDS_UP).set(n as u64);
        Ok(Router {
            listener,
            addr,
            admin,
            shared,
        })
    }

    /// The bound front address (`ip:port` or Unix path).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Spawn the acceptor (and admin) threads and return a handle.
    pub fn start(self) -> io::Result<RouterHandle> {
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::with_capacity(2);
        let mut admin_addr = None;
        if let Some((listener, a)) = self.admin {
            let shared = Arc::clone(&self.shared);
            let t = std::thread::Builder::new()
                .name("incprof-shard-admin".to_string())
                .spawn(move || admin_loop(&listener, &shared))?;
            threads.push(t);
            admin_addr = Some(a);
        }
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let spawned = Arc::clone(&conn_threads);
        let acceptor = std::thread::Builder::new()
            .name("incprof-shard-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared, &spawned))?;
        threads.push(acceptor);
        Ok(RouterHandle {
            shared: self.shared,
            addr: self.addr,
            admin_addr,
            threads,
            conn_threads,
        })
    }
}

/// Handle to a running router.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    addr: String,
    admin_addr: Option<String>,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The bound front address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The merged admin socket's address, when configured.
    pub fn admin_addr(&self) -> Option<&str> {
        self.admin_addr.as_deref()
    }

    /// Frames forwarded to each backend since start (index = shard).
    pub fn routed_per_backend(&self) -> Vec<u64> {
        self.shared
            .routed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Which backends the router still considers healthy.
    pub fn backends_up(&self) -> Vec<bool> {
        self.shared
            .up
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .collect()
    }

    /// Flip the shutdown flag without joining (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        wake_acceptor(&self.shared.config.addr, &self.addr);
        if let (Some(spec), Some(addr)) = (&self.shared.config.admin, &self.admin_addr) {
            wake_acceptor(spec, addr);
        }
    }

    /// Whether shutdown has been requested (by flag or by frame).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Block until shutdown is requested — by a `Shutdown` frame from
    /// the wire or by `external` flipping true (e.g. a SIGINT flag).
    pub fn wait(&self, external: Option<&AtomicBool>) {
        loop {
            if self.shared.shutting_down() {
                return;
            }
            if let Some(flag) = external {
                if flag.load(Ordering::Acquire) {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Gracefully stop: flag, wake, join every router thread, then
    /// forward `Shutdown` to every still-healthy backend and await its
    /// ack — the drain ordering `docs/CLUSTER.md` documents. Backends
    /// already marked down are skipped (their drain happened when they
    /// died, or never will).
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for t in lock(&self.conn_threads).drain(..) {
            let _ = t.join();
        }
        drain_backends(&self.shared);
        if let BindAddr::Unix(path) = &self.shared.config.addr {
            let _ = std::fs::remove_file(path);
        }
        if let Some(BindAddr::Unix(path)) = &self.shared.config.admin {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Forward `Shutdown` to every healthy backend and wait (bounded) for
/// each `ShutdownAck`. Errors are logged, not fatal: a backend that
/// died mid-drain is already durable up to its last ack.
fn drain_backends(shared: &RouterShared) {
    for (b, spec) in shared.config.backends.iter().enumerate() {
        if !shared.backend_up(b) {
            continue;
        }
        let outcome = (|| -> Result<(), String> {
            let mut conn =
                dial(&spec.data, shared.config.read_timeout).map_err(|e| e.to_string())?;
            write_frame(&mut conn, &Frame::empty(FrameType::Shutdown, 0))
                .map_err(|e| e.to_string())?;
            match read_reply(&mut conn, shared, Duration::from_secs(10)) {
                Ok(f) if f.frame_type == FrameType::ShutdownAck => Ok(()),
                Ok(f) => Err(format!("expected ShutdownAck, got {:?}", f.frame_type)),
                Err(e) => Err(e),
            }
        })();
        if let Err(e) = outcome {
            incprof_obs::warn!("backend {b} ({}) drain failed: {e}", spec.data);
        }
    }
}

/// Dial one backend address (`/` ⇒ Unix socket path) with the poll
/// interval set.
fn dial(addr: &str, read_timeout: Duration) -> io::Result<Conn> {
    if addr.contains('/') {
        let s = std::os::unix::net::UnixStream::connect(addr)?;
        s.set_read_timeout(Some(read_timeout))?;
        Ok(Conn::Unix(s))
    } else {
        let s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(read_timeout))?;
        Ok(Conn::Tcp(s))
    }
}

fn accept_loop(
    listener: &Listener,
    shared: &Arc<RouterShared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                if shared.shutting_down() {
                    return;
                }
                incprof_obs::warn!("shard accept failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        incprof_obs::counter(incprof_obs::names::SHARD_CONNS_ACCEPTED).inc();
        if shared.conns.load(Ordering::Acquire) >= shared.config.max_conns {
            let mut conn = conn;
            let _ = write_frame(&mut conn, &Frame::empty(FrameType::Busy, 0));
            continue;
        }
        shared.conns.fetch_add(1, Ordering::AcqRel);
        let shared2 = Arc::clone(shared);
        let spawn = std::thread::Builder::new()
            .name("incprof-shard-conn".to_string())
            .spawn(move || {
                client_loop(conn, &shared2);
                shared2.conns.fetch_sub(1, Ordering::AcqRel);
            });
        match spawn {
            Ok(t) => lock(conn_threads).push(t),
            Err(e) => {
                shared.conns.fetch_sub(1, Ordering::AcqRel);
                incprof_obs::warn!("could not spawn connection thread: {e}");
            }
        }
    }
}

/// Serve one client connection: read frames, route, forward replies.
/// Owns one lazily-dialed connection per backend so request/reply
/// ordering per backend is trivial and `Busy` propagates naturally.
fn client_loop(mut conn: Conn, shared: &RouterShared) {
    if conn.set_read_timeout(shared.config.read_timeout).is_err() {
        return;
    }
    let mut backends: Vec<Option<Conn>> = (0..shared.config.backends.len()).map(|_| None).collect();
    let idle_limit = shared.config.idle_timeout.as_nanos();
    let mut idle_polls: u128 = 0;
    loop {
        if shared.shutting_down() {
            send_error(&mut conn, 0, ErrorCode::ShuttingDown, "router draining");
            return;
        }
        let outcome = match read_frame(&mut conn, shared.config.max_payload) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let frame = match outcome {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut => {
                idle_polls += 1;
                if idle_polls * shared.config.read_timeout.as_nanos() >= idle_limit {
                    return;
                }
                continue;
            }
            ReadOutcome::Malformed(e) => {
                send_error(&mut conn, 0, ErrorCode::of_frame_error(&e), &e.to_string());
                return;
            }
        };
        idle_polls = 0;
        if !dispatch(&mut conn, shared, frame, &mut backends) {
            return;
        }
    }
}

/// Handle one client frame; returns false when the connection should
/// end.
fn dispatch(
    conn: &mut Conn,
    shared: &RouterShared,
    mut frame: Frame,
    backends: &mut [Option<Conn>],
) -> bool {
    match frame.frame_type {
        // The router is the liveness endpoint the client is talking to.
        FrameType::Ping => send(conn, &Frame::empty(FrameType::Pong, frame.session_id)),
        // Cluster-wide shutdown: drain every backend first, then ack —
        // when the client sees ShutdownAck the whole cluster is durable.
        FrameType::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            drain_backends(shared);
            send(conn, &Frame::empty(FrameType::ShutdownAck, 0));
            wake_acceptor(&shared.config.addr, &front_addr_of(shared));
            false
        }
        FrameType::Scrape | FrameType::TraceGet | FrameType::RecorderDump | FrameType::Health => {
            send_error(
                conn,
                frame.session_id,
                ErrorCode::BadType,
                &format!("{:?} is admin-only; use the admin socket", frame.frame_type),
            )
        }
        FrameType::Open | FrameType::Snapshot | FrameType::Query | FrameType::Close => {
            // The one frame the router rewrites: an allocate-for-me Open
            // gets a cluster-wide id so backends never collide. Every
            // other frame forwards byte-identical (PROTOCOL.md §router).
            if frame.frame_type == FrameType::Open && frame.session_id == 0 {
                frame.session_id = shared.next_id.fetch_add(1, Ordering::AcqRel);
            }
            forward(conn, shared, &frame, backends)
        }
        other => send_error(
            conn,
            frame.session_id,
            ErrorCode::BadType,
            &format!("{other:?} is not a routable request"),
        ),
    }
}

fn front_addr_of(shared: &RouterShared) -> String {
    match &shared.config.addr {
        BindAddr::Tcp(spec) => spec.clone(),
        BindAddr::Unix(path) => path.display().to_string(),
    }
}

/// Route `frame` to its session's backend and relay the reply. On
/// backend death: mark it down, walk the ring to the next healthy
/// backend, and retransmit — the in-flight request is answered after
/// recovery, never errored, as long as any backend survives.
fn forward(
    conn: &mut Conn,
    shared: &RouterShared,
    frame: &Frame,
    backends: &mut [Option<Conn>],
) -> bool {
    let sid = frame.session_id;
    let mut rerouted = false;
    loop {
        let Some(b) = shared.ring.route(sid, |i| shared.backend_up(i)) else {
            return send_error(
                conn,
                sid,
                ErrorCode::ShuttingDown,
                "no healthy backends remain",
            );
        };
        if rerouted {
            incprof_obs::counter(incprof_obs::names::SHARD_FAILOVER_REROUTES).inc();
        }
        match forward_once(shared, frame, backends, b) {
            Ok(reply) => {
                shared.note_placement(sid, b);
                incprof_obs::counter(incprof_obs::names::SHARD_FRAMES_ROUTED).inc();
                if let Some(c) = shared.routed.get(b) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                return send(conn, &reply);
            }
            Err(why) => {
                incprof_obs::warn!("backend {b} failed ({why}); rerouting session {sid}");
                shared.mark_down(b);
                if let Some(slot) = backends.get_mut(b) {
                    *slot = None;
                }
                rerouted = true;
            }
        }
    }
}

/// One write/read exchange with backend `b` on this connection's cached
/// link (dialing it if needed). Any error means "treat the backend as
/// dead": dial failure, broken pipe, reply timeout, torn reply, or an
/// explicit `ShuttingDown` error frame (a draining backend has stopped
/// accepting work; its durable state is what failover replays).
fn forward_once(
    shared: &RouterShared,
    frame: &Frame,
    backends: &mut [Option<Conn>],
    b: usize,
) -> Result<Frame, String> {
    let Some(slot) = backends.get_mut(b) else {
        return Err("backend index out of range".to_string());
    };
    if slot.is_none() {
        let addr = &shared.config.backends[b].data;
        *slot = Some(dial(addr, shared.config.read_timeout).map_err(|e| e.to_string())?);
    }
    let Some(link) = slot.as_mut() else {
        return Err("backend link unavailable".to_string());
    };
    write_frame(link, frame).map_err(|e| e.to_string())?;
    let reply = read_reply(link, shared, shared.config.reply_timeout)?;
    if reply.frame_type == FrameType::Error {
        if let Ok(info) = ErrorInfo::decode(&reply.payload) {
            if info.code == ErrorCode::ShuttingDown {
                return Err("backend is draining".to_string());
            }
        }
    }
    Ok(reply)
}

/// Read one frame off a backend link, polling up to `limit`.
fn read_reply(link: &mut Conn, shared: &RouterShared, limit: Duration) -> Result<Frame, String> {
    let deadline = Instant::now() + limit;
    loop {
        match read_frame(link, shared.config.max_payload) {
            Ok(ReadOutcome::Frame(f)) => return Ok(f),
            Ok(ReadOutcome::TimedOut) => {
                if Instant::now() >= deadline {
                    return Err("reply timed out".to_string());
                }
            }
            Ok(ReadOutcome::Closed) => return Err("connection closed".to_string()),
            Ok(ReadOutcome::Malformed(e)) => return Err(format!("malformed reply: {e}")),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Write a frame to the client; returns false when the peer is gone.
fn send(conn: &mut Conn, frame: &Frame) -> bool {
    write_frame(conn, frame).is_ok()
}

fn send_error(conn: &mut Conn, session_id: u64, code: ErrorCode, message: &str) -> bool {
    send(
        conn,
        &Frame::with_payload(
            FrameType::Error,
            session_id,
            ErrorInfo::new(code, message).encode(),
        ),
    )
}

// --- merged admin plane ---

/// Accept loop for the router's admin listener: `Scrape` fans out to
/// every backend and merges the expositions under a `shard` label,
/// `Health` aggregates per-backend status, and trace/recorder dumps
/// answer from the router's own observability state.
fn admin_loop(listener: &Listener, shared: &Arc<RouterShared>) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                if shared.shutting_down() {
                    return;
                }
                incprof_obs::warn!("shard admin accept failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        incprof_obs::counter(incprof_obs::names::SHARD_ADMIN_CONNS).inc();
        admin_conn(conn, shared);
    }
}

fn admin_conn(mut conn: Conn, shared: &RouterShared) {
    if conn.set_read_timeout(shared.config.read_timeout).is_err() {
        return;
    }
    let idle_limit = shared.config.idle_timeout.as_nanos();
    let mut idle_polls: u128 = 0;
    loop {
        if shared.shutting_down() {
            return;
        }
        let outcome = match read_frame(&mut conn, shared.config.max_payload) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let frame = match outcome {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut => {
                idle_polls += 1;
                if idle_polls * shared.config.read_timeout.as_nanos() >= idle_limit {
                    return;
                }
                continue;
            }
            ReadOutcome::Malformed(e) => {
                send_error(&mut conn, 0, ErrorCode::of_frame_error(&e), &e.to_string());
                return;
            }
        };
        idle_polls = 0;
        if !dispatch_admin(&mut conn, shared, frame) {
            return;
        }
    }
}

fn dispatch_admin(conn: &mut Conn, shared: &RouterShared, frame: Frame) -> bool {
    match frame.frame_type {
        FrameType::Scrape => {
            incprof_obs::counter(incprof_obs::names::SHARD_ADMIN_SCRAPES).inc();
            let text = merged_scrape(shared);
            send(
                conn,
                &Frame::with_payload(FrameType::ScrapeReply, 0, text.into_bytes()),
            )
        }
        FrameType::Health => {
            let json = merged_health(shared);
            send(
                conn,
                &Frame::with_payload(FrameType::HealthReply, 0, json.into_bytes()),
            )
        }
        FrameType::TraceGet => {
            let Ok(bytes) = <[u8; 8]>::try_from(frame.payload.as_slice()) else {
                return send_error(
                    conn,
                    0,
                    ErrorCode::BadPayload,
                    &format!(
                        "TraceGet payload must be 8 bytes, got {}",
                        frame.payload.len()
                    ),
                );
            };
            let trace_id = u64::from_le_bytes(bytes);
            let tree =
                incprof_obs::trace::store_trace_tree(incprof_obs::global().spans(), trace_id);
            let json = serde_json::to_string(&tree)
                .unwrap_or_else(|e| format!("{{\"error\":\"serialize failed: {e}\"}}"));
            send(
                conn,
                &Frame::with_payload(FrameType::TraceReply, 0, json.into_bytes()),
            )
        }
        FrameType::RecorderDump => {
            let recorder = incprof_obs::recorder();
            let events = recorder.snapshot();
            let json = format!(
                "{{\"total\":{},\"events\":{}}}",
                recorder.total(),
                serde_json::to_string(&events).unwrap_or_else(|_| "[]".to_string())
            );
            send(
                conn,
                &Frame::with_payload(FrameType::RecorderReply, 0, json.into_bytes()),
            )
        }
        other => send_error(
            conn,
            frame.session_id,
            ErrorCode::BadType,
            &format!("{other:?} is not served on the router admin socket"),
        ),
    }
}

/// One admin request/reply against a backend's admin socket.
fn backend_admin_text(
    shared: &RouterShared,
    addr: &str,
    request: FrameType,
    want: FrameType,
) -> Result<String, String> {
    let mut link = dial(addr, shared.config.read_timeout).map_err(|e| e.to_string())?;
    write_frame(&mut link, &Frame::empty(request, 0)).map_err(|e| e.to_string())?;
    let reply = read_reply(&mut link, shared, Duration::from_secs(10))?;
    if reply.frame_type != want {
        return Err(format!("expected {want:?}, got {:?}", reply.frame_type));
    }
    String::from_utf8(reply.payload).map_err(|_| "payload is not UTF-8".to_string())
}

/// `shard.frames.routed` → `incprof_shard_frames_routed`.
fn prom_name(name: &str) -> String {
    format!("incprof_{}", name.replace('.', "_"))
}

/// Fan `Scrape` out to every up backend with an admin address and merge
/// the expositions into one cluster view: every sample line gains a
/// `shard="<index>"` label (appended to existing labels), `# TYPE`
/// lines are emitted once (first shard wins), and the router's own
/// `shard.*` counters are appended unlabelled at the end.
fn merged_scrape(shared: &RouterShared) -> String {
    let mut out = String::with_capacity(4096);
    let mut seen_types: BTreeSet<String> = BTreeSet::new();
    for (b, spec) in shared.config.backends.iter().enumerate() {
        let Some(admin) = &spec.admin else { continue };
        if !shared.backend_up(b) {
            continue;
        }
        match backend_admin_text(shared, admin, FrameType::Scrape, FrameType::ScrapeReply) {
            Ok(text) => merge_exposition(&mut out, &text, b, &mut seen_types),
            Err(e) => {
                incprof_obs::warn!("backend {b} scrape failed: {e}");
            }
        }
    }
    // Router-local state: only the shard.* family, so an in-process
    // cluster (tests, bench) never double-counts backend metrics that
    // happen to share this process's global registry.
    let metrics = incprof_obs::global().metrics();
    for (name, value) in metrics.counter_values() {
        if name.starts_with("shard.") {
            let n = prom_name(&name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
    }
    for (name, value) in metrics.gauge_values() {
        if name.starts_with("shard.") {
            let n = prom_name(&name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
    }
    out
}

/// Merge one backend's exposition into `out` under `shard="<b>"`.
fn merge_exposition(out: &mut String, text: &str, b: usize, seen_types: &mut BTreeSet<String>) {
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            if seen_types.insert(decl.to_string()) {
                out.push_str(line);
                out.push('\n');
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((name_part, value)) = line.rsplit_once(' ') else {
            continue;
        };
        match name_part.split_once('{') {
            Some((name, labels)) => {
                let labels = labels.trim_end_matches('}');
                out.push_str(&format!("{name}{{{labels},shard=\"{b}\"}} {value}\n"));
            }
            None => {
                out.push_str(&format!("{name_part}{{shard=\"{b}\"}} {value}\n"));
            }
        }
    }
}

/// Aggregate per-backend health into one JSON document. Status is `ok`
/// only while every backend is up and answering; otherwise `degraded`.
fn merged_health(shared: &RouterShared) -> String {
    let mut entries = Vec::with_capacity(shared.config.backends.len());
    let mut all_ok = true;
    for (b, spec) in shared.config.backends.iter().enumerate() {
        let health = if !shared.backend_up(b) {
            all_ok = false;
            None
        } else {
            match &spec.admin {
                Some(admin) => {
                    match backend_admin_text(
                        shared,
                        admin,
                        FrameType::Health,
                        FrameType::HealthReply,
                    ) {
                        Ok(json) => Some(json),
                        Err(_) => {
                            all_ok = false;
                            None
                        }
                    }
                }
                None => Some("null".to_string()),
            }
        };
        entries.push(format!(
            "{{\"shard\":{b},\"up\":{},\"health\":{}}}",
            shared.backend_up(b),
            health.unwrap_or_else(|| "null".to_string())
        ));
    }
    format!(
        "{{\"status\":\"{}\",\"backends\":[{}],\"draining\":{}}}",
        if all_ok { "ok" } else { "degraded" },
        entries.join(","),
        shared.shutting_down()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_for_test(n: usize) -> RouterShared {
        RouterShared {
            ring: Ring::new(n),
            shutdown: AtomicBool::new(false),
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            next_id: AtomicU64::new(1),
            conns: AtomicUsize::new(0),
            placement: Mutex::new(HashMap::new()),
            routed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            config: RouterConfig {
                backends: (0..n)
                    .map(|i| BackendSpec {
                        data: format!("127.0.0.1:{}", 20000 + i),
                        admin: None,
                    })
                    .collect(),
                ..RouterConfig::default()
            },
        }
    }

    #[test]
    fn merge_labels_every_sample_and_dedupes_types() {
        let text = "# TYPE incprof_serve_frames_received counter\n\
                    incprof_serve_frames_received 7\n\
                    # TYPE incprof_session_snapshots gauge\n\
                    incprof_session_snapshots{session=\"3\"} 12\n";
        let mut out = String::new();
        let mut seen = BTreeSet::new();
        merge_exposition(&mut out, text, 0, &mut seen);
        merge_exposition(&mut out, text, 1, &mut seen);
        assert_eq!(
            out.matches("# TYPE incprof_serve_frames_received counter")
                .count(),
            1,
            "{out}"
        );
        assert!(
            out.contains("incprof_serve_frames_received{shard=\"0\"} 7"),
            "{out}"
        );
        assert!(
            out.contains("incprof_serve_frames_received{shard=\"1\"} 7"),
            "{out}"
        );
        assert!(
            out.contains("incprof_session_snapshots{session=\"3\",shard=\"1\"} 12"),
            "{out}"
        );
    }

    #[test]
    fn mark_down_is_idempotent_and_updates_gauge() {
        let shared = shared_for_test(3);
        assert_eq!(shared.backends_up(), 3);
        shared.mark_down(1);
        shared.mark_down(1);
        assert_eq!(shared.backends_up(), 2);
        assert!(!shared.backend_up(1));
        assert!(shared.backend_up(0) && shared.backend_up(2));
    }

    #[test]
    fn health_reports_degraded_after_a_death() {
        let shared = shared_for_test(2);
        assert!(merged_health(&shared).contains("\"status\":\"ok\""));
        shared.mark_down(0);
        let json = merged_health(&shared);
        assert!(json.contains("\"status\":\"degraded\""), "{json}");
        assert!(json.contains("{\"shard\":0,\"up\":false,"), "{json}");
        assert!(json.contains("{\"shard\":1,\"up\":true,"), "{json}");
    }

    #[test]
    fn bind_rejects_zero_backends() {
        assert!(Router::bind(RouterConfig::default()).is_err());
    }
}
