//! The consistent-hash ring that places sessions on backends.
//!
//! Placement must be *deterministic* (a session id maps to the same
//! shard on every router, every restart, every test run) and *stable*
//! (adding or losing a backend moves only the sessions that must move).
//! Both come from the classic fixed-virtual-node construction: every
//! backend owns [`VNODES_PER_BACKEND`] points on a `u64` circle, a
//! session hashes to one point, and it belongs to the first vnode
//! clockwise from there whose backend is healthy.
//!
//! All hashing is the SplitMix64 finalizer ([`mix64`]) — cheap,
//! stateless, and well-distributed — so the whole layout is a pure
//! function of `(backend_count, session_id)` with no RNG and no clock.

/// Virtual nodes per backend. Fixed (not configurable) so placement is
/// a protocol-level constant: two routers over the same backend count
/// always agree.
pub const VNODES_PER_BACKEND: usize = 64;

/// SplitMix64 finalizer: a cheap, well-distributed stateless mix.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fixed consistent-hash ring over `backends` shards.
#[derive(Debug, Clone)]
pub struct Ring {
    backends: usize,
    /// `(point, backend)` sorted by point (ties broken by backend index
    /// so even a point collision is deterministic).
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build the ring for `backends` shards (at least 1).
    pub fn new(backends: usize) -> Ring {
        let backends = backends.max(1);
        let mut points = Vec::with_capacity(backends * VNODES_PER_BACKEND);
        for b in 0..backends {
            for v in 0..VNODES_PER_BACKEND {
                // Two rounds decorrelate the (small-integer) backend and
                // vnode indices before they land on the circle.
                let point = mix64(mix64(b as u64) ^ (v as u64).wrapping_mul(0x9e37_79b9));
                points.push((point, b));
            }
        }
        points.sort_unstable();
        Ring { backends, points }
    }

    /// Number of backends the ring was built for.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The session's home shard, ignoring health (the owner an
    /// uninterrupted cluster routes to).
    pub fn owner(&self, session_id: u64) -> usize {
        self.route(session_id, |_| true)
            // lint: allow(P01, new() guarantees at least one backend, so route with an always-true filter cannot return None)
            .expect("ring always has at least one vnode")
    }

    /// The first backend clockwise from the session's point for which
    /// `healthy` holds, or `None` when no backend passes. This is the
    /// failover rule: when a backend dies its sessions land on the next
    /// healthy vnode's backend, and every session placed elsewhere is
    /// untouched.
    pub fn route(&self, session_id: u64, healthy: impl Fn(usize) -> bool) -> Option<usize> {
        let point = mix64(session_id);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let n = self.points.len();
        for i in 0..n {
            let (_, b) = self.points[(start + i) % n];
            if healthy(b) {
                return Some(b);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_across_builds() {
        let a = Ring::new(3);
        let b = Ring::new(3);
        for sid in 0..1000u64 {
            assert_eq!(a.owner(sid), b.owner(sid));
        }
    }

    #[test]
    fn known_assignments_are_pinned() {
        // Golden placements: any change to the hash, the vnode count,
        // or the walk direction is a protocol break and must show up
        // here, not in a cluster mysteriously re-replaying sessions.
        let ring = Ring::new(3);
        let golden: &[(u64, usize)] = &[
            (1, 1),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 2),
            (6, 1),
            (7, 2),
            (8, 1),
            (42, 1),
            (1000, 2),
        ];
        for &(sid, shard) in golden {
            assert_eq!(ring.owner(sid), shard, "session {sid}");
        }
        let ring1 = Ring::new(1);
        for sid in 1..100u64 {
            assert_eq!(ring1.owner(sid), 0, "single backend owns everything");
        }
    }

    #[test]
    fn all_backends_receive_a_fair_share() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for sid in 0..4000u64 {
            counts[ring.owner(sid)] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&c),
                "backend {b} owns {c} of 4000 sessions — ring is badly skewed"
            );
        }
    }

    #[test]
    fn adding_a_backend_only_moves_sessions_onto_it() {
        let before = Ring::new(3);
        let after = Ring::new(4);
        let mut moved = 0usize;
        for sid in 0..2000u64 {
            let (b, a) = (before.owner(sid), after.owner(sid));
            if b != a {
                assert_eq!(a, 3, "session {sid} moved to {a}, not the new backend");
                moved += 1;
            }
        }
        // Consistent hashing moves ~1/4 of the keyspace to the new
        // backend; far outside that means the ring is rehashing.
        assert!(
            (200..=900).contains(&moved),
            "{moved} of 2000 sessions moved"
        );
    }

    #[test]
    fn losing_a_backend_only_moves_its_own_sessions() {
        let ring = Ring::new(3);
        let dead = 1usize;
        for sid in 0..2000u64 {
            let owner = ring.owner(sid);
            let rerouted = ring.route(sid, |b| b != dead).expect("two backends remain");
            if owner != dead {
                assert_eq!(
                    rerouted, owner,
                    "session {sid} moved though its owner is up"
                );
            } else {
                assert_ne!(rerouted, dead, "session {sid} routed to the dead backend");
            }
        }
    }

    #[test]
    fn route_with_nothing_healthy_is_none() {
        assert_eq!(Ring::new(3).route(7, |_| false), None);
    }
}
