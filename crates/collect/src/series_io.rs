//! On-disk persistence of sample series as gmon binary files.
//!
//! The paper's collector leaves behind a directory of renamed `gmon.out`
//! files — one binary cumulative profile per interval (Fig. 1). This
//! module writes and reads exactly that artifact: one
//! [`incprof_profile::GmonData`] file per sample, named
//! `gmon.out.<index>` so lexicographic order is sample order.

use crate::series::SampleSeries;
use incprof_profile::{FunctionTable, GmonData, ProfileError, ProfileSnapshot};
use std::path::Path;

/// Write one `gmon.out.<index>` binary per sample into `dir` (created if
/// missing). Returns the number of files written.
pub fn write_gmon_dir(
    series: &SampleSeries,
    table: &FunctionTable,
    dir: &Path,
) -> Result<usize, ProfileError> {
    std::fs::create_dir_all(dir)?;
    for snap in series.snapshots() {
        let gmon = snap.to_gmon(table);
        let path = dir.join(format!("gmon.out.{:06}", snap.sample_index));
        std::fs::write(path, gmon.encode())?;
    }
    Ok(series.len())
}

/// Read a directory of gmon binaries back into a sample series and the
/// function table of the *last* (most complete) sample. Files are read
/// in lexicographic name order; sample indices are reassigned densely in
/// that order, so a directory of files renamed by any monotone scheme
/// loads correctly.
pub fn read_gmon_dir(dir: &Path) -> Result<(SampleSeries, FunctionTable), ProfileError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut series = SampleSeries::new();
    let mut table = FunctionTable::new();
    for (i, path) in paths.iter().enumerate() {
        let bytes = std::fs::read(path)?;
        let mut gmon = GmonData::decode(&bytes)?;
        gmon.functions.rebuild_index();
        let mut snap = ProfileSnapshot::from_gmon(&gmon);
        snap.sample_index = i as u64;
        if gmon.functions.len() >= table.len() {
            table = gmon.functions;
        }
        series.push(snap);
    }
    Ok((series, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FlatProfile, FunctionId, FunctionStats};

    fn sample_series() -> (SampleSeries, FunctionTable) {
        let mut table = FunctionTable::new();
        let a = table.register("kernel_a");
        let b = table.register("kernel_b");
        let mut series = SampleSeries::new();
        let mut flat = FlatProfile::new();
        for i in 0..5u64 {
            flat.record_self_time(a, 1_000_000_000);
            flat.record_calls(a, 2);
            if i >= 2 {
                flat.record_self_time(b, 500_000_000);
            }
            series.push(ProfileSnapshot {
                sample_index: i,
                timestamp_ns: i * 1_000_000_000,
                flat: flat.clone(),
                callgraph: Default::default(),
            });
        }
        (series, table)
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("incprof_gmon_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_through_directory() {
        let (series, table) = sample_series();
        let dir = tmpdir("roundtrip");
        let n = write_gmon_dir(&series, &table, &dir).unwrap();
        assert_eq!(n, 5);
        let (back, back_table) = read_gmon_dir(&dir).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back_table.id_of("kernel_a"), table.id_of("kernel_a"));
        // Cumulative content identical sample-by-sample.
        for (orig, read) in series.snapshots().iter().zip(back.snapshots()) {
            assert_eq!(orig.flat, read.flat);
        }
        // And the interval pipeline runs on the loaded series.
        assert_eq!(back.interval_profiles().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_names_sort_in_sample_order() {
        let (series, table) = sample_series();
        let dir = tmpdir("names");
        write_gmon_dir(&series, &table, &dir).unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names[0], "gmon.out.000000");
        assert_eq!(names[4], "gmon.out.000004");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_panic() {
        let (series, table) = sample_series();
        let dir = tmpdir("corrupt");
        write_gmon_dir(&series, &table, &dir).unwrap();
        std::fs::write(dir.join("gmon.out.000002"), b"garbage").unwrap();
        assert!(read_gmon_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_loads_empty_series() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let (series, table) = read_gmon_dir(&dir).unwrap();
        assert!(series.is_empty());
        assert!(table.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn growing_function_table_keeps_latest() {
        // Later samples may know more functions than early ones.
        let (series, table) = sample_series();
        let dir = tmpdir("grow");
        write_gmon_dir(&series, &table, &dir).unwrap();
        let (_, back_table) = read_gmon_dir(&dir).unwrap();
        assert_eq!(back_table.len(), 2);
        let _ = (FunctionId(0), FunctionStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }
}
