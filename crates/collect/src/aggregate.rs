//! Cross-rank aggregate statistics.
//!
//! "Our framework does produce profiles and heartbeats from all processes
//! in an application, but at present we only use all the data for
//! aggregate descriptive statistics. All of the applications being used
//! are symmetrically parallel and thus all processes behave similarly"
//! (paper §VI). This module provides those statistics: per-function
//! moments across ranks, an imbalance ranking, a rank-symmetry check
//! (quantifying "all processes behave similarly"), and representative-rank
//! selection (the paper analyzes "one representative process").

use incprof_profile::{FlatProfile, FunctionId};
use std::collections::BTreeMap;

/// Cross-rank moments for one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionAggregate {
    /// Mean self time (seconds) across ranks.
    pub mean_self_secs: f64,
    /// Population standard deviation of self time across ranks.
    pub std_self_secs: f64,
    /// Minimum self time across ranks.
    pub min_self_secs: f64,
    /// Maximum self time across ranks.
    pub max_self_secs: f64,
    /// Mean call count across ranks.
    pub mean_calls: f64,
    /// Ranks in which the function appeared at all.
    pub present_on: usize,
}

impl FunctionAggregate {
    /// Coefficient of variation of self time (σ/μ); 0 = perfectly
    /// symmetric load, large = imbalance. 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean_self_secs > 0.0 {
            self.std_self_secs / self.mean_self_secs
        } else {
            0.0
        }
    }
}

/// Aggregate over the final cumulative profiles of all ranks.
#[derive(Debug, Clone, Default)]
pub struct RankAggregate {
    per_function: BTreeMap<FunctionId, FunctionAggregate>,
    n_ranks: usize,
}

impl RankAggregate {
    /// Build from one final cumulative profile per rank.
    ///
    /// # Panics
    /// Panics if `profiles` is empty.
    pub fn from_profiles(profiles: &[FlatProfile]) -> RankAggregate {
        assert!(!profiles.is_empty(), "need at least one rank profile");
        let n = profiles.len();
        let mut ids: BTreeMap<FunctionId, ()> = BTreeMap::new();
        for p in profiles {
            for (id, _) in p.iter() {
                ids.entry(id).or_insert(());
            }
        }
        let per_function = ids
            .keys()
            .map(|&id| {
                let values: Vec<f64> = profiles
                    .iter()
                    .map(|p| p.get(id).self_time as f64 / 1e9)
                    .collect();
                let calls: Vec<f64> = profiles.iter().map(|p| p.get(id).calls as f64).collect();
                let mean = values.iter().sum::<f64>() / n as f64;
                let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
                let present_on = profiles.iter().filter(|p| p.contains(id)).count();
                (
                    id,
                    FunctionAggregate {
                        mean_self_secs: mean,
                        std_self_secs: var.sqrt(),
                        min_self_secs: values.iter().copied().fold(f64::INFINITY, f64::min),
                        max_self_secs: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        mean_calls: calls.iter().sum::<f64>() / n as f64,
                        present_on,
                    },
                )
            })
            .collect();
        RankAggregate {
            per_function,
            n_ranks: n,
        }
    }

    /// Number of ranks aggregated.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Per-function aggregate, if observed on any rank.
    pub fn function(&self, id: FunctionId) -> Option<&FunctionAggregate> {
        self.per_function.get(&id)
    }

    /// Iterate `(FunctionId, &FunctionAggregate)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionAggregate)> {
        self.per_function.iter().map(|(&id, a)| (id, a))
    }

    /// The symmetry score: time-weighted mean of `1 − cv` across
    /// functions, in `[0, 1]`. 1.0 = every rank spent identical time in
    /// every function ("all processes behave similarly").
    pub fn symmetry_score(&self) -> f64 {
        let total: f64 = self.per_function.values().map(|a| a.mean_self_secs).sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.per_function
            .values()
            .map(|a| (1.0 - a.cv()).max(0.0) * a.mean_self_secs / total)
            .sum()
    }

    /// The `k` most imbalanced functions by coefficient of variation
    /// (descending), among functions carrying nonzero mean time.
    pub fn most_imbalanced(&self, k: usize) -> Vec<(FunctionId, f64)> {
        let mut v: Vec<(FunctionId, f64)> = self
            .per_function
            .iter()
            .filter(|(_, a)| a.mean_self_secs > 0.0)
            .map(|(&id, a)| (id, a.cv()))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Pick the representative rank: the one whose profile is closest
/// (Euclidean over per-function self seconds) to the cross-rank mean.
///
/// # Panics
/// Panics if `profiles` is empty.
pub fn representative_rank(profiles: &[FlatProfile]) -> usize {
    let agg = RankAggregate::from_profiles(profiles);
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (r, p) in profiles.iter().enumerate() {
        let mut d = 0.0;
        for (id, fa) in agg.iter() {
            let v = p.get(id).self_time as f64 / 1e9;
            d += (v - fa.mean_self_secs) * (v - fa.mean_self_secs);
        }
        if d < best_d {
            best_d = d;
            best = r;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::FunctionStats;

    fn profile(entries: &[(u32, f64, u64)]) -> FlatProfile {
        let mut p = FlatProfile::new();
        for &(id, secs, calls) in entries {
            p.set(
                FunctionId(id),
                FunctionStats {
                    self_time: (secs * 1e9) as u64,
                    calls,
                    child_time: 0,
                },
            );
        }
        p
    }

    #[test]
    fn symmetric_ranks_score_one() {
        let ranks = vec![profile(&[(0, 2.0, 5), (1, 1.0, 3)]); 4];
        let agg = RankAggregate::from_profiles(&ranks);
        assert_eq!(agg.n_ranks(), 4);
        assert!((agg.symmetry_score() - 1.0).abs() < 1e-12);
        assert_eq!(agg.function(FunctionId(0)).unwrap().cv(), 0.0);
        assert!(agg.most_imbalanced(3).iter().all(|&(_, cv)| cv == 0.0));
    }

    #[test]
    fn imbalance_is_detected_and_ranked() {
        let ranks = vec![
            profile(&[(0, 1.0, 1), (1, 1.0, 1)]),
            profile(&[(0, 1.0, 1), (1, 3.0, 1)]), // fn 1 skewed
        ];
        let agg = RankAggregate::from_profiles(&ranks);
        let f1 = agg.function(FunctionId(1)).unwrap();
        assert_eq!(f1.mean_self_secs, 2.0);
        assert_eq!(f1.std_self_secs, 1.0);
        assert_eq!(f1.min_self_secs, 1.0);
        assert_eq!(f1.max_self_secs, 3.0);
        let worst = agg.most_imbalanced(1);
        assert_eq!(worst[0].0, FunctionId(1));
        assert!(agg.symmetry_score() < 1.0);
    }

    #[test]
    fn function_missing_on_a_rank_counts_as_zero() {
        let ranks = vec![profile(&[(0, 2.0, 1)]), profile(&[])];
        let agg = RankAggregate::from_profiles(&ranks);
        let f0 = agg.function(FunctionId(0)).unwrap();
        assert_eq!(f0.mean_self_secs, 1.0);
        assert_eq!(f0.present_on, 1);
    }

    #[test]
    fn representative_rank_is_closest_to_mean() {
        let ranks = vec![
            profile(&[(0, 1.0, 1)]),
            profile(&[(0, 1.1, 1)]), // mean is 1.2 -> 1.1 closest
            profile(&[(0, 1.5, 1)]),
        ];
        assert_eq!(representative_rank(&ranks), 1);
    }

    #[test]
    fn single_rank_is_its_own_representative() {
        let ranks = vec![profile(&[(0, 1.0, 1)])];
        assert_eq!(representative_rank(&ranks), 0);
        assert!((RankAggregate::from_profiles(&ranks).symmetry_score() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_profiles_panic() {
        let _ = RankAggregate::from_profiles(&[]);
    }

    #[test]
    fn empty_profiles_everywhere_score_one() {
        let ranks = vec![FlatProfile::new(), FlatProfile::new()];
        let agg = RankAggregate::from_profiles(&ranks);
        assert_eq!(agg.symmetry_score(), 1.0);
        assert!(agg.most_imbalanced(5).is_empty());
    }
}
