//! Ordered cumulative snapshot series and the delta step.

use incprof_profile::{FlatProfile, ProfileError, ProfileSnapshot};
use serde::{Deserialize, Serialize};

/// The sequence of cumulative snapshots produced by a collection run —
/// the in-memory equivalent of the paper's numbered `gmon.out` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSeries {
    snapshots: Vec<ProfileSnapshot>,
}

/// Rejected [`SampleSeries::append_monotonic`]: the snapshot's
/// `sample_index` did not advance past the last one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrder {
    /// The offending snapshot's index.
    pub index: u64,
    /// The series' current last index.
    pub last: u64,
}

impl std::fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot index {} does not advance past {}",
            self.index, self.last
        )
    }
}

impl std::error::Error for OutOfOrder {}

impl SampleSeries {
    /// Empty series.
    pub fn new() -> SampleSeries {
        Self::default()
    }

    /// Append a snapshot. Snapshots must arrive in sample-index order.
    ///
    /// # Panics
    /// Panics if `snap.sample_index` is not the next expected index.
    pub fn push(&mut self, snap: ProfileSnapshot) {
        let expected = self.snapshots.len() as u64;
        assert_eq!(
            snap.sample_index, expected,
            "snapshot index {} out of order (expected {expected})",
            snap.sample_index
        );
        self.snapshots.push(snap);
    }

    /// Append a snapshot whose `sample_index` need only be strictly
    /// greater than the last one — the gap-tolerant variant of
    /// [`SampleSeries::push`] for series rebuilt from a retention-trimmed
    /// snapshot log, where original indices survive but positions do not.
    ///
    /// Returns [`OutOfOrder`] when the index does not advance, leaving
    /// the series unchanged.
    pub fn append_monotonic(&mut self, snap: ProfileSnapshot) -> Result<(), OutOfOrder> {
        if let Some(last) = self.snapshots.last() {
            if snap.sample_index <= last.sample_index {
                return Err(OutOfOrder {
                    index: snap.sample_index,
                    last: last.sample_index,
                });
            }
        }
        self.snapshots.push(snap);
        Ok(())
    }

    /// Remove the snapshots with the given original `sample_index`es (a
    /// retention trim), preserving the order of the survivors. Indices
    /// not present are ignored. Returns how many snapshots were removed.
    ///
    /// Snapshots are cumulative, so dropping interior samples merges the
    /// adjacent intervals rather than losing totals — the surviving
    /// series still deltas cleanly.
    pub fn remove_sample_indices(&mut self, drop: &[u64]) -> usize {
        if drop.is_empty() {
            return 0;
        }
        let before = self.snapshots.len();
        self.snapshots.retain(|s| !drop.contains(&s.sample_index));
        before - self.snapshots.len()
    }

    /// Number of cumulative samples collected.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Borrow the cumulative snapshots.
    pub fn snapshots(&self) -> &[ProfileSnapshot] {
        &self.snapshots
    }

    /// The last cumulative snapshot, if any (the whole-run profile).
    pub fn last(&self) -> Option<&ProfileSnapshot> {
        self.snapshots.last()
    }

    /// Compute per-interval flat profiles by subtracting consecutive
    /// cumulative samples (paper §V-A). Interval `i` is
    /// `snapshot[i] - snapshot[i-1]`, with interval 0 measured from the
    /// empty profile (program start). Returns one profile per snapshot.
    pub fn interval_profiles(&self) -> Result<Vec<FlatProfile>, ProfileError> {
        let mut out = Vec::with_capacity(self.snapshots.len());
        let mut prev = FlatProfile::new();
        for snap in &self.snapshots {
            out.push(snap.flat.delta(&prev)?);
            prev = snap.flat.clone();
        }
        Ok(out)
    }

    /// Like [`SampleSeries::interval_profiles`] but over externally
    /// supplied cumulative profiles (e.g. ones reconstructed from parsed
    /// gprof reports via [`crate::report_path`]).
    pub fn deltas_of(cumulative: &[FlatProfile]) -> Result<Vec<FlatProfile>, ProfileError> {
        let empty = FlatProfile::new();
        let mut out = Vec::with_capacity(cumulative.len());
        let mut prev = &empty;
        for cur in cumulative {
            out.push(cur.delta(prev)?);
            prev = cur;
        }
        Ok(out)
    }
}

impl FromIterator<ProfileSnapshot> for SampleSeries {
    fn from_iter<T: IntoIterator<Item = ProfileSnapshot>>(iter: T) -> Self {
        let mut s = SampleSeries::new();
        for snap in iter {
            s.push(snap);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FunctionId, FunctionStats};

    fn snap(idx: u64, entries: &[(u32, u64, u64)]) -> ProfileSnapshot {
        let mut s = ProfileSnapshot {
            sample_index: idx,
            timestamp_ns: idx * 1000,
            ..Default::default()
        };
        for &(id, self_time, calls) in entries {
            s.flat.set(
                FunctionId(id),
                FunctionStats {
                    self_time,
                    calls,
                    child_time: 0,
                },
            );
        }
        s
    }

    #[test]
    fn interval_profiles_subtract_consecutive_samples() {
        let series: SampleSeries = vec![
            snap(0, &[(0, 100, 1)]),
            snap(1, &[(0, 250, 2), (1, 40, 1)]),
            snap(2, &[(0, 250, 2), (1, 90, 1)]),
        ]
        .into_iter()
        .collect();
        let intervals = series.interval_profiles().unwrap();
        assert_eq!(intervals.len(), 3);
        assert_eq!(intervals[0].get(FunctionId(0)).self_time, 100);
        assert_eq!(intervals[1].get(FunctionId(0)).self_time, 150);
        assert_eq!(intervals[1].get(FunctionId(1)).calls, 1);
        assert!(
            !intervals[2].contains(FunctionId(0)),
            "idle function absent from delta"
        );
        assert_eq!(intervals[2].get(FunctionId(1)).self_time, 50);
    }

    #[test]
    fn reconstruction_invariant_sum_of_deltas_is_last_sample() {
        let series: SampleSeries = vec![
            snap(0, &[(0, 10, 1)]),
            snap(1, &[(0, 30, 3), (2, 7, 1)]),
            snap(2, &[(0, 45, 4), (2, 7, 1)]),
        ]
        .into_iter()
        .collect();
        let intervals = series.interval_profiles().unwrap();
        let mut sum = FlatProfile::new();
        for p in &intervals {
            sum.merge(p);
        }
        assert_eq!(sum, series.last().unwrap().flat);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut series = SampleSeries::new();
        series.push(snap(1, &[]));
    }

    #[test]
    fn empty_series() {
        let series = SampleSeries::new();
        assert!(series.is_empty());
        assert!(series.last().is_none());
        assert!(series.interval_profiles().unwrap().is_empty());
    }

    #[test]
    fn regression_in_series_is_an_error() {
        let series: SampleSeries = vec![snap(0, &[(0, 100, 1)]), snap(1, &[(0, 50, 1)])]
            .into_iter()
            .collect();
        assert!(series.interval_profiles().is_err());
    }

    #[test]
    fn deltas_of_external_profiles() {
        let mut a = FlatProfile::new();
        a.set(
            FunctionId(0),
            FunctionStats {
                self_time: 5,
                calls: 1,
                child_time: 0,
            },
        );
        let mut b = FlatProfile::new();
        b.set(
            FunctionId(0),
            FunctionStats {
                self_time: 9,
                calls: 2,
                child_time: 0,
            },
        );
        let deltas = SampleSeries::deltas_of(&[a, b]).unwrap();
        assert_eq!(deltas[1].get(FunctionId(0)).self_time, 4);
        assert_eq!(deltas[1].get(FunctionId(0)).calls, 1);
    }
    #[test]
    fn append_monotonic_allows_gaps_but_not_regressions() {
        let mut series = SampleSeries::new();
        series.append_monotonic(snap(0, &[(0, 10, 1)])).unwrap();
        series.append_monotonic(snap(4, &[(0, 20, 2)])).unwrap();
        series.append_monotonic(snap(7, &[(0, 30, 3)])).unwrap();
        assert_eq!(series.len(), 3);
        let err = series.append_monotonic(snap(7, &[])).unwrap_err();
        assert_eq!(err, OutOfOrder { index: 7, last: 7 });
        assert!(series.append_monotonic(snap(2, &[])).is_err());
        assert_eq!(series.len(), 3, "rejected snapshots must not land");
    }

    #[test]
    fn remove_sample_indices_trims_by_original_index() {
        let mut series = SampleSeries::new();
        for i in [0u64, 2, 5, 6, 9] {
            series
                .append_monotonic(snap(i, &[(0, (i + 1) * 10, i + 1)]))
                .unwrap();
        }
        let removed = series.remove_sample_indices(&[2, 6, 42]);
        assert_eq!(removed, 2, "unknown indices are ignored");
        let left: Vec<u64> = series.snapshots().iter().map(|s| s.sample_index).collect();
        assert_eq!(left, vec![0, 5, 9]);
        // The trimmed cumulative series still deltas cleanly.
        assert_eq!(series.interval_profiles().unwrap().len(), 3);
        assert_eq!(series.remove_sample_indices(&[]), 0);
    }
}
