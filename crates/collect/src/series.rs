//! Ordered cumulative snapshot series and the delta step.

use incprof_profile::{FlatProfile, ProfileError, ProfileSnapshot};
use serde::{Deserialize, Serialize};

/// The sequence of cumulative snapshots produced by a collection run —
/// the in-memory equivalent of the paper's numbered `gmon.out` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSeries {
    snapshots: Vec<ProfileSnapshot>,
}

impl SampleSeries {
    /// Empty series.
    pub fn new() -> SampleSeries {
        Self::default()
    }

    /// Append a snapshot. Snapshots must arrive in sample-index order.
    ///
    /// # Panics
    /// Panics if `snap.sample_index` is not the next expected index.
    pub fn push(&mut self, snap: ProfileSnapshot) {
        let expected = self.snapshots.len() as u64;
        assert_eq!(
            snap.sample_index, expected,
            "snapshot index {} out of order (expected {expected})",
            snap.sample_index
        );
        self.snapshots.push(snap);
    }

    /// Number of cumulative samples collected.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Borrow the cumulative snapshots.
    pub fn snapshots(&self) -> &[ProfileSnapshot] {
        &self.snapshots
    }

    /// The last cumulative snapshot, if any (the whole-run profile).
    pub fn last(&self) -> Option<&ProfileSnapshot> {
        self.snapshots.last()
    }

    /// Compute per-interval flat profiles by subtracting consecutive
    /// cumulative samples (paper §V-A). Interval `i` is
    /// `snapshot[i] - snapshot[i-1]`, with interval 0 measured from the
    /// empty profile (program start). Returns one profile per snapshot.
    pub fn interval_profiles(&self) -> Result<Vec<FlatProfile>, ProfileError> {
        let mut out = Vec::with_capacity(self.snapshots.len());
        let mut prev = FlatProfile::new();
        for snap in &self.snapshots {
            out.push(snap.flat.delta(&prev)?);
            prev = snap.flat.clone();
        }
        Ok(out)
    }

    /// Like [`SampleSeries::interval_profiles`] but over externally
    /// supplied cumulative profiles (e.g. ones reconstructed from parsed
    /// gprof reports via [`crate::report_path`]).
    pub fn deltas_of(cumulative: &[FlatProfile]) -> Result<Vec<FlatProfile>, ProfileError> {
        let empty = FlatProfile::new();
        let mut out = Vec::with_capacity(cumulative.len());
        let mut prev = &empty;
        for cur in cumulative {
            out.push(cur.delta(prev)?);
            prev = cur;
        }
        Ok(out)
    }
}

impl FromIterator<ProfileSnapshot> for SampleSeries {
    fn from_iter<T: IntoIterator<Item = ProfileSnapshot>>(iter: T) -> Self {
        let mut s = SampleSeries::new();
        for snap in iter {
            s.push(snap);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FunctionId, FunctionStats};

    fn snap(idx: u64, entries: &[(u32, u64, u64)]) -> ProfileSnapshot {
        let mut s = ProfileSnapshot {
            sample_index: idx,
            timestamp_ns: idx * 1000,
            ..Default::default()
        };
        for &(id, self_time, calls) in entries {
            s.flat.set(
                FunctionId(id),
                FunctionStats {
                    self_time,
                    calls,
                    child_time: 0,
                },
            );
        }
        s
    }

    #[test]
    fn interval_profiles_subtract_consecutive_samples() {
        let series: SampleSeries = vec![
            snap(0, &[(0, 100, 1)]),
            snap(1, &[(0, 250, 2), (1, 40, 1)]),
            snap(2, &[(0, 250, 2), (1, 90, 1)]),
        ]
        .into_iter()
        .collect();
        let intervals = series.interval_profiles().unwrap();
        assert_eq!(intervals.len(), 3);
        assert_eq!(intervals[0].get(FunctionId(0)).self_time, 100);
        assert_eq!(intervals[1].get(FunctionId(0)).self_time, 150);
        assert_eq!(intervals[1].get(FunctionId(1)).calls, 1);
        assert!(
            !intervals[2].contains(FunctionId(0)),
            "idle function absent from delta"
        );
        assert_eq!(intervals[2].get(FunctionId(1)).self_time, 50);
    }

    #[test]
    fn reconstruction_invariant_sum_of_deltas_is_last_sample() {
        let series: SampleSeries = vec![
            snap(0, &[(0, 10, 1)]),
            snap(1, &[(0, 30, 3), (2, 7, 1)]),
            snap(2, &[(0, 45, 4), (2, 7, 1)]),
        ]
        .into_iter()
        .collect();
        let intervals = series.interval_profiles().unwrap();
        let mut sum = FlatProfile::new();
        for p in &intervals {
            sum.merge(p);
        }
        assert_eq!(sum, series.last().unwrap().flat);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut series = SampleSeries::new();
        series.push(snap(1, &[]));
    }

    #[test]
    fn empty_series() {
        let series = SampleSeries::new();
        assert!(series.is_empty());
        assert!(series.last().is_none());
        assert!(series.interval_profiles().unwrap().is_empty());
    }

    #[test]
    fn regression_in_series_is_an_error() {
        let series: SampleSeries = vec![snap(0, &[(0, 100, 1)]), snap(1, &[(0, 50, 1)])]
            .into_iter()
            .collect();
        assert!(series.interval_profiles().is_err());
    }

    #[test]
    fn deltas_of_external_profiles() {
        let mut a = FlatProfile::new();
        a.set(
            FunctionId(0),
            FunctionStats {
                self_time: 5,
                calls: 1,
                child_time: 0,
            },
        );
        let mut b = FlatProfile::new();
        b.set(
            FunctionId(0),
            FunctionStats {
                self_time: 9,
                calls: 2,
                child_time: 0,
            },
        );
        let deltas = SampleSeries::deltas_of(&[a, b]).unwrap();
        assert_eq!(deltas[1].get(FunctionId(0)).self_time, 4);
        assert_eq!(deltas[1].get(FunctionId(0)).calls, 1);
    }
}
