//! # incprof-collect
//!
//! The IncProf incremental profile collector (paper §IV, Fig. 1).
//!
//! In the paper, IncProf is an `LD_PRELOAD`ed library running "its own
//! thread in a sleep/wakeup cycle, and at each wakeup it calls the gprof
//! write function, renames the file to a unique sample name, and goes back
//! to sleep". Each renamed file is one *cumulative* profile; the analysis
//! then converts every file to a gprof text report, parses the reports,
//! and subtracts consecutive samples to obtain per-interval profiles.
//!
//! This crate reproduces that collection-and-reduction stage:
//!
//! * [`IncProfCollector`] — the sleep/wakeup thread (wall-clock mode) or an
//!   explicitly ticked sampler (virtual-clock mode) that snapshots the
//!   [`incprof_runtime::ProfilerRuntime`] once per interval.
//! * [`SampleSeries`] — the ordered cumulative snapshots ("the renamed
//!   gmon.out files"), with the delta step producing interval profiles.
//! * [`report_path`] — the optional full-fidelity data path that encodes
//!   every snapshot to a gmon byte stream, renders it to a gprof text
//!   report, and parses it back, reproducing the paper's exact pipeline
//!   (including gprof's 10 ms report rounding).
//! * [`IntervalMatrix`] — the interval × function feature matrix handed to
//!   clustering, with self-time features and the parallel call-count and
//!   activity (rank) data Algorithm 1 needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod collector;
pub mod matrix;
pub mod report_path;
pub mod series;
pub mod series_io;

pub use aggregate::{representative_rank, FunctionAggregate, RankAggregate};
pub use collector::{CollectorConfig, IncProfCollector};
pub use matrix::IntervalMatrix;
pub use series::{OutOfOrder, SampleSeries};
