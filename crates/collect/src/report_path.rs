//! The text-report data path: snapshot → gprof report → parsed profile.
//!
//! The paper deliberately routes its data through `gprof`'s *textual*
//! output: "we found it easier to just invoke the gprof command line tool
//! to convert the data into standard gprof textual reports, and then
//! process those" (§IV). That choice quantizes all times to gprof's 10 ms
//! report resolution. This module reproduces the full round trip so
//! experiments can run with exactly the paper's fidelity, and so the
//! report parser is exercised end-to-end.

use crate::series::SampleSeries;
use incprof_profile::report::{parse_flat_profile, profile_from_rows, write_flat_profile};
use incprof_profile::{FlatProfile, FunctionTable, ProfileError};

/// Render every cumulative snapshot in `series` to a gprof flat-profile
/// text report. One report per sample, in order — the in-memory stand-in
/// for the paper's per-interval report files.
pub fn render_reports(series: &SampleSeries, table: &FunctionTable) -> Vec<String> {
    series
        .snapshots()
        .iter()
        .map(|snap| write_flat_profile(&snap.flat, table))
        .collect()
}

/// Parse gprof flat-profile reports back into cumulative profiles,
/// registering names into a fresh [`FunctionTable`]. Returns the profiles
/// and the table they are keyed against.
pub fn parse_reports(
    reports: &[String],
) -> Result<(Vec<FlatProfile>, FunctionTable), ProfileError> {
    let mut table = FunctionTable::new();
    let mut profiles = Vec::with_capacity(reports.len());
    for report in reports {
        let rows = parse_flat_profile(report)?;
        profiles.push(profile_from_rows(&rows, &mut table));
    }
    Ok((profiles, table))
}

/// The complete paper-fidelity path: snapshots → reports → parsed
/// cumulative profiles → per-interval deltas. The returned table is the
/// one rebuilt *from the reports* (as the paper's analysis sees it).
///
/// Because report times are rounded to 10 ms, a counter may appear to
/// regress by one rounding step between consecutive samples; such
/// regressions are clamped to zero rather than treated as corruption.
pub fn intervals_via_reports(
    series: &SampleSeries,
    table: &FunctionTable,
) -> Result<(Vec<FlatProfile>, FunctionTable), ProfileError> {
    let reports = render_reports(series, table);
    let (cumulative, parsed_table) = parse_reports(&reports)?;
    let clamped = clamp_monotone(cumulative);
    let intervals = SampleSeries::deltas_of(&clamped)?;
    Ok((intervals, parsed_table))
}

/// Force a sequence of nearly-cumulative profiles to be monotone by
/// clamping each counter to at least its previous value (absorbing report
/// rounding artifacts).
pub fn clamp_monotone(mut profiles: Vec<FlatProfile>) -> Vec<FlatProfile> {
    for i in 1..profiles.len() {
        let (before, after) = profiles.split_at_mut(i);
        let prev = &before[i - 1];
        let cur = &mut after[0];
        let mut fixes = Vec::new();
        for (id, stats) in prev.iter() {
            let now = cur.get(id);
            if now.self_time < stats.self_time
                || now.calls < stats.calls
                || now.child_time < stats.child_time
            {
                fixes.push((
                    id,
                    incprof_profile::FunctionStats {
                        self_time: now.self_time.max(stats.self_time),
                        calls: now.calls.max(stats.calls),
                        child_time: now.child_time.max(stats.child_time),
                    },
                ));
            }
        }
        for (id, s) in fixes {
            cur.set(id, s);
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FunctionId, FunctionStats, ProfileSnapshot};

    fn series_with_two_samples() -> (SampleSeries, FunctionTable) {
        let mut table = FunctionTable::new();
        let a = table.register("run_bfs");
        let b = table.register("validate_bfs_result");
        let mut s0 = ProfileSnapshot {
            sample_index: 0,
            timestamp_ns: 0,
            ..Default::default()
        };
        s0.flat.set(
            a,
            FunctionStats {
                self_time: 500_000_000,
                calls: 4,
                child_time: 0,
            },
        );
        let mut s1 = ProfileSnapshot {
            sample_index: 1,
            timestamp_ns: 1,
            ..Default::default()
        };
        s1.flat.set(
            a,
            FunctionStats {
                self_time: 900_000_000,
                calls: 7,
                child_time: 0,
            },
        );
        s1.flat.set(
            b,
            FunctionStats {
                self_time: 1_200_000_000,
                calls: 1,
                child_time: 0,
            },
        );
        let series: SampleSeries = vec![s0, s1].into_iter().collect();
        (series, table)
    }

    #[test]
    fn render_produces_one_report_per_sample() {
        let (series, table) = series_with_two_samples();
        let reports = render_reports(&series, &table);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].contains("run_bfs"));
        assert!(reports[1].contains("validate_bfs_result"));
    }

    #[test]
    fn full_path_recovers_interval_data_within_rounding() {
        let (series, table) = series_with_two_samples();
        let (intervals, parsed) = intervals_via_reports(&series, &table).unwrap();
        assert_eq!(intervals.len(), 2);
        let a = parsed.id_of("run_bfs").unwrap();
        let b = parsed.id_of("validate_bfs_result").unwrap();
        // Interval 0: run_bfs 0.5 s.
        assert_eq!(intervals[0].get(a).self_time, 500_000_000);
        assert_eq!(intervals[0].get(a).calls, 4);
        // Interval 1: run_bfs +0.4 s / +3 calls; validate appears.
        assert_eq!(intervals[1].get(a).self_time, 400_000_000);
        assert_eq!(intervals[1].get(a).calls, 3);
        assert_eq!(intervals[1].get(b).self_time, 1_200_000_000);
    }

    #[test]
    fn report_rounding_is_absorbed() {
        // Craft a counter that regresses by sub-bucket rounding: 14 ms
        // rounds to 0.01 s, then 15 ms rounds to 0.02 s — fine. Simulate a
        // hostile regression directly through clamp_monotone instead.
        let mut p0 = FlatProfile::new();
        p0.set(
            FunctionId(0),
            FunctionStats {
                self_time: 20_000_000,
                calls: 2,
                child_time: 0,
            },
        );
        let mut p1 = FlatProfile::new();
        p1.set(
            FunctionId(0),
            FunctionStats {
                self_time: 10_000_000,
                calls: 2,
                child_time: 0,
            },
        );
        let clamped = clamp_monotone(vec![p0, p1]);
        assert_eq!(clamped[1].get(FunctionId(0)).self_time, 20_000_000);
        assert!(SampleSeries::deltas_of(&clamped).is_ok());
    }

    #[test]
    fn parse_reports_builds_unified_table() {
        let (series, table) = series_with_two_samples();
        let reports = render_reports(&series, &table);
        let (profiles, parsed) = parse_reports(&reports).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(parsed.len(), 2, "both functions registered once");
    }

    #[test]
    fn empty_series_is_fine() {
        let series = SampleSeries::new();
        let table = FunctionTable::new();
        let (intervals, _) = intervals_via_reports(&series, &table).unwrap();
        assert!(intervals.is_empty());
    }
}
