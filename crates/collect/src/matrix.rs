//! The interval × function feature matrix.
//!
//! "Each interval is then represented as a tuple of function execution
//! times (the gprof 'self' time), where each unique function is an
//! attribute dimension of the data" (paper §V-A). Alongside the self-time
//! features, we keep the per-interval call counts that Algorithm 1 sorts
//! on, and provide the activity tests used to compute function *ranks*.

use incprof_profile::{FlatProfile, FunctionId};
use std::collections::BTreeMap;

/// Dense interval × function matrices of self time and call counts.
///
/// Columns are the union of functions appearing in any interval, in
/// [`FunctionId`] order. "Not all functions in a program end up being
/// represented in the profile data" (paper footnote 3) — columns exist
/// only for observed functions.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalMatrix {
    functions: Vec<FunctionId>,
    col_of: BTreeMap<FunctionId, usize>,
    /// Row-major `n_intervals × n_functions` self time in seconds.
    self_secs: Vec<f64>,
    /// Row-major call counts.
    calls: Vec<u64>,
    /// Row-major child (callee) time in seconds.
    child_secs: Vec<f64>,
    n_intervals: usize,
}

impl IntervalMatrix {
    /// Build from per-interval profiles (the deltas of cumulative samples).
    pub fn from_interval_profiles(intervals: &[FlatProfile]) -> IntervalMatrix {
        let mut ids: Vec<FunctionId> = Vec::new();
        {
            let mut seen = BTreeMap::new();
            for p in intervals {
                for (id, _) in p.iter() {
                    seen.entry(id).or_insert(());
                }
            }
            ids.extend(seen.keys().copied());
        }
        let col_of: BTreeMap<FunctionId, usize> =
            ids.iter().enumerate().map(|(c, &id)| (id, c)).collect();
        let n = intervals.len();
        let d = ids.len();
        let mut self_secs = vec![0.0; n * d];
        let mut calls = vec![0u64; n * d];
        let mut child_secs = vec![0.0; n * d];
        for (i, p) in intervals.iter().enumerate() {
            for (id, stats) in p.iter() {
                let c = col_of[&id];
                self_secs[i * d + c] = stats.self_time as f64 / 1e9;
                calls[i * d + c] = stats.calls;
                child_secs[i * d + c] = stats.child_time as f64 / 1e9;
            }
        }
        IntervalMatrix {
            functions: ids,
            col_of,
            self_secs,
            calls,
            child_secs,
            n_intervals: n,
        }
    }

    /// Number of intervals (rows).
    pub fn n_intervals(&self) -> usize {
        self.n_intervals
    }

    /// Number of functions (columns).
    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }

    /// The functions, in column order.
    pub fn functions(&self) -> &[FunctionId] {
        &self.functions
    }

    /// Column of `id`, if the function was ever observed.
    pub fn col_of(&self, id: FunctionId) -> Option<usize> {
        self.col_of.get(&id).copied()
    }

    /// Function at column `col`.
    pub fn function_at(&self, col: usize) -> FunctionId {
        self.functions[col]
    }

    /// Self time (seconds) of column `col` in interval `i`.
    #[inline]
    pub fn self_secs(&self, i: usize, col: usize) -> f64 {
        self.self_secs[i * self.functions.len() + col]
    }

    /// Call count of column `col` in interval `i`.
    #[inline]
    pub fn calls(&self, i: usize, col: usize) -> u64 {
        self.calls[i * self.functions.len() + col]
    }

    /// Child (callee) time in seconds of column `col` in interval `i`.
    #[inline]
    pub fn child_secs(&self, i: usize, col: usize) -> f64 {
        self.child_secs[i * self.functions.len() + col]
    }

    /// Whether column `col` is *active* in interval `i` — "has a non-zero
    /// execution time" (paper §V-B).
    #[inline]
    pub fn active(&self, i: usize, col: usize) -> bool {
        self.self_secs(i, col) > 0.0
    }

    /// Self-time row `i` as a feature vector (the clustering input).
    pub fn feature_row(&self, i: usize) -> &[f64] {
        let d = self.functions.len();
        &self.self_secs[i * d..(i + 1) * d]
    }

    /// All feature rows (one per interval), cloned.
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_intervals)
            .map(|i| self.feature_row(i).to_vec())
            .collect()
    }

    /// Total self time (seconds) of the whole run (sum over the matrix).
    pub fn total_self_secs(&self) -> f64 {
        self.self_secs.iter().sum()
    }

    /// Total self time (seconds) of column `col` over all intervals.
    pub fn column_total_secs(&self, col: usize) -> f64 {
        (0..self.n_intervals).map(|i| self.self_secs(i, col)).sum()
    }

    /// The *rank* of a function within a set of intervals: "the fraction
    /// of intervals in the phase that the function is active in" (§V-B).
    pub fn rank_in(&self, col: usize, interval_set: &[usize]) -> f64 {
        if interval_set.is_empty() {
            return 0.0;
        }
        let active = interval_set
            .iter()
            .filter(|&&i| self.active(i, col))
            .count();
        active as f64 / interval_set.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::FunctionStats;

    fn fid(n: u32) -> FunctionId {
        FunctionId(n)
    }

    fn profile(entries: &[(u32, u64, u64)]) -> FlatProfile {
        let mut p = FlatProfile::new();
        for &(id, self_ns, calls) in entries {
            p.set(
                fid(id),
                FunctionStats {
                    self_time: self_ns,
                    calls,
                    child_time: 0,
                },
            );
        }
        p
    }

    fn sample_matrix() -> IntervalMatrix {
        IntervalMatrix::from_interval_profiles(&[
            profile(&[(0, 1_000_000_000, 2)]),
            profile(&[(0, 500_000_000, 1), (2, 250_000_000, 10)]),
            profile(&[(2, 750_000_000, 0)]),
        ])
    }

    #[test]
    fn columns_are_union_in_id_order() {
        let m = sample_matrix();
        assert_eq!(m.n_intervals(), 3);
        assert_eq!(m.n_functions(), 2);
        assert_eq!(m.functions(), &[fid(0), fid(2)]);
        assert_eq!(m.col_of(fid(2)), Some(1));
        assert_eq!(m.col_of(fid(1)), None);
    }

    #[test]
    fn values_land_in_right_cells() {
        let m = sample_matrix();
        assert_eq!(m.self_secs(0, 0), 1.0);
        assert_eq!(m.self_secs(0, 1), 0.0);
        assert_eq!(m.self_secs(1, 1), 0.25);
        assert_eq!(m.calls(1, 1), 10);
        assert_eq!(m.calls(2, 1), 0);
        assert_eq!(m.self_secs(2, 1), 0.75);
    }

    #[test]
    fn activity_and_rank() {
        let m = sample_matrix();
        assert!(m.active(0, 0));
        assert!(!m.active(2, 0));
        assert!(m.active(2, 1), "zero calls but nonzero time is active");
        assert_eq!(m.rank_in(0, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(m.rank_in(1, &[1, 2]), 1.0);
        assert_eq!(m.rank_in(1, &[]), 0.0);
    }

    #[test]
    fn feature_rows_match_cells() {
        let m = sample_matrix();
        assert_eq!(m.feature_row(1), &[0.5, 0.25]);
        let rows = m.feature_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![0.0, 0.75]);
    }

    #[test]
    fn totals() {
        let m = sample_matrix();
        assert!((m.total_self_secs() - 2.5).abs() < 1e-12);
        assert!((m.column_total_secs(0) - 1.5).abs() < 1e-12);
        assert!((m.column_total_secs(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn child_time_is_tracked() {
        let mut p = FlatProfile::new();
        p.set(
            fid(0),
            FunctionStats {
                self_time: 0,
                calls: 1,
                child_time: 2_000_000_000,
            },
        );
        let m = IntervalMatrix::from_interval_profiles(&[p]);
        assert_eq!(m.child_secs(0, 0), 2.0);
        assert!(!m.active(0, 0), "child time alone is not activity");
    }

    #[test]
    fn empty_inputs() {
        let m = IntervalMatrix::from_interval_profiles(&[]);
        assert_eq!(m.n_intervals(), 0);
        assert_eq!(m.n_functions(), 0);
        assert_eq!(m.total_self_secs(), 0.0);
        let m2 = IntervalMatrix::from_interval_profiles(&[FlatProfile::new()]);
        assert_eq!(m2.n_intervals(), 1);
        assert_eq!(m2.n_functions(), 0);
        assert_eq!(m2.feature_row(0).len(), 0);
    }
}
