//! The IncProf collector: periodic cumulative snapshots.
//!
//! Two operating modes mirror the two clocks:
//!
//! * **Wall mode** ([`IncProfCollector::start_wall`]) — a background
//!   thread sleeps `interval_ns`, wakes, snapshots the runtime (the
//!   "call the gprof write function, rename the file" step of Fig. 1),
//!   and goes back to sleep, until stopped. This is the configuration
//!   used for real overhead measurements.
//! * **Manual mode** ([`IncProfCollector::manual`]) — the simulation
//!   driver calls [`IncProfCollector::tick`] at each virtual interval
//!   boundary, giving a deterministic sample series.

use crate::series::SampleSeries;
use incprof_profile::GmonData;
use incprof_runtime::ProfilerRuntime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Sampling interval in nanoseconds. The paper samples once per
    /// second ("Our IncProf sampling rate was set to one second", §VI).
    pub interval_ns: u64,
    /// When true, every snapshot is also encoded to gmon bytes (the
    /// equivalent of actually writing each renamed `gmon.out.N`), which
    /// costs time and memory but lets tests and experiments exercise the
    /// full binary data path.
    pub encode_gmon: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            interval_ns: 1_000_000_000,
            encode_gmon: false,
        }
    }
}

struct CollectorShared {
    runtime: ProfilerRuntime,
    config: CollectorConfig,
    series: Mutex<SampleSeries>,
    gmon_dumps: Mutex<Vec<Vec<u8>>>,
    next_index: AtomicU64,
    stop: AtomicBool,
}

impl CollectorShared {
    fn take_sample(&self) {
        let started = Instant::now();
        let idx = self.next_index.fetch_add(1, Ordering::Relaxed);
        let snap = self.runtime.snapshot(idx);
        if self.config.encode_gmon {
            let gmon = snap.to_gmon(&self.runtime.function_table());
            let bytes = gmon.encode().to_vec();
            incprof_obs::counter(incprof_obs::names::COLLECT_GMON_ENCODED_BYTES)
                .add(bytes.len() as u64);
            self.gmon_dumps.lock().push(bytes);
        }
        self.series.lock().push(snap);
        incprof_obs::histogram(incprof_obs::names::COLLECT_SNAPSHOT_LATENCY_NS)
            .record(started.elapsed().as_nanos() as u64);
        incprof_obs::counter(incprof_obs::names::COLLECT_SNAPSHOT_COUNT).inc();
    }
}

/// Handle to a running or manual collector.
pub struct IncProfCollector {
    shared: Arc<CollectorShared>,
    thread: Option<JoinHandle<()>>,
}

impl IncProfCollector {
    /// Create a manual-mode collector: no thread is spawned; the driver
    /// calls [`IncProfCollector::tick`] at interval boundaries.
    pub fn manual(runtime: ProfilerRuntime, config: CollectorConfig) -> IncProfCollector {
        IncProfCollector {
            shared: Arc::new(CollectorShared {
                runtime,
                config,
                series: Mutex::new(SampleSeries::new()),
                gmon_dumps: Mutex::new(Vec::new()),
                next_index: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            }),
            thread: None,
        }
    }

    /// Start a wall-clock collector thread that samples every
    /// `config.interval_ns` until [`IncProfCollector::stop`] is called.
    ///
    /// Ticks are scheduled against *absolute* deadlines (`start +
    /// n·interval`) rather than by sleeping the interval after each
    /// sample, so snapshot cost and scheduler wakeup jitter do not
    /// accumulate into drift over a long run. A tick whose deadline has
    /// already passed by a full interval (the snapshot overran) is
    /// skipped and counted in `collect.collector.ticks_missed`; wakeup
    /// lateness is recorded in `collect.collector.tick_jitter_ns`.
    pub fn start_wall(runtime: ProfilerRuntime, config: CollectorConfig) -> IncProfCollector {
        let mut c = Self::manual(runtime, config);
        let shared = Arc::clone(&c.shared);
        let interval_ns = shared.config.interval_ns.max(1);
        c.thread = Some(std::thread::spawn(move || {
            // Sleep/wakeup cycle (paper Fig. 1). Sleeping in small slices
            // keeps stop() latency low without busy-waiting.
            let start = Instant::now();
            let slice = Duration::from_millis(5);
            let mut tick: u64 = 1; // next deadline is start + tick·interval
            while !shared.stop.load(Ordering::Acquire) {
                let deadline = start + Duration::from_nanos(interval_ns.saturating_mul(tick));
                loop {
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(slice));
                }
                let lateness_ns = (Instant::now() - deadline).as_nanos() as u64;
                incprof_obs::histogram(incprof_obs::names::COLLECT_TICK_JITTER_NS)
                    .record(lateness_ns);
                shared.take_sample();
                // If sampling overran one or more whole intervals, jump to
                // the next future deadline instead of firing a burst of
                // back-to-back catch-up samples.
                let elapsed_ns = (Instant::now() - start).as_nanos() as u64;
                let next_due = elapsed_ns / interval_ns + 1;
                if next_due > tick + 1 {
                    let missed = next_due - tick - 1;
                    incprof_obs::counter(incprof_obs::names::COLLECT_TICKS_MISSED).add(missed);
                    incprof_obs::warn!(
                        "collector overran {missed} tick(s) at interval {interval_ns} ns"
                    );
                    tick = next_due;
                } else {
                    tick += 1;
                }
            }
        }));
        c
    }

    /// Manually take one sample (manual mode; also works in wall mode for
    /// a final end-of-run sample after [`IncProfCollector::stop`]).
    pub fn tick(&self) {
        self.shared.take_sample();
    }

    /// Stop the background thread (if any) and take one final sample so
    /// the series always ends with the complete run profile. Returns the
    /// collected series.
    pub fn stop(mut self) -> SampleSeries {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.take_sample();
        self.shared.series.lock().clone()
    }

    /// Finish a manual-mode collection without adding a final sample.
    pub fn into_series(mut self) -> SampleSeries {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.series.lock().clone()
    }

    /// Number of samples collected so far.
    pub fn samples_taken(&self) -> u64 {
        self.shared.next_index.load(Ordering::Relaxed)
    }

    /// The encoded gmon dumps (empty unless `config.encode_gmon`).
    pub fn gmon_dumps(&self) -> Vec<Vec<u8>> {
        self.shared.gmon_dumps.lock().clone()
    }

    /// Decode the collected gmon dumps back into [`GmonData`] (test and
    /// experiment support for the binary data path).
    pub fn decode_gmon_dumps(&self) -> Result<Vec<GmonData>, incprof_profile::ProfileError> {
        self.gmon_dumps()
            .iter()
            .map(|b| GmonData::decode(b))
            .collect()
    }
}

impl Drop for IncProfCollector {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_runtime::Clock;

    #[test]
    fn manual_mode_collects_deterministic_series() {
        let clock = Clock::virtual_clock();
        let rt = ProfilerRuntime::with_clock(clock.clone());
        let f = rt.register_function("work");
        let collector = IncProfCollector::manual(rt.clone(), CollectorConfig::default());

        for interval in 0..5u64 {
            {
                let _g = rt.enter(f);
                clock.advance(1_000_000_000);
            }
            collector.tick();
            let _ = interval;
        }
        let series = collector.into_series();
        assert_eq!(series.len(), 5);
        let intervals = series.interval_profiles().unwrap();
        for p in &intervals {
            assert_eq!(p.get(f).self_time, 1_000_000_000);
            assert_eq!(p.get(f).calls, 1);
        }
    }

    #[test]
    fn gmon_dumps_encode_every_sample() {
        let clock = Clock::virtual_clock();
        let rt = ProfilerRuntime::with_clock(clock.clone());
        let f = rt.register_function("work");
        let collector = IncProfCollector::manual(
            rt.clone(),
            CollectorConfig {
                interval_ns: 1000,
                encode_gmon: true,
            },
        );
        for _ in 0..3 {
            let _g = rt.enter(f);
            clock.advance(1000);
            drop(_g);
            collector.tick();
        }
        let dumps = collector.decode_gmon_dumps().unwrap();
        assert_eq!(dumps.len(), 3);
        assert_eq!(dumps[0].sample_index, 0);
        assert_eq!(dumps[2].sample_index, 2);
        // Dumps are cumulative: self time grows.
        let id = dumps[2].functions.iter().next().unwrap().0;
        assert!(dumps[2].flat.get(id).self_time > dumps[0].flat.get(id).self_time);
    }

    #[test]
    fn wall_mode_collects_samples_over_real_time() {
        let rt = ProfilerRuntime::new(); // wall clock
        let f = rt.register_function("spin");
        let collector = IncProfCollector::start_wall(
            rt.clone(),
            CollectorConfig {
                interval_ns: 20_000_000,
                encode_gmon: false,
            }, // 20 ms
        );
        let deadline = std::time::Instant::now() + Duration::from_millis(120);
        while std::time::Instant::now() < deadline {
            let _g = rt.enter(f);
            std::hint::black_box(0u64);
        }
        let series = collector.stop();
        // ~6 interval samples plus the final stop() sample; allow slack
        // for scheduler jitter.
        assert!(series.len() >= 3, "only {} samples", series.len());
        let last = series.last().unwrap();
        assert!(last.flat.get(f).calls > 0);
        assert!(last.flat.get(f).self_time > 0);
        // Monotone cumulative series.
        assert!(series.interval_profiles().is_ok());
    }

    #[test]
    fn wall_mode_ticks_track_absolute_deadlines() {
        let rt = ProfilerRuntime::new();
        let collector = IncProfCollector::start_wall(
            rt,
            CollectorConfig {
                interval_ns: 10_000_000,
                encode_gmon: false,
            }, // 10 ms
        );
        std::thread::sleep(Duration::from_millis(105));
        let series = collector.stop();
        // Absolute deadlines: ~10 ticks in 105 ms (+ the final stop
        // sample). Relative sleeps would drift short under snapshot cost;
        // allow generous slack for CI scheduling but require most ticks.
        assert!(series.len() >= 7, "only {} samples in 105 ms", series.len());
        assert!(series.len() <= 12, "{} samples in 105 ms", series.len());
        // Every tick recorded its wakeup lateness.
        let jitter = incprof_obs::histogram(incprof_obs::names::COLLECT_TICK_JITTER_NS);
        assert!(jitter.count() >= series.len() as u64 - 1);
    }

    #[test]
    fn stop_appends_final_sample() {
        let rt = ProfilerRuntime::with_clock(Clock::virtual_clock());
        let collector = IncProfCollector::manual(rt, CollectorConfig::default());
        collector.tick();
        let series = collector.stop();
        assert_eq!(series.len(), 2, "tick + final stop sample");
    }

    #[test]
    fn samples_taken_counts() {
        let rt = ProfilerRuntime::with_clock(Clock::virtual_clock());
        let collector = IncProfCollector::manual(rt, CollectorConfig::default());
        assert_eq!(collector.samples_taken(), 0);
        collector.tick();
        collector.tick();
        assert_eq!(collector.samples_taken(), 2);
    }
}
