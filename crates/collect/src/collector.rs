//! The IncProf collector: periodic cumulative snapshots.
//!
//! Two operating modes mirror the two clocks:
//!
//! * **Wall mode** ([`IncProfCollector::start_wall`]) — a background
//!   thread sleeps `interval_ns`, wakes, snapshots the runtime (the
//!   "call the gprof write function, rename the file" step of Fig. 1),
//!   and goes back to sleep, until stopped. This is the configuration
//!   used for real overhead measurements.
//! * **Manual mode** ([`IncProfCollector::manual`]) — the simulation
//!   driver calls [`IncProfCollector::tick`] at each virtual interval
//!   boundary, giving a deterministic sample series.

use crate::series::SampleSeries;
use incprof_profile::GmonData;
use incprof_runtime::ProfilerRuntime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Sampling interval in nanoseconds. The paper samples once per
    /// second ("Our IncProf sampling rate was set to one second", §VI).
    pub interval_ns: u64,
    /// When true, every snapshot is also encoded to gmon bytes (the
    /// equivalent of actually writing each renamed `gmon.out.N`), which
    /// costs time and memory but lets tests and experiments exercise the
    /// full binary data path.
    pub encode_gmon: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig { interval_ns: 1_000_000_000, encode_gmon: false }
    }
}

struct CollectorShared {
    runtime: ProfilerRuntime,
    config: CollectorConfig,
    series: Mutex<SampleSeries>,
    gmon_dumps: Mutex<Vec<Vec<u8>>>,
    next_index: AtomicU64,
    stop: AtomicBool,
}

impl CollectorShared {
    fn take_sample(&self) {
        let idx = self.next_index.fetch_add(1, Ordering::Relaxed);
        let snap = self.runtime.snapshot(idx);
        if self.config.encode_gmon {
            let gmon = snap.to_gmon(&self.runtime.function_table());
            self.gmon_dumps.lock().push(gmon.encode().to_vec());
        }
        self.series.lock().push(snap);
    }
}

/// Handle to a running or manual collector.
pub struct IncProfCollector {
    shared: Arc<CollectorShared>,
    thread: Option<JoinHandle<()>>,
}

impl IncProfCollector {
    /// Create a manual-mode collector: no thread is spawned; the driver
    /// calls [`IncProfCollector::tick`] at interval boundaries.
    pub fn manual(runtime: ProfilerRuntime, config: CollectorConfig) -> IncProfCollector {
        IncProfCollector {
            shared: Arc::new(CollectorShared {
                runtime,
                config,
                series: Mutex::new(SampleSeries::new()),
                gmon_dumps: Mutex::new(Vec::new()),
                next_index: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            }),
            thread: None,
        }
    }

    /// Start a wall-clock collector thread that samples every
    /// `config.interval_ns` until [`IncProfCollector::stop`] is called.
    pub fn start_wall(runtime: ProfilerRuntime, config: CollectorConfig) -> IncProfCollector {
        let mut c = Self::manual(runtime, config);
        let shared = Arc::clone(&c.shared);
        let interval = Duration::from_nanos(shared.config.interval_ns);
        c.thread = Some(std::thread::spawn(move || {
            // Sleep/wakeup cycle (paper Fig. 1). Sleeping in small slices
            // keeps stop() latency low without busy-waiting.
            while !shared.stop.load(Ordering::Acquire) {
                let mut remaining = interval;
                let slice = Duration::from_millis(5);
                while remaining > Duration::ZERO && !shared.stop.load(Ordering::Acquire) {
                    let d = remaining.min(slice);
                    std::thread::sleep(d);
                    remaining = remaining.saturating_sub(d);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                shared.take_sample();
            }
        }));
        c
    }

    /// Manually take one sample (manual mode; also works in wall mode for
    /// a final end-of-run sample after [`IncProfCollector::stop`]).
    pub fn tick(&self) {
        self.shared.take_sample();
    }

    /// Stop the background thread (if any) and take one final sample so
    /// the series always ends with the complete run profile. Returns the
    /// collected series.
    pub fn stop(mut self) -> SampleSeries {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.take_sample();
        self.shared.series.lock().clone()
    }

    /// Finish a manual-mode collection without adding a final sample.
    pub fn into_series(mut self) -> SampleSeries {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.series.lock().clone()
    }

    /// Number of samples collected so far.
    pub fn samples_taken(&self) -> u64 {
        self.shared.next_index.load(Ordering::Relaxed)
    }

    /// The encoded gmon dumps (empty unless `config.encode_gmon`).
    pub fn gmon_dumps(&self) -> Vec<Vec<u8>> {
        self.shared.gmon_dumps.lock().clone()
    }

    /// Decode the collected gmon dumps back into [`GmonData`] (test and
    /// experiment support for the binary data path).
    pub fn decode_gmon_dumps(&self) -> Result<Vec<GmonData>, incprof_profile::ProfileError> {
        self.gmon_dumps().iter().map(|b| GmonData::decode(b)).collect()
    }
}

impl Drop for IncProfCollector {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_runtime::Clock;

    #[test]
    fn manual_mode_collects_deterministic_series() {
        let clock = Clock::virtual_clock();
        let rt = ProfilerRuntime::with_clock(clock.clone());
        let f = rt.register_function("work");
        let collector = IncProfCollector::manual(rt.clone(), CollectorConfig::default());

        for interval in 0..5u64 {
            {
                let _g = rt.enter(f);
                clock.advance(1_000_000_000);
            }
            collector.tick();
            let _ = interval;
        }
        let series = collector.into_series();
        assert_eq!(series.len(), 5);
        let intervals = series.interval_profiles().unwrap();
        for p in &intervals {
            assert_eq!(p.get(f).self_time, 1_000_000_000);
            assert_eq!(p.get(f).calls, 1);
        }
    }

    #[test]
    fn gmon_dumps_encode_every_sample() {
        let clock = Clock::virtual_clock();
        let rt = ProfilerRuntime::with_clock(clock.clone());
        let f = rt.register_function("work");
        let collector = IncProfCollector::manual(
            rt.clone(),
            CollectorConfig { interval_ns: 1000, encode_gmon: true },
        );
        for _ in 0..3 {
            let _g = rt.enter(f);
            clock.advance(1000);
            drop(_g);
            collector.tick();
        }
        let dumps = collector.decode_gmon_dumps().unwrap();
        assert_eq!(dumps.len(), 3);
        assert_eq!(dumps[0].sample_index, 0);
        assert_eq!(dumps[2].sample_index, 2);
        // Dumps are cumulative: self time grows.
        let id = dumps[2].functions.iter().next().unwrap().0;
        assert!(dumps[2].flat.get(id).self_time > dumps[0].flat.get(id).self_time);
    }

    #[test]
    fn wall_mode_collects_samples_over_real_time() {
        let rt = ProfilerRuntime::new(); // wall clock
        let f = rt.register_function("spin");
        let collector = IncProfCollector::start_wall(
            rt.clone(),
            CollectorConfig { interval_ns: 20_000_000, encode_gmon: false }, // 20 ms
        );
        let deadline = std::time::Instant::now() + Duration::from_millis(120);
        while std::time::Instant::now() < deadline {
            let _g = rt.enter(f);
            std::hint::black_box(0u64);
        }
        let series = collector.stop();
        // ~6 interval samples plus the final stop() sample; allow slack
        // for scheduler jitter.
        assert!(series.len() >= 3, "only {} samples", series.len());
        let last = series.last().unwrap();
        assert!(last.flat.get(f).calls > 0);
        assert!(last.flat.get(f).self_time > 0);
        // Monotone cumulative series.
        assert!(series.interval_profiles().is_ok());
    }

    #[test]
    fn stop_appends_final_sample() {
        let rt = ProfilerRuntime::with_clock(Clock::virtual_clock());
        let collector = IncProfCollector::manual(rt, CollectorConfig::default());
        collector.tick();
        let series = collector.stop();
        assert_eq!(series.len(), 2, "tick + final stop sample");
    }

    #[test]
    fn samples_taken_counts() {
        let rt = ProfilerRuntime::with_clock(Clock::virtual_clock());
        let collector = IncProfCollector::manual(rt, CollectorConfig::default());
        assert_eq!(collector.samples_taken(), 0);
        collector.tick();
        collector.tick();
        assert_eq!(collector.samples_taken(), 2);
    }
}
